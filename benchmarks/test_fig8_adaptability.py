"""Figure 8: adaptability of RAAL across cluster memory sizes.

For each executor-memory size (1-6 GB) a separate collection cluster is
emulated: the resource sampler is pinned to that memory while executor
count/cores still vary, records are collected, and a fresh RAAL is
trained and evaluated.

Expected shape (paper Fig. 8): COR and R² stay high and flat across
memory sizes, RE stays low, MSE stays small — the model adapts to
different cloud environments."""

from __future__ import annotations

import os

import numpy as np

from benchmarks.conftest import publish
from repro.cluster import ResourceSampler
from repro.eval import render_series
from repro.eval.experiments import ExperimentPipeline, ExperimentScale

MEMORIES_GB = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]

_SCALE = ExperimentScale(
    num_queries=int(os.environ.get("REPRO_BENCH_FIG8_QUERIES", "90")),
    resource_states_per_plan=4,
    epochs=int(os.environ.get("REPRO_BENCH_FIG8_EPOCHS", "45")),
)


def _train_at_memory(memory_gb: float):
    pipeline = ExperimentPipeline(dataset="imdb", scale=_SCALE)
    # Pin executor memory for this "cluster"; other dimensions vary.
    pipeline.collector.sampler = ResourceSampler(
        memory_choices_gb=(memory_gb,))
    return pipeline.train_variant("RAAL").metrics


def test_fig8_adaptability(benchmark):
    def run():
        return {mem: _train_at_memory(mem) for mem in MEMORIES_GB}

    metrics = benchmark.pedantic(run, rounds=1, iterations=1)

    series = {
        "RE": [metrics[m].re for m in MEMORIES_GB],
        "MSE": [metrics[m].mse for m in MEMORIES_GB],
        "COR": [metrics[m].cor for m in MEMORIES_GB],
        "R2": [metrics[m].r2 for m in MEMORIES_GB],
    }
    publish("fig8_adaptability", render_series(
        "Fig. 8 — RAAL metrics vs collection-cluster executor memory (GB)",
        "memory_gb", MEMORIES_GB, series))

    cor = np.array(series["COR"])
    r2 = np.array(series["R2"])
    mse = np.array(series["MSE"])
    # Shape: quality is stable across memory sizes — sound fits
    # everywhere, no memory size collapsing. (Raw-space COR is noisy on
    # heavy-tailed costs, so R2/MSE carry the flatness claim.)
    assert cor.min() >= 0.3, f"COR collapsed at some memory size: {cor}"
    assert r2.min() >= 0.45, f"R2 collapsed at some memory size: {r2}"
    assert mse.max() <= 0.9, f"MSE exceeded 0.9 at some memory size: {mse}"
    assert r2.max() - r2.min() <= 0.35, f"R2 is not flat: {r2}"
