"""Telemetry overhead guard: instrumented vs detached ``predict_grid``.

The observability layer promises to be near-zero-cost when no telemetry
bundle is attached (one module-global read per hook) and cheap enough
to leave attached in production. This benchmark times the plan x
profile grid prediction — the hot serving path, where per-pair hooks
would hurt most — in both modes and fails if the attached-mode overhead
exceeds 5%.

Timing is best-of-N per mode with the modes interleaved, so cache
warm-up and machine noise hit both equally.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import get_fixed_pipeline, publish
from repro import obs
from repro.core import CostPredictor
from repro.core.advisor import default_profile_grid
from repro.eval import render_table

GRID_PLANS = 8
GRID_PROFILES = 24
REPEATS = 7
MAX_OVERHEAD = 0.05


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_obs_overhead(benchmark):
    pipeline = get_fixed_pipeline("imdb")
    trained = pipeline.train_variant("RAAL", epochs=2)
    predictor = CostPredictor(trained.encoder, trained.trainer)

    records = pipeline.split.test
    plans = list({id(r.plan): r.plan for r in records}.values())[:GRID_PLANS]
    profiles = default_profile_grid()[:GRID_PROFILES]

    def grid():
        return predictor.predict_grid(plans, profiles)

    telemetry = obs.Telemetry.create()

    # Warm the encoder cache and both code paths before timing.
    baseline = grid()
    with obs.attached(telemetry):
        instrumented = grid()
    np.testing.assert_allclose(instrumented, baseline)

    def attached_grid():
        with obs.attached(telemetry):
            grid()

    detached_best = _best_of(grid)
    attached_best = _best_of(attached_grid)
    overhead = attached_best / detached_best - 1.0

    pairs = GRID_PLANS * GRID_PROFILES
    publish("obs_overhead", render_table(
        f"telemetry overhead on predict_grid "
        f"({GRID_PLANS} plans x {GRID_PROFILES} profiles, best of {REPEATS})",
        ["mode", "seconds", "pairs/sec"],
        [["detached", f"{detached_best:.4f}", f"{pairs / detached_best:.0f}"],
         ["attached", f"{attached_best:.4f}", f"{pairs / attached_best:.0f}"],
         ["overhead", f"{overhead * 100:+.2f}%", ""]]))

    # The attached run really did record the hot path.
    assert telemetry.registry.counter("predict.grids_total").value >= 1
    assert telemetry.registry.histogram(
        "predict.forward_seconds").snapshot()["count"] >= 1

    assert overhead <= MAX_OVERHEAD, (
        f"telemetry overhead {overhead * 100:.2f}% exceeds "
        f"{MAX_OVERHEAD * 100:.0f}% budget "
        f"(detached {detached_best:.4f}s vs attached {attached_best:.4f}s)")
