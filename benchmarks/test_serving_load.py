"""Sustained-load benchmark of the serving layer → ``BENCH_serving.json``.

Closed-loop concurrent clients drive ``PredictionService.predict``
(the transport-agnostic core of ``repro serve``) in the two dispatch
modes:

* ``single`` — ``batch_window_ms=0``: every request runs its own
  forward on the caller's thread (per-request dispatch);
* ``batched`` — the micro-batching window fuses concurrent requests
  into one forward through the bucket executor.

Each mode reports req/s and latency p50/p95/p99, both exact (measured
samples) and as estimated from the ``serve.predict.latency_seconds``
obs histogram. Mid-way through the batched phase a **hot swap** runs
against the live load — deploy, shadow-score, auto-promote — and the
benchmark fails if a single request errors or sees provenance other
than the old or new version.

Gates:

* batched throughput ≥ ``REPRO_BENCH_SERVE_MIN_SPEEDUP`` (default
  1.05×) of per-request dispatch — micro-batching must pay for its
  window;
* the mid-load hot swap completes with **zero** failed requests and
  only old-or-new versions observed;
* batched p99 ≤ ``REPRO_BENCH_SERVE_MAX_P99_MS`` (default 2000 ms).

Scale knobs: ``REPRO_BENCH_SERVE_CLIENTS`` (default 8),
``REPRO_BENCH_SERVE_REQUESTS`` (default 40 per client per mode),
``REPRO_BENCH_SERVE_QUERIES`` (default 16 distinct statements).
"""

from __future__ import annotations

import os
import pathlib
import threading
import time

import numpy as np

from repro import obs
from repro.core import CostPredictor
from repro.core.persistence import save_predictor
from repro.eval.reporting import render_table
from repro.serving import PredictionService, ServingConfig

from benchmarks.conftest import get_pipeline, publish
from benchmarks.runmeta import write_bench_json

BENCH_JSON = pathlib.Path(__file__).parent.parent / "BENCH_serving.json"

CLIENTS = int(os.environ.get("REPRO_BENCH_SERVE_CLIENTS", "8"))
REQUESTS_PER_CLIENT = int(os.environ.get("REPRO_BENCH_SERVE_REQUESTS", "40"))
N_QUERIES = int(os.environ.get("REPRO_BENCH_SERVE_QUERIES", "16"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_SERVE_MIN_SPEEDUP", "1.05"))
MAX_P99_MS = float(os.environ.get("REPRO_BENCH_SERVE_MAX_P99_MS", "2000"))


def _percentiles(samples: list[float]) -> dict[str, float]:
    arr = np.asarray(samples) * 1e3  # → milliseconds
    return {"mean": float(arr.mean()),
            "p50": float(np.percentile(arr, 50)),
            "p95": float(np.percentile(arr, 95)),
            "p99": float(np.percentile(arr, 99))}


def _drive(service: PredictionService, queries: list[str],
           swap: dict | None = None) -> dict:
    """Closed-loop load: CLIENTS threads × REQUESTS_PER_CLIENT each.

    With ``swap`` set, a deploy→shadow→auto-promote runs once roughly
    a quarter of the way into the stream, against live traffic.
    """
    # Warm the plan cache so the measured stream isolates the serving
    # path (cache hit + fused forward), not SQL parsing.
    for sql in queries:
        service.predict({"sql": sql})

    samples: list[float] = []
    errors: list[BaseException] = []
    versions: set[str] = set()
    lock = threading.Lock()
    started = threading.Barrier(CLIENTS + 1)
    swap_at = (CLIENTS * REQUESTS_PER_CLIENT) // 4
    done = 0

    def client(worker: int) -> None:
        nonlocal done
        rng = np.random.default_rng(worker)
        local: list[float] = []
        started.wait()
        for i in range(REQUESTS_PER_CLIENT):
            sql = queries[int(rng.integers(0, len(queries)))]
            t0 = time.perf_counter()
            try:
                body = service.predict({"sql": sql})
            except BaseException as exc:
                with lock:
                    errors.append(exc)
                return
            local.append(time.perf_counter() - t0)
            with lock:
                versions.add(body["model_version"])
                done += 1
        with lock:
            samples.extend(local)

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(CLIENTS)]
    for t in threads:
        t.start()
    started.wait()
    start = time.perf_counter()

    swap_result = None
    if swap is not None:
        while done < swap_at and not errors:
            time.sleep(0.01)
        outcome = service.deploy(swap)
        target = outcome["version"]
        shard = service.registry.shard("default")
        deadline = time.monotonic() + 120.0
        while (shard.current.version != target
               and time.monotonic() < deadline and not errors):
            time.sleep(0.02)
        swap_result = {"staged": outcome,
                       "promoted": shard.current.version == target,
                       "promoted_version": target}

    for t in threads:
        t.join(timeout=600.0)
    elapsed = time.perf_counter() - start

    hist = None
    active = obs.active()
    if active is not None:
        try:
            histogram = active.registry.histogram(
                "serve.predict.latency_seconds")
            hist = {"p50": histogram.quantile(0.50) * 1e3,
                    "p95": histogram.quantile(0.95) * 1e3,
                    "p99": histogram.quantile(0.99) * 1e3}
        except Exception:
            hist = None

    shard = service.registry.shard("default")
    return {
        "clients": CLIENTS,
        "requests": len(samples),
        "errors": [repr(e) for e in errors],
        "req_per_s": len(samples) / elapsed if elapsed else 0.0,
        "latency_ms": _percentiles(samples) if samples else {},
        "histogram_ms": hist,
        "versions_seen": sorted(versions),
        "batcher": shard.batcher.snapshot(),
        "swap": swap_result,
    }


def _build_service(window_ms: float, catalog, predictor,
                   checkpoint: str) -> PredictionService:
    config = ServingConfig(
        batch_window_ms=window_ms, max_batch_pairs=256,
        # Generous admission so both modes serve learned answers —
        # the comparison is dispatch strategy, not shed behaviour.
        max_in_flight=64, max_queue_depth=128)
    service = PredictionService(config, catalog=catalog)
    service.install_model(predictor, checkpoint=checkpoint)
    return service


def test_serving_sustained_load(tmp_path):
    pipeline = get_pipeline("imdb")
    trained = pipeline.train_variant("RAAL")
    predictor = CostPredictor(trained.encoder, trained.trainer)
    checkpoint = tmp_path / "serving-ckpt"
    save_predictor(predictor, checkpoint)
    queries = pipeline.queries[:N_QUERIES]

    results: dict[str, dict] = {}

    # Mode 1: per-request dispatch (the baseline arm).
    telemetry = obs.Telemetry.create()
    with obs.attached(telemetry):
        service = _build_service(0.0, pipeline.catalog, predictor,
                                 str(checkpoint))
        try:
            results["single"] = _drive(service, queries)
        finally:
            service.close()

    # Mode 2: micro-batched dispatch, with a mid-load hot swap.
    telemetry = obs.Telemetry.create()
    with obs.attached(telemetry):
        service = _build_service(2.0, pipeline.catalog, predictor,
                                 str(checkpoint))
        try:
            results["batched"] = _drive(
                service, queries,
                swap={"checkpoint": str(checkpoint), "shadow_requests": 3,
                      "max_qerror": 1000.0, "auto_promote": True})
        finally:
            service.close()

    single, batched = results["single"], results["batched"]
    speedup = (batched["req_per_s"] / single["req_per_s"]
               if single["req_per_s"] else float("inf"))

    payload = {
        "clients": CLIENTS,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "distinct_queries": len(queries),
        "modes": results,
        "speedup_batched_vs_single": speedup,
        "gates": {"min_speedup": MIN_SPEEDUP, "max_p99_ms": MAX_P99_MS},
    }
    write_bench_json(BENCH_JSON, payload)

    rows = []
    for name, mode in results.items():
        lat = mode["latency_ms"]
        rows.append([
            name, str(mode["requests"]), f"{mode['req_per_s']:.1f}",
            f"{lat.get('p50', 0):.2f}", f"{lat.get('p95', 0):.2f}",
            f"{lat.get('p99', 0):.2f}",
            str(mode["batcher"]["batches"]),
            f"{mode['batcher']['coalesced_requests'] / max(mode['batcher']['batches'], 1):.2f}",
        ])
    publish("serving_load", render_table(
        f"serving sustained load ({CLIENTS} clients, "
        f"speedup batched/single = {speedup:.2f}x)",
        ["mode", "requests", "req/s", "p50 ms", "p95 ms", "p99 ms",
         "batches", "coalesce"],
        rows))

    # -- gates -------------------------------------------------------------
    expected = CLIENTS * REQUESTS_PER_CLIENT
    for name, mode in results.items():
        assert mode["errors"] == [], f"{name}: requests failed: {mode['errors']}"
        assert mode["requests"] == expected, (
            f"{name}: {mode['requests']}/{expected} requests completed")

    swap = batched["swap"]
    assert swap is not None and swap["promoted"], (
        f"mid-load hot swap never promoted: {swap}")
    allowed = {swap["staged"]["version"], swap["promoted_version"]} | {
        v for v in batched["versions_seen"] if v.startswith("g1-")}
    assert set(batched["versions_seen"]) <= allowed, (
        f"torn provenance during swap: {batched['versions_seen']}")
    assert len(batched["versions_seen"]) == 2, (
        f"expected traffic on both sides of the swap: "
        f"{batched['versions_seen']}")

    assert batched["batcher"]["batches"] < expected, (
        "micro-batching never coalesced anything")
    assert speedup >= MIN_SPEEDUP, (
        f"micro-batching does not pay: {speedup:.2f}x < {MIN_SPEEDUP}x "
        f"(batched {batched['req_per_s']:.1f} req/s vs single "
        f"{single['req_per_s']:.1f} req/s)")
    assert batched["latency_ms"]["p99"] <= MAX_P99_MS, (
        f"batched p99 {batched['latency_ms']['p99']:.1f}ms > {MAX_P99_MS}ms")
