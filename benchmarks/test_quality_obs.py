"""Prediction-quality observability harness: drift in, drift out.

Drives the guarded predictor with the full quality loop armed —
:class:`AccuracyTracker` + :class:`DriftDetector`, per-prediction
:class:`AuditTrail`, and burn-rate :class:`SLOTracker` — through three
phases of a closed feedback loop where the dataset's recorded runtimes
play the ground truth:

1. **healthy** — serve and observe ``FEEDBACK`` queries with the
   trained model: the tracker's reference window captures the model's
   native q-error distribution and the detector stays ``stable``.
2. **drift** — a ``FaultInjector`` zeroes ``CORRUPT_FRACTION`` of every
   parameter (finite corruption: the model keeps answering, it is just
   *wrong*), shifting the geometric-mean q-error severalfold. The gate:
   the detector must flip to ``drift`` within ``DETECT_GATE`` feedback
   samples, emit ``drift_detected``, trip the degradation ladder to
   its analytic fallback, and burn the q-error SLO budget into alert.
3. **recovery** — weights restored, the ladder's fallback probe starts
   letting learned answers (and thus feedback) through again; once the
   current window flushes, the detector must emit ``drift_recovered``
   within ``RECOVERY_TIMEOUT_S``.

Results go to ``BENCH_quality.json``. Two artifacts land under
``benchmarks/results/`` for the CLI smoke tests: the raw telemetry
event stream (``quality_events.jsonl`` — input to ``repro audit``) and
the final telemetry report (``quality_report.json`` — input to
``repro top --once``).

Scale knobs: ``REPRO_BENCH_QUALITY_FEEDBACK`` (healthy feedback
samples, default 96), ``REPRO_BENCH_QUALITY_WINDOW`` /
``REPRO_BENCH_QUALITY_CURRENT`` (reference/current window sizes),
``REPRO_BENCH_QUALITY_DETECT_GATE`` (max drifting samples before
detection, default 2x the current window),
``REPRO_BENCH_QUALITY_CORRUPT_FRACTION`` (default 0.35), and
``REPRO_BENCH_QUALITY_RECOVERY_TIMEOUT_S`` (default 30).
"""

from __future__ import annotations

import os
import pathlib
import time

import numpy as np

from benchmarks.conftest import RESULTS_DIR, get_fixed_pipeline, publish
from benchmarks.runmeta import write_bench_json
from repro import obs
from repro.baselines.gpsj import GPSJCostModel
from repro.core import CostPredictor
from repro.eval import render_table
from repro.nn import invalidate_inference_cache
from repro.obs.audit import AuditTrail
from repro.obs.quality import (
    DRIFT,
    STABLE,
    AccuracyTracker,
    DriftConfig,
    DriftDetector,
    QualityConfig,
)
from repro.obs.slo import SLO, BurnRateConfig, SLOTracker
from repro.reliability import (
    DegradationLadder,
    FaultInjector,
    GuardedCostPredictor,
    LadderConfig,
    RetryPolicy,
)

BENCH_JSON = pathlib.Path(__file__).parent.parent / "BENCH_quality.json"
EVENTS_PATH = RESULTS_DIR / "quality_events.jsonl"
REPORT_PATH = RESULTS_DIR / "quality_report.json"

FEEDBACK = int(os.environ.get("REPRO_BENCH_QUALITY_FEEDBACK", "96"))
REFERENCE_WINDOW = int(os.environ.get("REPRO_BENCH_QUALITY_WINDOW", "48"))
CURRENT_WINDOW = int(os.environ.get("REPRO_BENCH_QUALITY_CURRENT", "24"))
DETECT_GATE = int(os.environ.get("REPRO_BENCH_QUALITY_DETECT_GATE",
                                 str(2 * CURRENT_WINDOW)))
CORRUPT_FRACTION = float(
    os.environ.get("REPRO_BENCH_QUALITY_CORRUPT_FRACTION", "0.35"))
RECOVERY_TIMEOUT_S = float(
    os.environ.get("REPRO_BENCH_QUALITY_RECOVERY_TIMEOUT_S", "30"))
#: Drifting feedback samples fed after detection: the burn-rate SLO is
#: (by design) blind to a blip the size of the detection window, so the
#: harness sustains the badness long enough for both burn windows.
SUSTAIN = int(os.environ.get("REPRO_BENCH_QUALITY_SUSTAIN",
                             str(DETECT_GATE)))

#: Q-error above which a feedback sample spends SLO error budget. Set
#: well past the model's native p95 so the healthy phase cannot burn.
QERROR_SLO_THRESHOLD = 10.0


def _qstats(samples: list[float]) -> dict:
    arr = np.asarray(samples)
    return {"count": int(arr.size),
            "mean": float(arr.mean()),
            "p50": float(np.percentile(arr, 50)),
            "p95": float(np.percentile(arr, 95))}


def test_quality_observability():
    pipeline = get_fixed_pipeline("imdb")
    trained = pipeline.train_variant("RAAL", epochs=4)
    base = CostPredictor(trained.encoder, trained.trainer)
    model = trained.trainer.model
    gpsj = GPSJCostModel(pipeline.catalog)

    # Ground truth comes from the dataset's recorded runtimes. Sample
    # the test split randomly so reference and current windows draw
    # from the same plan distribution — q-error is plan-dependent, and
    # feeding the split in order would make the windows systematically
    # different even with a healthy model.
    rng = np.random.default_rng(11)
    test_records = pipeline.split.test

    def records():
        while True:
            yield test_records[int(rng.integers(0, len(test_records)))]

    records = records()

    drift_detector = DriftDetector(DriftConfig(
        reference_window=REFERENCE_WINDOW, current_window=CURRENT_WINDOW,
        min_samples=max(CURRENT_WINDOW // 2, 4), ratio_threshold=2.0,
        recover_ratio=1.2, consecutive=3, hold_seconds=0.0))
    quality = AccuracyTracker(QualityConfig(window=CURRENT_WINDOW),
                              drift=drift_detector)
    slo = SLOTracker(
        [SLO("latency", threshold=0.5, objective=0.9),
         SLO("qerror", threshold=QERROR_SLO_THRESHOLD, objective=0.8)],
        BurnRateConfig(fast_window_seconds=15.0, slow_window_seconds=60.0,
                       fast_burn=1.0, slow_burn=1.0))
    # degrade_p99 sits far above any real serve latency: this harness
    # exercises the accuracy-drift path, not the latency ladder.
    ladder = DegradationLadder(LadderConfig(degrade_p99=30.0,
                                            hold_seconds=0.05))
    guard = GuardedCostPredictor(
        base, gpsj=gpsj, ladder=ladder, quality=quality,
        audit=AuditTrail(capacity=4096), slo=slo, workload="imdb",
        retry_policy=RetryPolicy(attempts=1))

    def feed_one(fast: bool = True) -> tuple[str, float | None]:
        """Serve the next query and close its feedback loop.

        ``fast=False`` bypasses the ladder's tier routing, so the
        learned stage keeps answering (and feedback keeps flowing)
        even while the ladder sits in FALLBACK — the shape of feedback
        for queries that were served before a trip.
        """
        record = next(records)
        explained = guard.predict_many_explained(
            [(record.plan, record.resources)], fast=fast)
        qe = None
        if explained.request_id is not None:
            qe = guard.record_observation(explained.request_id,
                                          record.cost_seconds)
        return explained.source, qe

    results: dict = {"config": {
        "feedback": FEEDBACK, "reference_window": REFERENCE_WINDOW,
        "current_window": CURRENT_WINDOW, "detect_gate": DETECT_GATE,
        "corrupt_fraction": CORRUPT_FRACTION,
        "sustain": SUSTAIN,
        "qerror_slo_threshold": QERROR_SLO_THRESHOLD,
        "recovery_timeout_s": RECOVERY_TIMEOUT_S,
    }}

    EVENTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    telemetry = obs.Telemetry.create(events_path=str(EVENTS_PATH),
                                     event_capacity=16384)
    try:
        with obs.attached(telemetry):
            # -- phase 1: healthy feedback loop ------------------------
            guard.predict(*(lambda r: (r.plan, r.resources))(
                pipeline.split.test[0]))  # warm caches + pools
            healthy_q: list[float] = []
            for _ in range(FEEDBACK):
                source, qe = feed_one()
                assert source == "raal", source
                if qe is not None:
                    healthy_q.append(qe)
            results["healthy"] = {
                "qerror": _qstats(healthy_q),
                "drift_state": drift_detector.state,
                "ladder": ladder.state,
            }
            assert drift_detector.state == STABLE, drift_detector.snapshot()

            # -- phase 2: inject accuracy drift ------------------------
            injector = FaultInjector(seed=7)
            saved = [p.data.copy() for _, p in model.named_parameters()]
            injector.corrupt_weights(model, fraction=CORRUPT_FRACTION,
                                     value=0.0)
            invalidate_inference_cache(model)
            drift_q: list[float] = []
            samples_to_detect = None
            detect_started = time.perf_counter()
            for attempt in range(DETECT_GATE * 4):
                source, qe = feed_one()
                if qe is not None:
                    drift_q.append(qe)
                if drift_detector.state == DRIFT:
                    samples_to_detect = len(drift_q)
                    break
            detect_seconds = time.perf_counter() - detect_started
            # Sustain the drifting feedback past the detection blip:
            # the burn-rate SLO needs both windows burning, and the
            # ladder (already in FALLBACK) must stay re-tripped.
            for _ in range(SUSTAIN if samples_to_detect is not None else 0):
                _, qe = feed_one(fast=False)
                if qe is not None:
                    drift_q.append(qe)
            results["drift"] = {
                "qerror": _qstats(drift_q) if drift_q else None,
                "samples_to_detect": samples_to_detect,
                "detect_seconds": detect_seconds,
                "detector": drift_detector.snapshot(),
                "ladder": ladder.state,
                "ladder_history": [
                    {"old": t.old, "new": t.new, "reason": t.reason}
                    for t in ladder.history],
                "slo_alerting": slo.alerting(),
            }

            # -- phase 3: restore weights, wait for recovery -----------
            for (_, p), data in zip(model.named_parameters(), saved):
                p.data[...] = data
            invalidate_inference_cache(model)
            recovery_q: list[float] = []
            recovery_started = time.perf_counter()
            recovered_at = None
            while time.perf_counter() - recovery_started < RECOVERY_TIMEOUT_S:
                source, qe = feed_one()
                if qe is not None:
                    recovery_q.append(qe)
                if drift_detector.state == STABLE:
                    recovered_at = time.perf_counter() - recovery_started
                    break
                if source != "raal":
                    # Fallback-served: no feedback flows; give the
                    # ladder's probe a moment to climb.
                    time.sleep(0.01)
            results["recovery"] = {
                "qerror": _qstats(recovery_q) if recovery_q else None,
                "seconds_to_recover": recovered_at,
                "feedback_samples": len(recovery_q),
                "detector": drift_detector.snapshot(),
                "ladder": ladder.state,
            }

            results["counters"] = {
                name: telemetry.registry.get(name).value
                for name in ("quality.feedback_total",
                             "quality.drift_detected_total",
                             "quality.drift_recovered_total",
                             "ladder.drift_trips_total",
                             "audit.records_total",
                             "audit.observations_total",
                             "slo.alerts_total")
                if telemetry.registry.get(name) is not None
            }
            results["audit"] = guard.audit.snapshot()
            results["events"] = {
                "drift_detected": len(
                    telemetry.events.events("quality", "drift_detected")),
                "drift_recovered": len(
                    telemetry.events.events("quality", "drift_recovered")),
                "burn_alerts": len(
                    telemetry.events.events("slo", "burn_alert")),
            }
            report = obs.TelemetryReport.from_telemetry(telemetry)
    finally:
        telemetry.close()
        guard.close()
    report.write(REPORT_PATH)

    write_bench_json(BENCH_JSON, results)

    healthy = results["healthy"]["qerror"]
    drifted = results["drift"]["qerror"] or {"mean": float("nan"),
                                             "p95": float("nan")}
    recovered = results["recovery"]["qerror"] or {"mean": float("nan"),
                                                  "p95": float("nan")}
    rows = [
        ["healthy", f"{healthy['mean']:.2f}", f"{healthy['p95']:.2f}",
         results["healthy"]["drift_state"], results["healthy"]["ladder"]],
        ["drift", f"{drifted['mean']:.2f}", f"{drifted['p95']:.2f}",
         f"detected@{results['drift']['samples_to_detect']}",
         results["drift"]["ladder"]],
        ["recovery", f"{recovered['mean']:.2f}", f"{recovered['p95']:.2f}",
         results["recovery"]["detector"]["state"],
         results["recovery"]["ladder"]],
    ]
    publish("quality_obs", render_table(
        f"Prediction-quality observability ({CORRUPT_FRACTION:.0%} weight "
        f"corruption; gate {DETECT_GATE} samples)",
        ["phase", "qerr mean", "qerr p95", "detector", "ladder"], rows))

    # -- gates ----------------------------------------------------------
    assert samples_to_detect is not None, \
        f"drift never detected: {drift_detector.snapshot()}"
    assert samples_to_detect <= DETECT_GATE, results["drift"]
    assert results["events"]["drift_detected"] >= 1, results["events"]
    assert results["drift"]["ladder"] == "fallback", results["drift"]
    assert any("drift trip" in t["reason"]
               for t in results["drift"]["ladder_history"]), results["drift"]
    assert "qerror" in results["drift"]["slo_alerting"], results["drift"]
    assert results["recovery"]["seconds_to_recover"] is not None, \
        results["recovery"]
    assert results["events"]["drift_recovered"] >= 1, results["events"]
