"""Shared fixtures for the benchmark suite.

Each benchmark file reproduces one table or figure of the paper. The
expensive pipeline stages (catalog generation, data collection, model
training) are cached at session scope here so the full suite shares
them. Every benchmark writes its rendered table both to stdout and to
``benchmarks/results/<name>.txt``.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.eval.experiments import BENCH, ExperimentPipeline, ExperimentScale, TrainedVariant

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Scale used by the heavy, model-training benchmarks. Override via the
#: REPRO_BENCH_QUERIES / REPRO_BENCH_EPOCHS environment variables.
BENCH_SCALE = ExperimentScale(
    num_queries=int(os.environ.get("REPRO_BENCH_QUERIES", "120")),
    epochs=int(os.environ.get("REPRO_BENCH_EPOCHS", "50")),
)

#: Scale for the fixed-resource (Table V/VI "local Spark") pipelines.
#: TLSTM trains tree-by-tree, so this preset is kept moderate.
FIXED_SCALE = ExperimentScale(
    num_queries=int(os.environ.get("REPRO_BENCH_FIXED_QUERIES", "300")),
    resource_states_per_plan=1,
    epochs=int(os.environ.get("REPRO_BENCH_EPOCHS", "50")),
)

_PIPELINES: dict[str, ExperimentPipeline] = {}
_TRAINED: dict[tuple[str, str, bool], TrainedVariant] = {}


def get_pipeline(dataset: str) -> ExperimentPipeline:
    """Session-cached varying-resource pipeline for a dataset."""
    if dataset not in _PIPELINES:
        _PIPELINES[dataset] = ExperimentPipeline(dataset=dataset, scale=BENCH_SCALE)
    return _PIPELINES[dataset]


def get_fixed_pipeline(dataset: str = "imdb") -> ExperimentPipeline:
    """Session-cached fixed-resource pipeline (Table V/VI setting)."""
    key = f"{dataset}-fixed"
    if key not in _PIPELINES:
        from repro.cluster import PAPER_CLUSTER

        _PIPELINES[key] = ExperimentPipeline(
            dataset=dataset, scale=FIXED_SCALE, fixed_resources=PAPER_CLUSTER)
    return _PIPELINES[key]


def get_trained(dataset: str, name: str, resource_aware: bool = True) -> TrainedVariant:
    """Session-cached trained variant."""
    key = (dataset, name, resource_aware)
    if key not in _TRAINED:
        _TRAINED[key] = get_pipeline(dataset).train_variant(
            name, resource_aware=resource_aware)
    return _TRAINED[key]


@pytest.fixture(scope="session")
def imdb_pipeline() -> ExperimentPipeline:
    """The IMDB varying-resource pipeline (Tencent-cloud analogue)."""
    return get_pipeline("imdb")


@pytest.fixture(scope="session")
def tpch_pipeline() -> ExperimentPipeline:
    """The TPC-H varying-resource pipeline (Ali-cloud analogue)."""
    return get_pipeline("tpch")


def publish(name: str, text: str) -> None:
    """Print a rendered table and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
