"""Sustained-load latency SLO harness: p50/p95/p99 per execution mode.

Drives a *closed-loop* request stream (each request issued as soon as
the previous one returns — the plan-selector-in-the-loop serving shape)
against the predictor in four execution modes:

* **f64-1T** — float64, single-thread, pairwise grids: the bit-exact
  legacy configuration and the latency baseline;
* **f32-1T** — float32 kernels, single-thread;
* **f32-multiT** — float32 + bucket-parallel threads + factored grids;
* **int8-multiT** — quantized weights (float32 execution) + threads +
  factored grids.

Per mode it reports p50/p95/p99 twice: exact percentiles over the raw
per-request wall-clock samples, and the estimates interpolated from the
``predict.latency_seconds`` obs histogram (what a production deployment
would alert on — the harness doubles as a check that the histogram
estimates bracket the exact numbers within bucket resolution).

Results go to ``BENCH_latency.json`` with run metadata. Two gates:

* the f32-multiT factored grid must clear
  ``REPRO_BENCH_SLO_MIN_GRID_SPEEDUP`` (default 2.0×) over the f64-1T
  pairwise grid;
* p99 of each mode must not exceed ``REPRO_BENCH_SLO_MAX_P99_REGRESSION``
  (default 10×) times the committed baseline's p99 for that mode —
  a coarse threshold by design, so cross-host variance doesn't flake
  while order-of-magnitude regressions still fail.

Scale knobs: ``REPRO_BENCH_SLO_REQUESTS`` (default 150 per mode),
``REPRO_BENCH_SLO_PAIRS`` (default 8 pairs per request),
``REPRO_BENCH_SLO_GRID_REPEATS`` (default 5).
"""

from __future__ import annotations

import os
import pathlib
import time

import numpy as np

from benchmarks.conftest import get_fixed_pipeline, publish
from benchmarks.runmeta import write_bench_json
from repro import obs
from repro.core import CostPredictor
from repro.core.advisor import default_profile_grid
from repro.core.predictor import PredictorConfig
from repro.eval import render_table

BENCH_JSON = pathlib.Path(__file__).parent.parent / "BENCH_latency.json"

N_REQUESTS = int(os.environ.get("REPRO_BENCH_SLO_REQUESTS", "150"))
PAIRS_PER_REQUEST = int(os.environ.get("REPRO_BENCH_SLO_PAIRS", "8"))
GRID_REPEATS = int(os.environ.get("REPRO_BENCH_SLO_GRID_REPEATS", "5"))
MIN_GRID_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_SLO_MIN_GRID_SPEEDUP", "2.0"))
MAX_P99_REGRESSION = float(
    os.environ.get("REPRO_BENCH_SLO_MAX_P99_REGRESSION", "10.0"))

GRID_PLANS = 8
GRID_PROFILES = 24

#: mode name -> (PredictorConfig, description)
MODES: dict[str, PredictorConfig] = {
    "f64-1T": PredictorConfig(precision="f64", threads=1),
    "f32-1T": PredictorConfig(precision="f32", threads=1),
    "f32-multiT": PredictorConfig(precision="f32", threads=0,
                                  factor_grids=True),
    "int8-multiT": PredictorConfig(precision="int8", threads=0,
                                   factor_grids=True),
}


def _percentiles(samples: list[float]) -> dict[str, float]:
    arr = np.asarray(samples)
    return {"p50": float(np.percentile(arr, 50)),
            "p95": float(np.percentile(arr, 95)),
            "p99": float(np.percentile(arr, 99))}


def _closed_loop(predictor: CostPredictor, requests: list) -> dict:
    """Run the request stream under attached telemetry; return stats."""
    telemetry = obs.Telemetry.create()
    samples: list[float] = []
    with obs.attached(telemetry):
        # One warmup request primes the weight bundle / thread pool /
        # scratch arenas outside the measured stream.
        predictor.predict_many(requests[0])
        start = time.perf_counter()
        for pairs in requests:
            t0 = time.perf_counter()
            predictor.predict_many(pairs)
            samples.append(time.perf_counter() - t0)
        elapsed = time.perf_counter() - start
        hist = telemetry.registry.histogram("predict.latency_seconds")
        hist_q = {"p50": hist.quantile(0.50), "p95": hist.quantile(0.95),
                  "p99": hist.quantile(0.99)}
    n_pairs = sum(len(r) for r in requests)
    return {
        "requests": len(requests),
        "pairs_per_request": len(requests[0]),
        "exact": _percentiles(samples),
        "histogram": hist_q,
        "requests_per_sec": len(requests) / elapsed,
        "pairs_per_sec": n_pairs / elapsed,
    }


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_latency_slo():
    baseline = None
    if BENCH_JSON.exists():
        import json

        baseline = json.loads(BENCH_JSON.read_text())

    pipeline = get_fixed_pipeline("imdb")
    trained = pipeline.train_variant("RAAL", epochs=4)
    base = CostPredictor(trained.encoder, trained.trainer)

    records = pipeline.split.test
    plans = list({id(r.plan): r.plan for r in records}.values())[:GRID_PLANS]
    profiles = default_profile_grid()[:GRID_PROFILES]
    rng = np.random.default_rng(11)
    requests = [
        [(plans[int(i)], profiles[int(j)])
         for i, j in zip(rng.integers(0, len(plans), PAIRS_PER_REQUEST),
                         rng.integers(0, len(profiles), PAIRS_PER_REQUEST))]
        for _ in range(N_REQUESTS)
    ]

    results: dict[str, dict] = {"modes": {}}
    predictors = {name: base.configured(cfg) for name, cfg in MODES.items()}
    for name, predictor in predictors.items():
        stats = _closed_loop(predictor, requests)
        stats["config"] = {
            "precision": predictor.config.precision,
            "threads": predictor.executor.threads,
            "factor_grids": predictor.config.factor_grids,
        }
        results["modes"][name] = stats

    # -- grid throughput: factored f32 multi-thread vs legacy f64 ------
    grid_f64_s = _best_of(
        lambda: predictors["f64-1T"].predict_grid(plans, profiles),
        GRID_REPEATS)
    grid_f32_s = _best_of(
        lambda: predictors["f32-multiT"].predict_grid(plans, profiles),
        GRID_REPEATS)
    grid_int8_s = _best_of(
        lambda: predictors["int8-multiT"].predict_grid(plans, profiles),
        GRID_REPEATS)
    n_grid = GRID_PLANS * GRID_PROFILES
    results["grid"] = {
        "pairs": n_grid,
        "f64_1T_pairs_per_sec": n_grid / grid_f64_s,
        "f32_multiT_pairs_per_sec": n_grid / grid_f32_s,
        "int8_multiT_pairs_per_sec": n_grid / grid_int8_s,
        "f32_speedup_vs_f64": grid_f64_s / grid_f32_s,
        "int8_speedup_vs_f64": grid_f64_s / grid_int8_s,
    }

    # -- precision drift of the reduced tiers on this grid -------------
    grid_ref = predictors["f64-1T"].predict_grid(plans, profiles)
    denom = np.maximum(np.abs(grid_ref), 1e-9)
    results["precision_drift"] = {
        name: float((np.abs(predictors[name].predict_grid(plans, profiles)
                            - grid_ref) / denom).max())
        for name in ("f32-multiT", "int8-multiT")
    }

    results["config"] = {
        "requests": N_REQUESTS,
        "pairs_per_request": PAIRS_PER_REQUEST,
        "grid_plans": GRID_PLANS,
        "grid_profiles": GRID_PROFILES,
        "min_grid_speedup": MIN_GRID_SPEEDUP,
        "max_p99_regression": MAX_P99_REGRESSION,
    }
    write_bench_json(BENCH_JSON, results)

    rows = [[name,
             f"{m['exact']['p50'] * 1e3:.2f}",
             f"{m['exact']['p95'] * 1e3:.2f}",
             f"{m['exact']['p99'] * 1e3:.2f}",
             f"{m['histogram']['p99'] * 1e3:.2f}",
             f"{m['requests_per_sec']:.0f}"]
            for name, m in results["modes"].items()]
    publish("latency_slo", render_table(
        f"Sustained-load latency ({N_REQUESTS} reqs × {PAIRS_PER_REQUEST} "
        "pairs, closed loop; ms)",
        ["mode", "p50", "p95", "p99", "p99 (hist)", "req/s"], rows))

    # -- gates ----------------------------------------------------------
    assert results["grid"]["f32_speedup_vs_f64"] >= MIN_GRID_SPEEDUP, \
        results["grid"]
    # int8 drift bounded by the documented q-error budget (DESIGN.md).
    assert results["precision_drift"]["int8-multiT"] <= 0.05, \
        results["precision_drift"]
    assert results["precision_drift"]["f32-multiT"] <= 1e-4, \
        results["precision_drift"]

    if baseline and "modes" in baseline:
        for name, stats in results["modes"].items():
            prior = baseline["modes"].get(name)
            if not prior:
                continue
            limit = prior["exact"]["p99"] * MAX_P99_REGRESSION
            assert stats["exact"]["p99"] <= limit, (
                f"{name} p99 {stats['exact']['p99']:.4f}s exceeds "
                f"{MAX_P99_REGRESSION}x committed baseline "
                f"{prior['exact']['p99']:.4f}s")
