"""Table VIII: training time and test error vs. training-set size.

Trains RAAL on growing subsets of the IMDB training records and reports
wall-clock training time and test RE per size.

Expected shape (paper Table VIII): training time grows roughly linearly
with data size; test error decreases as the training set grows; even
the smallest training set gives a usable model."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import get_pipeline, publish
from repro.core import variant
from repro.eval import render_table

FRACTIONS = [0.25, 0.5, 0.75, 1.0]


def test_table8_training_efficiency(benchmark):
    pipeline = get_pipeline("imdb")
    spec = variant("RAAL")
    all_samples = pipeline.samples_for(spec, "train")
    rng = np.random.default_rng(3)
    order = rng.permutation(len(all_samples))

    def run():
        rows = []
        for fraction in FRACTIONS:
            k = max(8, int(len(all_samples) * fraction))
            subset = [all_samples[i] for i in order[:k]]
            tv = pipeline.train_variant("RAAL", train_samples=subset)
            rows.append((k, tv.train_seconds, tv.metrics.re, tv.metrics.mse))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    publish("table8_training_efficiency", render_table(
        "Table VIII — training time and test error vs training-set size (IMDB)",
        ["training records", "train time (s)", "test RE", "test MSE"],
        [[k, f"{t:.1f}", re, mse] for k, t, re, mse in rows]))

    sizes = [k for k, *_ in rows]
    times = [t for _, t, *_ in rows]
    errors = [re for *_, re, _ in rows]
    assert sizes == sorted(sizes)
    # Shape 1: more data costs more training time.
    assert times[-1] > times[0], f"training time did not grow: {times}"
    # Shape 2: more data helps — the largest run beats the smallest.
    assert errors[-1] <= errors[0] * 1.05, (
        f"test RE did not improve with data: {errors}")
    # Shape 3: even the smallest model is usable (RE bounded).
    assert max(errors) < 2.0, f"smallest training set unusable: {errors}"
