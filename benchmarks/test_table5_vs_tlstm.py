"""Table V: RAAL vs. the relational-database cost model TLSTM.

Reproduces the paper's fixed-resource comparison: Spark SQL installed
locally with the resources fixed for every query ("similar to the
application scenario of a relational database"), RAAL receiving the
constant resource vector, TLSTM its tree-structured features.

Expected shape (paper Table V): RAAL has lower MSE and RE and higher
COR and R² than TLSTM."""

from __future__ import annotations

from benchmarks.conftest import get_fixed_pipeline, publish
from repro.eval import render_table


def test_table5_vs_tlstm(benchmark):
    pipeline = get_fixed_pipeline("imdb")

    def run():
        raal = pipeline.train_variant("RAAL")
        _, tlstm_metrics, _, _ = pipeline.train_tlstm(epochs=10)
        return raal.metrics, tlstm_metrics

    raal_metrics, tlstm_metrics = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        ["TLSTM", tlstm_metrics.re, tlstm_metrics.mse, tlstm_metrics.cor, tlstm_metrics.r2],
        ["RAAL", raal_metrics.re, raal_metrics.mse, raal_metrics.cor, raal_metrics.r2],
    ]
    publish("table5_vs_tlstm", render_table(
        "Table V — RAAL vs TLSTM (IMDB, fixed resources)",
        ["model", "RE", "MSE", "COR", "R2"], rows))

    wins = sum([
        raal_metrics.re <= tlstm_metrics.re,
        raal_metrics.mse <= tlstm_metrics.mse,
        raal_metrics.cor >= tlstm_metrics.cor,
        raal_metrics.r2 >= tlstm_metrics.r2,
    ])
    assert wins >= 3, (
        f"RAAL should beat TLSTM on at least 3 of 4 metrics, won {wins}: "
        f"RAAL={raal_metrics} TLSTM={tlstm_metrics}")
