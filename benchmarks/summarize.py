"""Assemble EXPERIMENTS.md from the benchmark suite's rendered results.

Run after ``pytest benchmarks/ --benchmark-only``:

    python benchmarks/summarize.py
"""

from __future__ import annotations

import pathlib

RESULTS = pathlib.Path(__file__).parent / "results"
TARGET = pathlib.Path(__file__).parent.parent / "EXPERIMENTS.md"

HEADER = """# EXPERIMENTS — paper vs. measured

Every table and figure of the paper's evaluation (Sec. V), regenerated
by `pytest benchmarks/ --benchmark-only` on the synthetic substrate
(see DESIGN.md for the substitution table). Absolute numbers differ
from the paper — the substrate is a simulator, the data synthetic, and
all sizes scaled to one CPU box — but each experiment's *shape* is
asserted programmatically by its benchmark and summarized below.

General placement of our measured metrics vs. the paper's: the paper
trains on 63k records and reports RE ≈ 0.1 and COR/R² > 0.9; our
default benchmark scale trains on ~1.5k records and lands at
RE ≈ 0.3-0.5 with R² ≈ 0.7-0.9. Raising `REPRO_BENCH_QUERIES` /
`REPRO_BENCH_EPOCHS` closes the gap at proportional compute cost.
"""

SECTIONS = [
    ("fig1_plan_selection", "Fig. 1 — default vs tuned plan choice", """
**Paper's shape:** the tuned cost model "can significantly reduce the
execution time of each query". **Measured:** the RAAL-selected plans cut
total execution time dramatically versus the Spark non-CBO default
(which picks join strategies from unfiltered base sizes); per-query
savings concentrate where the default's broadcast decision misfires.
"""),
    ("fig2_memory_impact", "Fig. 2 — impact of executor memory", """
**Paper's shape:** per-plan cost varies with memory even for the
single-table query; the optimal plan flips with memory (their Fig.
2(c): plan3 optimal at 4-5 GB, plan1 elsewhere). **Measured:** costs
move with memory for every query; broadcast-fallback cliffs produce an
optimal-plan flip on the two-table SMJ-leaning query, and rising GC
overhead makes more memory *hurt* once spills vanish — the paper's
non-monotonicity.
"""),
    ("fig6_table4_ablation", "Table IV + Fig. 6 — module ablations", """
**Paper's shape:** RAAL outperforms NE-LSTM (no structure embedding),
NA-LSTM (no node-aware attention), and RAAC (CNN); NA-LSTM's loss curve
fluctuates dramatically. **Measured (mean of 2 training seeds):** RAAL
leads or ties on the majority of metrics and clearly beats NA-LSTM and
RAAC; NE-LSTM is the closest ablation at this scale — with thousands
(rather than the paper's 63k) of records the structure embedding's
margin is within training noise, which we report honestly rather than
tune away. The NA-LSTM loss curve is the roughest, as in the paper.
"""),
    ("table5_vs_tlstm", "Table V — RAAL vs TLSTM", """
**Paper's shape:** RAAL has lower MSE/RE and higher COR/R² than the
relational-database TLSTM under fixed resources. **Measured:** RAAL
wins at least three of the four metrics; TLSTM's tree-structured
estimator remains the strongest baseline, as in the paper.
"""),
    ("table6_vs_gpsj", "Table VI — RAAL vs GPSJ", """
**Paper's shape:** the hand-crafted GPSJ model "has significant errors"
from over-reliance on statistics and rigid formulas; RAAL beats it
everywhere. **Measured:** RAAL wins on at least three of four metrics;
the GPSJ row shows exactly the failure mode the paper names (it sees
optimizer estimates, not true volumes, and has no memory term). A
CLEO-style per-operator micro-model is reported as an extra reference.
"""),
    ("table7_resource_ablation", "Table VII — resource-aware attention on/off", """
**Paper's shape:** "adding the resource-aware attention mechanism
improves the performance of each method", with the TPC-H MSE gap
especially large. **Measured:** resource awareness reduces MSE for the
clear majority of (dataset, variant) pairs — on TPC-H it cuts RAAL's
MSE by more than half — and resource-aware RAAL beats every
resource-blind variant.
"""),
    ("fig7_scatter", "Fig. 7 — actual vs estimated scatter", """
**Paper's shape:** the scatter without resource awareness is
"significantly more divergent". **Measured:** per-cost-bin relative
error and spread are consistently tighter with the resource-aware
attention layer on both datasets.
"""),
    ("fig8_adaptability", "Fig. 8 — adaptability across memory sizes", """
**Paper's shape:** metrics stay flat and strong as the collection
cluster's executor memory varies 1-6 GB. **Measured:** R² and MSE are
stable across all six memory-pinned clusters; no memory size collapses.
"""),
    ("table8_training_efficiency", "Table VIII — training time & error vs data size", """
**Paper's shape:** training time grows with data; test error decreases;
even small training sets give usable models. **Measured:** same three
trends on 25-100% subsets of the training records.
"""),
    ("table9_inference_time", "Table IX — online estimation time", """
**Paper's shape:** RAAL estimates 100 queries in 2.782 ms, TLSTM in
3.342 ms, GPSJ up to 50 ms/query — learned-model inference is
negligible. **Measured:** batched RAAL inference beats per-tree TLSTM
by ~4x and is comfortably optimizer-compatible (tens of ms per 100
queries on numpy/CPU vs. the paper's GPU). Our simplified GPSJ
evaluates a handful of closed-form formulas and is therefore fast,
unlike the paper's implementation which recomputes statistics per
query.
"""),
    ("ablation_onehot", "Extra — word2vec vs one-hot node semantics", """
**Paper's argument (Sec. IV-C):** one-hot encoding cannot represent
predicate conditions and "is not conducive to feature extraction
between similar nodes". **Measured (mean of 2 seeds):** the word2vec
encoder wins clearly on relative error; on MSE the curated workload
leaves one-hot surprisingly competitive at this data scale — an honest
scale effect (the paper's 63k records give word2vec's richer features
room to pay off).
"""),
    ("extension_aqe", "Extension — AQE vs the learned cost model", """
**Context:** Spark 3.x's adaptive query execution re-picks join
strategies from observed runtime statistics — an alternative fix for
the rule-based default's misfires. **Measured:** AQE recovers most of
the default's losses; RAAL stays in AQE's league while deciding
*before* execution (no runtime statistics needed) — the case for
learned pre-execution cost models.
"""),
    ("extension_model_update", "Extension — cluster drift and model update", """
**Paper's claim (Sec. I):** "learnable cost models can easily be
updated regularly and adapted to different clusters". **Measured:**
after the cluster's I/O throughput drifts to 40%, the stale model's
MSE roughly doubles; a short fine-tuning pass on records collected
post-drift recovers (or beats) the pre-drift accuracy.
"""),
    ("ablation_allocation", "Extra — static vs dynamic resource allocation", """
**Paper's context (Sec. II-A):** Spark offers both mechanisms and the
cost model captures the initial allocation under either. **Measured:**
the mechanism shifts absolute runtimes (acquisition latency vs. held
executors) but almost never changes plan orderings — supporting the
paper's choice to model the initial allocation only.
"""),
]

FOOTER = """
## Reproducing

```bash
pytest benchmarks/ --benchmark-only          # regenerate everything
python benchmarks/summarize.py              # rebuild this file
```

Scale knobs: `REPRO_BENCH_QUERIES` (default 120), `REPRO_BENCH_EPOCHS`
(default 50), `REPRO_BENCH_FIXED_QUERIES` (default 300, Tables V/VI),
`REPRO_BENCH_FIG8_QUERIES` / `REPRO_BENCH_FIG8_EPOCHS` (Fig. 8).
"""


def main() -> None:
    parts = [HEADER]
    for name, title, commentary in SECTIONS:
        parts.append(f"\n## {title}\n")
        parts.append(commentary.strip() + "\n")
        path = RESULTS / f"{name}.txt"
        if path.exists():
            parts.append("\n```\n" + path.read_text().strip() + "\n```\n")
        else:
            parts.append(f"\n*(run `pytest benchmarks/{name}*.py --benchmark-only` "
                         "to generate the measured table)*\n")
    parts.append(FOOTER)
    TARGET.write_text("".join(parts))
    print(f"wrote {TARGET}")


if __name__ == "__main__":
    main()
