"""Extension experiment: AQE vs the learned cost model.

Spark 3.x's adaptive query execution fixes many of the rule-based
default's misfires by re-picking join strategies from *observed*
runtime statistics. This bench positions the paper's contribution
against that alternative:

* **default** — Spark non-CBO rule (estimates, resource-blind);
* **AQE** — true sizes + memory-aware broadcast rule (needs runtime
  stats, so it cannot pick the plan before launching the query);
* **RAAL** — learned, resource-aware, decides *before* execution.

Expected shape: AQE recovers most of the default's losses; RAAL matches
AQE's league without needing runtime statistics — the argument for
learned pre-execution cost models."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import get_pipeline, get_trained, publish
from repro.cluster import PAPER_CLUSTER
from repro.core import CostPredictor, PlanSelector
from repro.engine import execute_plan
from repro.eval import render_table
from repro.plan import analyze, aqe_plan, spark_default_plan
from repro.sql import parse

NUM_QUERIES = 15


def test_extension_aqe(benchmark):
    pipeline = get_pipeline("imdb")
    trained = get_trained("imdb", "RAAL")
    predictor = CostPredictor(trained.encoder, trained.trainer)
    selector = PlanSelector(predictor, pipeline.catalog)
    resources = PAPER_CLUSTER

    test_sqls = sorted({r.sql for r in pipeline.split.test})[:NUM_QUERIES]

    def run():
        rows = []
        for i, sql in enumerate(test_sqls):
            query = analyze(parse(sql), pipeline.catalog)
            default = spark_default_plan(query, pipeline.catalog)
            execute_plan(default, pipeline.catalog)
            adaptive = aqe_plan(query, pipeline.catalog, resources)
            execute_plan(adaptive, pipeline.catalog)
            candidates = pipeline.collector.plans_for(sql)
            chosen = selector.select(query, resources, candidates=candidates).chosen
            rows.append((
                f"Q{i + 1}",
                pipeline.simulator.execute_mean(default, resources),
                pipeline.simulator.execute_mean(adaptive, resources),
                pipeline.simulator.execute_mean(chosen, resources),
            ))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    totals = [sum(r[i] for r in rows) for i in (1, 2, 3)]
    table_rows = [[q, d, a, t] for q, d, a, t in rows]
    table_rows.append(["TOTAL", *totals])
    publish("extension_aqe", render_table(
        "Extension — execution time (s): Spark default vs AQE vs RAAL-tuned",
        ["query", "default", "AQE", "RAAL"], table_rows))

    default_total, aqe_total, raal_total = totals
    # Shape 1: AQE beats the static default in aggregate.
    assert aqe_total < default_total, "AQE did not improve on the default"
    # Shape 2: the learned model stays in AQE's league (within 30%)
    # despite deciding before execution.
    assert raal_total <= aqe_total * 1.3, (
        f"RAAL total {raal_total:.1f}s far behind AQE {aqe_total:.1f}s")
