"""Overload-resilience harness: deadlines, shedding, and the ladder.

Drives the fully-armed guarded predictor (deadline + admission control
+ degradation ladder + accuracy canary) through six phases:

1. **baseline** — closed-loop stream, no faults: everything served by
   the learned stage, ladder healthy.
2. **saturation** — ``CLIENTS`` concurrent closed loops (≈4× the
   admission capacity) against a model with an injected per-bucket
   hang: admission sheds the excess instantly, the deadline bounds what
   is admitted, and the ladder demonstrably steps down
   (f64 → f32 → int8).
3. **watchdog** — a fresh guard (no ladder masking the learned stage)
   with the hang raised *past* the deadline: every learned attempt is
   abandoned by the bucket watchdog and the analytic chain answers
   inside the budget. No request may hang.
4. **recovery** — the fault is lifted under light load: the ladder
   climbs back to healthy via its hysteretic recovery path.
5. **canary** — the cached int8 bundle is corrupted in place (the
   staleness fingerprint still matches) with the canary shadow-sampling
   at 100%: the drift trips the ladder off the corrupt tier.
6. **shed fast-fail** — a ``reject``-mode guard behind a fully
   saturated admission controller: every request must fail in
   single-digit milliseconds, not queue.

Results go to ``BENCH_overload.json``. Gates (env-overridable):

* p99 of requests *accepted by the learned stage* under saturation must
  stay within ``deadline + REPRO_BENCH_OVERLOAD_GRACE_MS``;
* p99 of *all* requests (including degraded answers) must stay within
  the same bound — nothing hangs, nothing waits out the fault;
* shed requests must fail within ``REPRO_BENCH_OVERLOAD_SHED_GATE_MS``
  (default 5 ms);
* the saturation ladder history must contain both ``degraded_f32`` and
  ``degraded_int8``, and recovery must reach ``healthy``;
* the canary must trip at least once on the corrupted tier and step the
  ladder off it.

Scale knobs: ``REPRO_BENCH_OVERLOAD_CLIENTS`` (default 16),
``REPRO_BENCH_OVERLOAD_REQS`` (default 8 per client),
``REPRO_BENCH_OVERLOAD_DEADLINE_MS`` (default 50),
``REPRO_BENCH_OVERLOAD_STORM_SECONDS`` (default 2.5 — the saturation
storm keeps issuing requests at least this long so the ladder's
hysteresis dwell can elapse twice).
"""

from __future__ import annotations

import os
import pathlib
import threading
import time

import numpy as np

from benchmarks.conftest import get_fixed_pipeline, publish
from benchmarks.runmeta import write_bench_json
from repro import obs
from repro.baselines.gpsj import GPSJCostModel
from repro.core import CostPredictor
from repro.core.advisor import default_profile_grid
from repro.core.predictor import PredictorConfig
from repro.errors import Overloaded
from repro.eval import render_table
from repro.nn.precision import inference_weights, invalidate_inference_cache
from repro.reliability import (
    AccuracyCanary,
    AdmissionConfig,
    AdmissionController,
    DegradationLadder,
    FaultInjector,
    GuardedCostPredictor,
    LadderConfig,
    RetryPolicy,
)

BENCH_JSON = pathlib.Path(__file__).parent.parent / "BENCH_overload.json"

CLIENTS = int(os.environ.get("REPRO_BENCH_OVERLOAD_CLIENTS", "16"))
REQS_PER_CLIENT = int(os.environ.get("REPRO_BENCH_OVERLOAD_REQS", "8"))
DEADLINE_MS = float(os.environ.get("REPRO_BENCH_OVERLOAD_DEADLINE_MS", "50"))
HANG_MS = float(os.environ.get("REPRO_BENCH_OVERLOAD_HANG_MS", "30"))
WATCHDOG_HANG_MS = float(
    os.environ.get("REPRO_BENCH_OVERLOAD_WATCHDOG_HANG_MS", "80"))
GRACE_MS = float(os.environ.get("REPRO_BENCH_OVERLOAD_GRACE_MS", "25"))
SHED_GATE_MS = float(os.environ.get("REPRO_BENCH_OVERLOAD_SHED_GATE_MS", "5"))
STORM_SECONDS = float(
    os.environ.get("REPRO_BENCH_OVERLOAD_STORM_SECONDS", "2.5"))
RECOVERY_TIMEOUT_S = float(
    os.environ.get("REPRO_BENCH_OVERLOAD_RECOVERY_TIMEOUT_S", "15"))

PAIRS_PER_REQUEST = 4
MAX_IN_FLIGHT = 4


def _percentiles(samples: list[float]) -> dict[str, float]:
    arr = np.asarray(samples)
    return {"p50": float(np.percentile(arr, 50)),
            "p95": float(np.percentile(arr, 95)),
            "p99": float(np.percentile(arr, 99)),
            "max": float(arr.max())}


def _ladder(**overrides) -> DegradationLadder:
    config = dict(degrade_p99=0.020, window=16, min_samples=8,
                  hold_seconds=0.25, quarantine_seconds=5.0)
    config.update(overrides)
    return DegradationLadder(LadderConfig(**config))


def _storm(guard: GuardedCostPredictor, requests_per_client: int,
           make_request, min_duration: float = 0.0) -> dict:
    """``CLIENTS`` concurrent closed loops; per-request latency + source.

    Each client issues at least ``requests_per_client`` requests and
    keeps looping until ``min_duration`` wall seconds have elapsed —
    the saturation phase needs sustained pressure so the ladder's
    hysteresis dwell can expire, not just a fixed request count.
    """
    samples: list[tuple[float, str, str | None]] = []
    lock = threading.Lock()
    errors: list[BaseException] = []
    start = time.perf_counter()

    def client(seed: int) -> None:
        rng = np.random.default_rng(seed)
        issued = 0
        try:
            while (issued < requests_per_client
                   or time.perf_counter() - start < min_duration):
                pairs = make_request(rng)
                t0 = time.perf_counter()
                explained = guard.predict_many_explained(pairs)
                dt = time.perf_counter() - t0
                issued += 1
                with lock:
                    samples.append((dt, explained.source, explained.reason))
        except BaseException as exc:  # pragma: no cover - gate below
            with lock:
                errors.append(exc)

    threads = [threading.Thread(target=client, args=(seed,))
               for seed in range(CLIENTS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120.0)
    elapsed = time.perf_counter() - start
    hung = [t for t in threads if t.is_alive()]
    assert not hung, f"{len(hung)} client threads hung"
    assert not errors, errors[:3]

    latencies = [dt for dt, _, _ in samples]
    accepted = [dt for dt, source, reason in samples
                if source == "raal" and "shed" not in (reason or "")]
    by_reason = {
        "raal": sum(1 for _, s, _ in samples if s == "raal"),
        "shed": sum(1 for _, _, r in samples if r and "shed" in r),
        "deadline_exceeded": sum(1 for _, _, r in samples
                                 if r and "deadline_exceeded" in r),
        "ladder_fallback": sum(1 for _, _, r in samples
                               if r and "ladder in fallback" in r),
    }
    return {
        "requests": len(samples),
        "elapsed_seconds": elapsed,
        "all": _percentiles(latencies),
        "accepted_raal": _percentiles(accepted) if accepted else None,
        "accepted_count": len(accepted),
        "outcomes": by_reason,
    }


def test_overload_resilience():
    pipeline = get_fixed_pipeline("imdb")
    trained = pipeline.train_variant("RAAL", epochs=4)
    base = CostPredictor(trained.encoder, trained.trainer,
                         PredictorConfig(threads=2))
    model = trained.trainer.model
    gpsj = GPSJCostModel(pipeline.catalog)

    records = pipeline.split.test
    plans = list({id(r.plan): r.plan for r in records}.values())[:8]
    profiles = default_profile_grid()[:16]

    def make_request(rng):
        return [(plans[int(i)], profiles[int(j)])
                for i, j in zip(rng.integers(0, len(plans), PAIRS_PER_REQUEST),
                                rng.integers(0, len(profiles),
                                             PAIRS_PER_REQUEST))]

    injector = FaultInjector()
    results: dict = {"config": {
        "clients": CLIENTS, "requests_per_client": REQS_PER_CLIENT,
        "deadline_ms": DEADLINE_MS, "hang_ms": HANG_MS,
        "watchdog_hang_ms": WATCHDOG_HANG_MS, "grace_ms": GRACE_MS,
        "storm_seconds": STORM_SECONDS, "max_in_flight": MAX_IN_FLIGHT,
        "pairs_per_request": PAIRS_PER_REQUEST,
    }}
    telemetry = obs.Telemetry.create()
    with obs.attached(telemetry):
        # -- phase 1: baseline, no faults ------------------------------
        ladder = _ladder()
        admission = AdmissionController(AdmissionConfig(
            max_in_flight=MAX_IN_FLIGHT, max_queue_depth=MAX_IN_FLIGHT,
            max_wait_seconds=0.010))
        guard = GuardedCostPredictor(
            base, gpsj=gpsj, admission=admission, ladder=ladder,
            canary=AccuracyCanary(sample_rate=0.01),
            default_deadline_ms=DEADLINE_MS,
            retry_policy=RetryPolicy(attempts=1))
        rng = np.random.default_rng(0)
        guard.predict_many(make_request(rng))  # warm caches + pools
        baseline_samples = []
        for _ in range(20):
            t0 = time.perf_counter()
            explained = guard.predict_many_explained(make_request(rng))
            baseline_samples.append(time.perf_counter() - t0)
            assert explained.source == "raal", explained
        results["baseline"] = {"all": _percentiles(baseline_samples),
                               "ladder": ladder.state}

        # -- phase 2: 4x saturation with a per-bucket hang -------------
        restore = injector.force_bucket_hang(model, HANG_MS / 1e3)
        try:
            results["saturation"] = _storm(guard, REQS_PER_CLIENT,
                                           make_request,
                                           min_duration=STORM_SECONDS)
        finally:
            restore()
        results["saturation"]["ladder_history"] = [
            {"old": t.old, "new": t.new, "reason": t.reason}
            for t in ladder.history]
        results["saturation"]["admission"] = admission.snapshot()

        # -- phase 3: the hang outlives the deadline (watchdog) --------
        # Fresh guard without a ladder: the saturation ladder is fully
        # degraded by now and would route everything around the model,
        # leaving the watchdog untested.
        watchdog_guard = GuardedCostPredictor(
            base, gpsj=gpsj,
            admission=AdmissionController(AdmissionConfig(
                max_in_flight=MAX_IN_FLIGHT, max_queue_depth=MAX_IN_FLIGHT,
                max_wait_seconds=0.010)),
            default_deadline_ms=DEADLINE_MS,
            retry_policy=RetryPolicy(attempts=1))
        restore = injector.force_bucket_hang(model, WATCHDOG_HANG_MS / 1e3)
        try:
            results["watchdog"] = _storm(watchdog_guard,
                                         max(REQS_PER_CLIENT // 2, 2),
                                         make_request)
        finally:
            restore()

        # -- phase 4: fault lifted, ladder recovers --------------------
        recovery_start = time.perf_counter()
        recovered_at = None
        while time.perf_counter() - recovery_start < RECOVERY_TIMEOUT_S:
            guard.predict_many(make_request(rng))
            if ladder.state == "healthy":
                recovered_at = time.perf_counter() - recovery_start
                break
        results["recovery"] = {
            "ladder": ladder.state,
            "seconds_to_healthy": recovered_at,
            "transitions_total": len(ladder.history),
        }

        # -- phase 5: corrupt int8 bundle, canary trips ----------------
        # hold_seconds=0 so the push-down needs no wall-clock dwell.
        canary_ladder = _ladder(hold_seconds=0.0)
        for _ in range(40):  # drive it onto the int8 rung
            canary_ladder.record(0.05)
            if canary_ladder.state == "degraded_int8":
                break
        assert canary_ladder.state == "degraded_int8", canary_ladder.state
        canary = AccuracyCanary(sample_rate=1.0, budget=0.05)
        canary_guard = GuardedCostPredictor(
            base, gpsj=gpsj, ladder=canary_ladder, canary=canary,
            retry_policy=RetryPolicy(attempts=1))
        inference_weights(model, "int8")  # materialize the cached bundle
        try:
            corrupted = injector.corrupt_precision_cache(model, "int8",
                                                         magnitude=0.5)
            canary_guard.predict_many(make_request(rng))
        finally:
            invalidate_inference_cache(model)
        results["canary"] = {
            "arrays_corrupted": corrupted,
            **canary.snapshot(),
            "ladder_after": canary_ladder.state,
        }

        # -- phase 6: shed fast-fail -----------------------------------
        shed_admission = AdmissionController(AdmissionConfig(
            max_in_flight=1, max_queue_depth=0))
        reject_guard = GuardedCostPredictor(
            base, gpsj=gpsj, admission=shed_admission, shed_mode="reject",
            retry_policy=RetryPolicy(attempts=1))
        reject_guard.predict_many(make_request(rng))  # warm encode cache
        release = injector.force_queue_saturation(shed_admission)
        shed_samples = []
        try:
            for _ in range(20):
                pairs = make_request(rng)
                t0 = time.perf_counter()
                try:
                    reject_guard.predict_many(pairs)
                    raise AssertionError("saturated guard must shed")
                except Overloaded:
                    shed_samples.append(time.perf_counter() - t0)
        finally:
            release()
        results["shed_fastfail"] = _percentiles(shed_samples)

        results["counters"] = {
            name: telemetry.registry.get(name).value
            for name in ("predict.shed_total",
                         "predict.deadline_exceeded_total",
                         "guard.raal.deadline_exceeded_total",
                         "ladder.transitions_total",
                         "canary.trips_total")
            if telemetry.registry.get(name) is not None
        }

    write_bench_json(BENCH_JSON, results)

    sat = results["saturation"]
    rows = [
        ["baseline", f"{results['baseline']['all']['p99'] * 1e3:.1f}", "-",
         "-", results["baseline"]["ladder"]],
        ["saturation", f"{sat['all']['p99'] * 1e3:.1f}",
         str(sat["outcomes"]["shed"]),
         str(sat["outcomes"]["deadline_exceeded"]),
         sat["ladder_history"][-1]["new"] if sat["ladder_history"] else "-"],
        ["watchdog", f"{results['watchdog']['all']['p99'] * 1e3:.1f}",
         str(results["watchdog"]["outcomes"]["shed"]),
         str(results["watchdog"]["outcomes"]["deadline_exceeded"]), "-"],
        ["recovery", "-", "-", "-", results["recovery"]["ladder"]],
        ["canary trip", "-", "-", "-", results["canary"]["ladder_after"]],
        ["shed fast-fail", f"{results['shed_fastfail']['p99'] * 1e3:.2f}",
         str(len(shed_samples)), "-", "-"],
    ]
    publish("overload_resilience", render_table(
        f"Overload resilience ({CLIENTS} clients, {DEADLINE_MS:.0f}ms "
        f"deadline, {HANG_MS:.0f}ms hang; p99 ms)",
        ["phase", "p99", "shed", "deadline", "ladder"], rows))

    # -- gates ----------------------------------------------------------
    bound = (DEADLINE_MS + GRACE_MS) / 1e3
    if sat["accepted_raal"] is not None:
        assert sat["accepted_raal"]["p99"] <= bound, sat["accepted_raal"]
    assert sat["all"]["p99"] <= bound, sat["all"]
    assert results["watchdog"]["all"]["p99"] <= bound, results["watchdog"]
    ladder_states = {t["new"] for t in sat["ladder_history"]}
    assert "degraded_f32" in ladder_states, sat["ladder_history"]
    assert "degraded_int8" in ladder_states, sat["ladder_history"]
    assert results["recovery"]["ladder"] == "healthy", results["recovery"]
    assert results["shed_fastfail"]["p99"] <= SHED_GATE_MS / 1e3, \
        results["shed_fastfail"]
    assert results["canary"]["trips"] >= 1, results["canary"]
    assert results["canary"]["ladder_after"] == "degraded_f32", \
        results["canary"]
