"""Table IX: online estimation time for 100 queries.

Times batched cost prediction of 100 test records for RAAL (batched,
as in the paper), TLSTM (per-tree), and GPSJ (analytic evaluation).

Expected shape (paper Table IX): the learned models estimate 100
queries in milliseconds; RAAL's batched inference is at least
competitive with TLSTM; all are fast enough to be negligible at
optimization time."""

from __future__ import annotations

import time

from benchmarks.conftest import get_fixed_pipeline, publish
from repro.baselines import GPSJCostModel
from repro.core import variant
from repro.eval import render_table

NUM_QUERIES = 100


def test_table9_inference_time(benchmark):
    pipeline = get_fixed_pipeline("imdb")
    spec = variant("RAAL")

    raal = pipeline.train_variant("RAAL", epochs=6)
    tlstm_trainer, _, _, _ = pipeline.train_tlstm(epochs=2)
    gpsj = GPSJCostModel(pipeline.catalog).calibrate(pipeline.split.train)

    test_records = (pipeline.split.test * 10)[:NUM_QUERIES]
    encoder = pipeline.encoder_for(spec)
    encoded = [encoder.encode(r.plan, r.resources) for r in test_records]

    def time_raal():
        raal.trainer.predict_seconds(encoded)

    def others():
        t0 = time.perf_counter()
        tlstm_trainer.predict_seconds(test_records, encoder)
        tlstm_ms = (time.perf_counter() - t0) * 1000
        t0 = time.perf_counter()
        for record in test_records:
            gpsj.estimate(record.plan, record.resources)
        gpsj_ms = (time.perf_counter() - t0) * 1000
        return tlstm_ms, gpsj_ms

    # The pytest-benchmark statistics cover RAAL's batched inference.
    benchmark(time_raal)
    raal_ms = benchmark.stats["mean"] * 1000
    tlstm_ms, gpsj_ms = others()

    publish("table9_inference_time", render_table(
        f"Table IX — estimation time for {NUM_QUERIES} queries (ms)",
        ["model", "time (ms)"],
        [["RAAL", f"{raal_ms:.3f}"],
         ["TLSTM", f"{tlstm_ms:.3f}"],
         ["GPSJ", f"{gpsj_ms:.3f}"]]))

    # Shape: batched RAAL inference is faster than per-tree TLSTM, and
    # everything finishes within optimizer-friendly time.
    assert raal_ms < tlstm_ms, f"RAAL ({raal_ms:.1f}ms) slower than TLSTM ({tlstm_ms:.1f}ms)"
    assert raal_ms < 2000, f"RAAL inference too slow: {raal_ms:.1f}ms"
