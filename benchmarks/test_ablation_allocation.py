"""Substrate ablation: static vs. dynamic resource allocation.

The paper (Sec. II-A) describes Spark's two allocation mechanisms and
notes its cost model captures the *initial* allocation under either.
This bench quantifies the mechanism's effect in the simulator: short
queries pay dynamic allocation's executor-acquisition latency, long
scans amortize it.

Expected shape: the allocation mechanism shifts absolute runtimes but
preserves plan orderings — which is why a cost model trained under one
mechanism still ranks plans usefully under the other."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import publish
from repro.cluster import PAPER_CLUSTER, SimulatorParams, SparkSimulator
from repro.data import build_imdb_catalog
from repro.engine import execute_plan
from repro.eval import render_table
from repro.plan import analyze, enumerate_plans
from repro.sql import parse
from repro.workload import job_style_templates, paper_section3_queries


def test_ablation_allocation(benchmark):
    catalog = build_imdb_catalog(scale=0.2, seed=7)
    static_sim = SparkSimulator(params=SimulatorParams(noise_sigma=0.0,
                                                       allocation="static"))
    dynamic_sim = SparkSimulator(params=SimulatorParams(noise_sigma=0.0,
                                                        allocation="dynamic"))

    templates = paper_section3_queries() + job_style_templates()

    def run():
        rows = []
        orderings_match = []
        for template in templates:
            query = analyze(parse(template.render(catalog)), catalog)
            plans = enumerate_plans(query, catalog)[:3]
            for plan in plans:
                execute_plan(plan, catalog)
            static_times = [static_sim.execute(p, PAPER_CLUSTER).runtime_seconds
                            for p in plans]
            dynamic_times = [dynamic_sim.execute(p, PAPER_CLUSTER).runtime_seconds
                             for p in plans]
            rows.append([template.name,
                         f"{min(static_times):.2f}", f"{min(dynamic_times):.2f}",
                         int(np.argmin(static_times)) + 1,
                         int(np.argmin(dynamic_times)) + 1])
            orderings_match.append(
                np.argsort(static_times).tolist() == np.argsort(dynamic_times).tolist())
        return rows, orderings_match

    rows, orderings_match = benchmark.pedantic(run, rounds=1, iterations=1)

    publish("ablation_allocation", render_table(
        "Substrate ablation — static vs dynamic resource allocation",
        ["query", "static best (s)", "dynamic best (s)",
         "static best plan", "dynamic best plan"], rows))

    # Shape: the allocation mechanism rarely changes plan orderings.
    assert sum(orderings_match) >= len(orderings_match) * 0.7, (
        f"plan orderings diverged too often: {orderings_match}")
    # And the best-plan choice itself is stable for most queries.
    same_best = sum(r[3] == r[4] for r in rows)
    assert same_best >= len(rows) * 0.7
