"""Table VII: the impact of the resource-aware attention layer.

For NE-LSTM, NA-LSTM, RAAC, and RAAL, trains each variant twice on the
varying-resource records — once *without* the resource-aware attention
layer (resource-blind) and once with it — on both IMDB (Tencent-cloud
analogue) and TPC-H (Ali-cloud analogue).

Expected shape (paper Table VII): adding resource-aware attention
improves every variant; RAAL with resources is the best overall."""

from __future__ import annotations

from benchmarks.conftest import get_trained, publish
from repro.eval import render_table

VARIANT_NAMES = ["NE-LSTM", "NA-LSTM", "RAAC", "RAAL"]
DATASETS = ["imdb", "tpch"]


def test_table7_resource_ablation(benchmark):
    def run():
        out = {}
        for dataset in DATASETS:
            for name in VARIANT_NAMES:
                out[(dataset, name, False)] = get_trained(dataset, name, False)
                out[(dataset, name, True)] = get_trained(dataset, name, True)
        return out

    trained = benchmark.pedantic(run, rounds=1, iterations=1)

    blocks = []
    for dataset in DATASETS:
        rows = []
        for name in VARIANT_NAMES:
            blind = trained[(dataset, name, False)].metrics
            aware = trained[(dataset, name, True)].metrics
            rows.append([
                name,
                f"{blind.re:.4f} / {aware.re:.4f}",
                f"{blind.mse:.4f} / {aware.mse:.4f}",
                f"{blind.cor:.4f} / {aware.cor:.4f}",
                f"{blind.r2:.4f} / {aware.r2:.4f}",
            ])
        blocks.append(render_table(
            f"Table VII ({dataset.upper()}) — without / with resource-aware attention",
            ["model", "RE", "MSE", "COR", "R2"], rows))
    publish("table7_resource_ablation", "\n\n".join(blocks))

    # Shape 1: resource awareness reduces MSE for most (dataset, variant)
    # combinations — the paper's central claim.
    improvements = 0
    total = 0
    for dataset in DATASETS:
        for name in VARIANT_NAMES:
            blind = trained[(dataset, name, False)].metrics
            aware = trained[(dataset, name, True)].metrics
            total += 1
            if aware.mse <= blind.mse:
                improvements += 1
    assert improvements >= total * 0.75, (
        f"resource-aware attention only improved {improvements}/{total} cases")

    # Shape 2: resource-aware RAAL beats every resource-blind variant per
    # dataset, and stays within 25% of the overall best MSE (the paper's
    # finer RA-variant ordering is below this scale's noise floor).
    for dataset in DATASETS:
        raal = trained[(dataset, "RAAL", True)].metrics.mse
        blind = [trained[(dataset, n, False)].metrics.mse for n in VARIANT_NAMES]
        assert all(raal <= b for b in blind), (
            f"{dataset}: RAAL+RA (mse={raal:.4f}) lost to a resource-blind "
            f"variant: {blind}")
        best = min(trained[(dataset, n, ra)].metrics.mse
                   for n in VARIANT_NAMES for ra in (False, True))
        # The paper's finer claim (RAAL strictly best among RA variants)
        # needs its 63k-record training sets to resolve; at our scale we
        # assert RAAL+RA stays within 1.5x of the best variant's MSE.
        assert raal <= best * 1.5, (
            f"{dataset}: RAAL+RA (mse={raal:.4f}) far from best ({best:.4f})")
