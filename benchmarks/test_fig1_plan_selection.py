"""Figure 1: default cost model vs. the tuned (RAAL) cost model.

Reproduces the paper's motivating figure: for twenty queries, compare
the execution time of the plan Spark's rule-based default picks against
the plan the trained RAAL model picks given the current resources.

The default is Spark's *non-CBO* behaviour (``spark_default_plan``):
join strategies chosen from unfiltered base-relation sizes against the
stock broadcast threshold — the realistic baseline whose misfires the
paper's Fig. 1 exploits.

Expected shape (paper Fig. 1): the tuned model reduces execution time
on most queries and substantially in aggregate."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import get_pipeline, get_trained, publish
from repro.cluster import PAPER_CLUSTER
from repro.core import CostPredictor, PlanSelector
from repro.engine import execute_plan
from repro.eval import render_table
from repro.plan import analyze, spark_default_plan
from repro.sql import parse

NUM_QUERIES = 20


def test_fig1_plan_selection(benchmark):
    pipeline = get_pipeline("imdb")
    trained = get_trained("imdb", "RAAL")
    predictor = CostPredictor(trained.encoder, trained.trainer)
    selector = PlanSelector(predictor, pipeline.catalog)

    # Use *test* queries (unseen during training), as a deployment would.
    test_sqls = sorted({r.sql for r in pipeline.split.test})[:NUM_QUERIES]
    plans_by_sql = {sql: pipeline.collector.plans_for(sql) for sql in test_sqls}
    resources = PAPER_CLUSTER

    def run():
        rows = []
        for i, sql in enumerate(test_sqls):
            query = analyze(parse(sql), pipeline.catalog)
            default = spark_default_plan(query, pipeline.catalog)
            execute_plan(default, pipeline.catalog)
            result = selector.select(query, resources,
                                     candidates=plans_by_sql[sql])
            default_time = pipeline.simulator.execute_mean(default, resources)
            tuned_time = pipeline.simulator.execute_mean(result.chosen, resources)
            rows.append((f"Q{i + 1}", default_time, tuned_time))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table_rows = [[q, d, t, f"{(d - t) / d * 100:.1f}%"] for q, d, t in rows]
    default_total = sum(d for _, d, _ in rows)
    tuned_total = sum(t for _, _, t in rows)
    table_rows.append(["TOTAL", default_total, tuned_total,
                       f"{(default_total - tuned_total) / default_total * 100:.1f}%"])
    publish("fig1_plan_selection", render_table(
        "Fig. 1 — execution time (s): Spark default vs RAAL-tuned plan choice",
        ["query", "default", "tuned", "saved"], table_rows))

    defaults = np.array([d for _, d, _ in rows])
    tuned = np.array([t for _, _, t in rows])
    # Shape: tuned picks at least match the default on most queries and
    # win significantly in aggregate.
    assert (tuned <= defaults * 1.05).mean() >= 0.7, \
        "tuned selection lost to the default on too many queries"
    assert tuned.sum() <= defaults.sum() * 0.9, \
        "tuned selection did not significantly reduce total execution time"
