"""Table VI: RAAL vs. the hand-crafted Spark SQL cost model GPSJ.

Same fixed-resource setting as Table V. GPSJ is the analytic model of
Baldacci & Golfarelli, calibrated only by a global scale constant. A
CLEO/Microlearner-style per-operator micro-model (from the paper's
related work) is reported alongside as an extra reference point.

Expected shape (paper Table VI): GPSJ has significant errors (it
over-relies on statistics and linear formulas); RAAL is better on all
four metrics, and also beats the micro-model (which cannot see
cross-operator interactions)."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import get_fixed_pipeline, publish
from repro.baselines import MicroCostModel
from repro.eval import compute_metrics, render_table


def test_table6_vs_gpsj(benchmark):
    pipeline = get_fixed_pipeline("imdb")

    def run():
        raal = pipeline.train_variant("RAAL")
        gpsj_metrics, _, _ = pipeline.evaluate_gpsj()
        micro = MicroCostModel().fit(pipeline.split.train)
        actual = np.array([r.cost_seconds for r in pipeline.split.test])
        micro_metrics = compute_metrics(
            actual, micro.predict_records(pipeline.split.test))
        return raal.metrics, gpsj_metrics, micro_metrics

    raal_metrics, gpsj_metrics, micro_metrics = benchmark.pedantic(
        run, rounds=1, iterations=1)

    rows = [
        ["GPSJ", gpsj_metrics.re, gpsj_metrics.mse, gpsj_metrics.cor, gpsj_metrics.r2],
        ["MicroModel", micro_metrics.re, micro_metrics.mse,
         micro_metrics.cor, micro_metrics.r2],
        ["RAAL", raal_metrics.re, raal_metrics.mse, raal_metrics.cor, raal_metrics.r2],
    ]
    publish("table6_vs_gpsj", render_table(
        "Table VI — RAAL vs GPSJ (+ micro-model reference; IMDB, fixed resources)",
        ["model", "RE", "MSE", "COR", "R2"], rows))

    wins = sum([
        raal_metrics.re <= gpsj_metrics.re,
        raal_metrics.mse <= gpsj_metrics.mse,
        raal_metrics.cor >= gpsj_metrics.cor,
        raal_metrics.r2 >= gpsj_metrics.r2,
    ])
    assert wins >= 3, (
        f"RAAL should beat GPSJ on at least 3 of 4 metrics, won {wins}: "
        f"RAAL={raal_metrics} GPSJ={gpsj_metrics}")
    assert raal_metrics.mse <= micro_metrics.mse, (
        f"RAAL ({raal_metrics.mse:.4f}) lost to the micro-model "
        f"({micro_metrics.mse:.4f}) on MSE")
