"""Figure 7: actual vs. estimated cost, with/without resource awareness.

Renders the scatter of Fig. 7 as per-bin summaries: test points grouped
by actual cost, with the mean estimate and relative-error spread per
bin, for RAAL without vs. with the resource-aware attention layer, on
IMDB and TPC-H.

Expected shape (paper Fig. 7): the resource-blind model's points are
"significantly more divergent" — larger error spread — than the
resource-aware model's."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import get_trained, publish
from repro.eval import render_scatter_summary

DATASETS = ["imdb", "tpch"]


def _spread(actual: np.ndarray, estimated: np.ndarray) -> float:
    rel = np.abs(estimated - actual) / np.maximum(actual, 1e-9)
    return float(rel.mean())


def test_fig7_scatter(benchmark):
    def run():
        out = {}
        for dataset in DATASETS:
            out[(dataset, False)] = get_trained(dataset, "RAAL", False)
            out[(dataset, True)] = get_trained(dataset, "RAAL", True)
        return out

    trained = benchmark.pedantic(run, rounds=1, iterations=1)

    blocks = []
    for dataset in DATASETS:
        for aware in (False, True):
            tv = trained[(dataset, aware)]
            label = "with" if aware else "without"
            blocks.append(render_scatter_summary(
                f"Fig. 7 ({dataset.upper()}, {label} resource-aware attention)",
                tv.actual, tv.estimated))
    publish("fig7_scatter", "\n\n".join(blocks))

    # Shape: the resource-aware model's scatter is tighter on both
    # datasets (smaller mean relative divergence).
    for dataset in DATASETS:
        blind = trained[(dataset, False)]
        aware = trained[(dataset, True)]
        assert _spread(aware.actual, aware.estimated) <= \
            _spread(blind.actual, blind.estimated) * 1.05, (
                f"{dataset}: resource-aware scatter is not tighter")
