"""Training throughput: the fused analytic backward vs autograd.

Measures epoch throughput (samples/sec) for ``Trainer.fit`` on the
paper-sized RAAL configuration, on the fast path (graph-free forward
with cached activations + closed-form backward + epoch-persistent
bucketed collation) and on the legacy path (per-timestep autograd graph
construction and traversal). Also records the maximum per-parameter
gradient deviation between the two paths on one training batch, so the
speedup claim and the correctness bound live in the same artifact.

Results go to ``BENCH_training.json`` at the repo root, alongside
``BENCH_inference.json``, so future PRs have a perf trajectory to
regress against.

Expected shape: ≥ 3× samples/sec for the fused path, gradient
deviation ≤ 1e-8.

Scale overrides: ``REPRO_BENCH_TRAIN_SAMPLES`` (default 256) and
``REPRO_BENCH_TRAIN_EPOCHS`` (default 3). CI smoke runs on shared
runners can relax the speedup bar with
``REPRO_BENCH_TRAIN_MIN_SPEEDUP`` (default 3.0); the gradient bound is
scale-independent and never relaxed.
"""

from __future__ import annotations

import os
import pathlib

import numpy as np

from benchmarks.runmeta import write_bench_json
from benchmarks.conftest import publish
from repro.core import RAAL, RAALConfig, Trainer, TrainerConfig
from repro.core.trainer import TrainingSample
from repro.encoding import EncodedPlan
from repro.eval import render_table
from repro.nn import Tensor, mse_loss
from repro.nn.layers import Dropout

BENCH_JSON = pathlib.Path(__file__).parent.parent / "BENCH_training.json"

N_SAMPLES = int(os.environ.get("REPRO_BENCH_TRAIN_SAMPLES", "256"))
N_EPOCHS = int(os.environ.get("REPRO_BENCH_TRAIN_EPOCHS", "3"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_TRAIN_MIN_SPEEDUP", "3.0"))
BATCH_SIZE = 32
MAX_NODES = 24

#: The paper's model size (Sec. V-B): 60-dim nodes, 48 hidden units.
MODEL_CONFIG = RAALConfig()


def _random_samples(config, count, max_n, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(count):
        n = int(rng.integers(3, max_n + 1))
        child = np.zeros((n, n), dtype=bool)
        for i in range(1, n):
            child[i, rng.integers(0, i)] = True
        encoded = EncodedPlan(
            node_features=rng.normal(size=(n, config.node_dim)),
            child_mask=child,
            resources=rng.random(config.resource_dim),
            extras=rng.random(config.extras_dim),
        )
        out.append(TrainingSample(encoded, float(rng.random() * 30.0)))
    return out


def _fit_throughput(fast_path: bool, samples, repeats: int = 2) -> dict[str, float]:
    """Train fresh models for N_EPOCHS each; return samples/sec stats.

    ``samples_per_sec`` is the best epoch across ``repeats`` runs — the
    best-of-N idiom the inference benchmark uses, which measures the
    code path rather than scheduler noise on a shared box.
    """
    results = []
    for _ in range(repeats):
        model = RAAL(MODEL_CONFIG)
        trainer = Trainer(model, TrainerConfig(
            epochs=N_EPOCHS, batch_size=BATCH_SIZE, fast_path=fast_path,
            early_stopping_patience=N_EPOCHS))
        results.append(trainer.fit(samples))
    n_train = len(samples) - max(1, int(len(samples) * 0.1))
    total_epochs = sum(len(r.epoch_seconds) for r in results)
    total_seconds = sum(sum(r.epoch_seconds) for r in results)
    return {
        "epochs": total_epochs,
        "epoch_seconds_mean": total_seconds / total_epochs,
        "epoch_seconds_best": min(min(r.epoch_seconds) for r in results),
        "samples_per_sec": max(max(r.samples_per_sec) for r in results),
        "samples_per_sec_mean": n_train * total_epochs / total_seconds,
        "final_train_loss": results[-1].final_train_loss,
    }


def _gradient_deviation(samples) -> float:
    """Max per-parameter |fused − autograd| gradient on one train batch.

    Runs in train mode with dropout active; the fused pass replays the
    autograd pass's dropout masks by restoring each layer's rng state.
    """
    model = RAAL(MODEL_CONFIG).train()
    trainer = Trainer(model, TrainerConfig(batch_size=BATCH_SIZE))
    batch = trainer._collate_bucketed(samples[:BATCH_SIZE])[0]
    droppers = [l for l in model.dense if isinstance(l, Dropout)]
    states = [l._rng.bit_generator.state for l in droppers]
    model.zero_grad()
    mse_loss(model(batch), Tensor(batch.targets)).backward()
    reference = {n: p.grad.copy() for n, p in model.named_parameters()}
    for layer, state in zip(droppers, states):
        layer._rng.bit_generator.state = state
    model.zero_grad()
    model.forward_backward(batch)
    return max(float(np.max(np.abs(p.grad - reference[n])))
               for n, p in model.named_parameters())


def test_train_throughput():
    samples = _random_samples(MODEL_CONFIG, N_SAMPLES, MAX_NODES)

    # Warm both paths (BLAS thread pools, allocator) before timing.
    warm = _random_samples(MODEL_CONFIG, 32, MAX_NODES, seed=1)
    _fit_throughput(True, warm)
    _fit_throughput(False, warm)

    fast = _fit_throughput(True, samples)
    legacy = _fit_throughput(False, samples)
    speedup = fast["samples_per_sec"] / legacy["samples_per_sec"]
    grad_dev = _gradient_deviation(samples)

    results = {
        "fast": fast,
        "legacy": legacy,
        "speedup": speedup,
        "max_grad_deviation": grad_dev,
        "config": {
            "samples": N_SAMPLES,
            "epochs": N_EPOCHS,
            "batch_size": BATCH_SIZE,
            "max_nodes": MAX_NODES,
            "node_dim": MODEL_CONFIG.node_dim,
            "hidden_size": MODEL_CONFIG.hidden_size,
        },
    }
    write_bench_json(BENCH_JSON, results)

    rows = [[name,
             f"{stats['samples_per_sec']:.0f}",
             f"{stats['epoch_seconds_mean'] * 1e3:.0f}",
             f"{stats['final_train_loss']:.4f}"]
            for name, stats in (("fast", fast), ("legacy", legacy))]
    rows.append(["speedup", f"{speedup:.1f}x", "", ""])
    rows.append(["max grad deviation", f"{grad_dev:.2e}", "", ""])
    publish("train_throughput", render_table(
        f"Training throughput — fused analytic backward vs autograd "
        f"({N_SAMPLES} samples, {N_EPOCHS} epochs)",
        ["path", "samples/sec", "epoch (ms)", "final loss"], rows))

    # Shape: the fused step must carry the training loop at least 3x
    # faster while remaining gradient-equivalent to autograd.
    assert speedup >= MIN_SPEEDUP, results
    assert grad_dev <= 1e-8, results
