"""Extra ablation (motivated by Sec. IV-C): word2vec vs one-hot node
semantics.

The paper argues that one-hot node encoding "is not conducive to
feature extraction between similar nodes" and cannot represent complex
predicate conditions; this bench quantifies that claim by training the
same RAAL architecture with one-hot operator encodings (OH-LSTM)
against the word2vec node-semantic encoder, averaging over training
seeds.

Expected shape: word2vec wins clearly on relative error (it sees
predicate structure the one-hot scheme discards); on MSE the curated
workload leaves one-hot surprisingly competitive at this data scale,
so the assertion allows a tolerance there."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import get_pipeline, publish
from repro.eval import render_table

SEEDS = [0, 1]


def test_ablation_onehot(benchmark):
    pipeline = get_pipeline("imdb")

    def run():
        return {
            name: [pipeline.train_variant(name, seed=seed) for seed in SEEDS]
            for name in ("OH-LSTM", "RAAL")
        }

    trained = benchmark.pedantic(run, rounds=1, iterations=1)

    def mean(name: str, attr: str) -> float:
        return float(np.mean([getattr(t.metrics, attr) for t in trained[name]]))

    rows = []
    for name in ("OH-LSTM", "RAAL"):
        rows.append([name, mean(name, "re"), mean(name, "mse"),
                     mean(name, "cor"), mean(name, "r2")])
    publish("ablation_onehot", render_table(
        f"Extra ablation — one-hot vs word2vec node semantics "
        f"(IMDB, mean of {len(SEEDS)} seeds)",
        ["model", "RE", "MSE", "COR", "R2"], rows))

    # Primary claim: predicate-aware word2vec features give lower
    # relative error.
    assert mean("RAAL", "re") <= mean("OH-LSTM", "re"), (
        f"word2vec RE {mean('RAAL', 're'):.3f} lost to one-hot "
        f"{mean('OH-LSTM', 're'):.3f}")
    # Secondary: MSE stays within tolerance of one-hot (at this scale
    # one-hot's compact features are competitive on squared error).
    assert mean("RAAL", "mse") <= mean("OH-LSTM", "mse") * 1.25, (
        f"word2vec MSE {mean('RAAL', 'mse'):.3f} far behind one-hot "
        f"{mean('OH-LSTM', 'mse'):.3f}")
