"""Extension experiment: periodic model updates under cluster drift.

The paper argues (Sec. I) that "learnable cost models can easily be
updated regularly and adapted to different clusters", but does not
measure it. This bench does: a RAAL model is trained on one cluster,
the cluster's I/O characteristics then drift (disk and network slow
down, as on a degraded or busier cloud tenancy), and the stale model is
compared against the same model after a short fine-tuning pass on a
handful of records collected post-drift.

Expected shape: drift degrades the stale model's accuracy; a brief
update pass recovers most of it — supporting the paper's claim."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import publish
from repro.cluster import ResourceSampler
from repro.core import Trainer, TrainerConfig, variant
from repro.eval import compute_metrics, render_table
from repro.eval.experiments import ExperimentPipeline, ExperimentScale
from repro.workload import DataCollector

SCALE = ExperimentScale(num_queries=90, epochs=40)
FINE_TUNE_RECORDS = 200
FINE_TUNE_EPOCHS = 10


def _drifted_sampler(base_sampler: ResourceSampler) -> ResourceSampler:
    """The cluster after drift: I/O throughput drops to 40%."""
    drifted_base = type(base_sampler.base)(
        nodes=base_sampler.base.nodes,
        cores_per_node=base_sampler.base.cores_per_node,
        executors=base_sampler.base.executors,
        executor_cores=base_sampler.base.executor_cores,
        executor_memory_gb=base_sampler.base.executor_memory_gb,
        network_throughput_mbps=base_sampler.base.network_throughput_mbps * 0.4,
        disk_throughput_mbps=base_sampler.base.disk_throughput_mbps * 0.4,
    )
    return ResourceSampler(base=drifted_base)


def test_extension_model_update(benchmark):
    def run():
        pipeline = ExperimentPipeline(dataset="imdb", scale=SCALE)
        trained = pipeline.train_variant("RAAL")
        spec = variant("RAAL")
        encoder = pipeline.encoder_for(spec)

        # The cluster drifts: recollect costs for the same test queries.
        pipeline.collector.sampler = _drifted_sampler(ResourceSampler())
        test_sqls = sorted({r.sql for r in pipeline.split.test})
        drifted_test = pipeline.collector.collect(test_sqls)
        train_sqls = sorted({r.sql for r in pipeline.split.train})
        drifted_train = pipeline.collector.collect(
            train_sqls[: FINE_TUNE_RECORDS // 3])

        actual = np.array([r.cost_seconds for r in drifted_test])
        test_samples = DataCollector.to_samples(drifted_test, encoder)

        before = trained.metrics  # pre-drift test accuracy (reference)
        stale = compute_metrics(actual, trained.trainer.predict_seconds(
            [s.encoded for s in test_samples]))

        tune_samples = DataCollector.to_samples(drifted_train, encoder)
        tuner = Trainer(trained.trainer.model, TrainerConfig(
            epochs=FINE_TUNE_EPOCHS, learning_rate=5e-4, seed=0))
        tuner.fit(tune_samples)
        updated = compute_metrics(actual, tuner.predict_seconds(
            [s.encoded for s in test_samples]))
        return before, stale, updated, len(tune_samples)

    before, stale, updated, n_tune = benchmark.pedantic(run, rounds=1, iterations=1)

    publish("extension_model_update", render_table(
        f"Extension — cluster drift and model update ({n_tune} update records)",
        ["setting", "RE", "MSE", "COR", "R2"],
        [["pre-drift (reference)", before.re, before.mse, before.cor, before.r2],
         ["post-drift, stale model", stale.re, stale.mse, stale.cor, stale.r2],
         ["post-drift, updated model", updated.re, updated.mse, updated.cor, updated.r2]]))

    # Shape 1: drift hurts the stale model.
    assert stale.mse > before.mse, "drift did not degrade the stale model"
    # Shape 2: the update recovers a substantial share of the loss.
    assert updated.mse < stale.mse, "fine-tuning did not improve the stale model"
    recovered = (stale.mse - updated.mse) / max(stale.mse - before.mse, 1e-9)
    assert recovered >= 0.3, f"update recovered only {recovered:.0%} of drift loss"
