"""Figure 2: impact of executor memory on per-plan cost.

Reproduces the paper's Sec. III analysis: the paper's four
representative IMDB queries (single-table; two-table SMJ; two-table
BHJ; three-table SMJ+BHJ), each evaluated over its first candidate
physical plans while executor memory sweeps 1-6 GB (E-Core = 2,
Executor = 2, as in the paper).

Expected shape (paper Fig. 2): per-plan cost varies with memory, is
not monotone for every plan, and the *optimal* plan changes with
memory for at least one query (paper Fig. 2(c))."""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import publish
from repro.cluster import PAPER_CLUSTER, SimulatorParams, SparkSimulator
from repro.data import build_imdb_catalog
from repro.engine import execute_plan
from repro.eval import render_series
from repro.plan import analyze, enumerate_plans
from repro.sql import parse

MEMORIES_GB = [1, 2, 3, 4, 5, 6]

# The paper's four Sec. III queries, with literals scaled to the
# synthetic catalog's domains.
PAPER_QUERIES = {
    "q1_single_table": """
        SELECT COUNT(*) FROM movie_keyword mk WHERE mk.keyword_id < 120""",
    "q2_two_table_smj": """
        SELECT COUNT(*) FROM title t, movie_companies mc
        WHERE t.id = mc.movie_id AND mc.company_id < 600
        AND mc.company_type_id > 1""",
    "q3_two_table_bhj": """
        SELECT COUNT(*) FROM title t, movie_info_idx mi_idx
        WHERE t.id = mi_idx.movie_id AND t.kind_id < 7
        AND t.production_year > 1961 AND mi_idx.info_type_id < 20""",
    "q4_three_table": """
        SELECT COUNT(*) FROM title t, movie_companies mc, movie_keyword mk
        WHERE t.id = mc.movie_id AND t.id = mk.movie_id
        AND mc.company_id = 40 AND mk.keyword_id < 80""",
}


@pytest.fixture(scope="module")
def catalog():
    return build_imdb_catalog(scale=0.3, seed=7)


def _sweep(catalog, sql: str) -> tuple[list[str], dict[str, list[float]]]:
    query = analyze(parse(sql), catalog)
    plans = enumerate_plans(query, catalog)[:3]
    for plan in plans:
        execute_plan(plan, catalog)
    sim = SparkSimulator(params=SimulatorParams(noise_sigma=0.0), seed=1)
    series: dict[str, list[float]] = {f"plan{i + 1}": [] for i in range(len(plans))}
    for mem in MEMORIES_GB:
        resources = PAPER_CLUSTER.with_memory(float(mem))
        for i, plan in enumerate(plans):
            series[f"plan{i + 1}"].append(sim.execute_mean(plan, resources))
    return [p.label for p in plans], series


def test_fig2_memory_impact(benchmark, catalog):
    def run():
        out = {}
        for name, sql in PAPER_QUERIES.items():
            out[name] = _sweep(catalog, sql)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    blocks = []
    any_non_monotone = False
    any_flip = False
    for name, (labels, series) in results.items():
        blocks.append(render_series(
            f"Fig. 2 ({name}) — cost (s) vs executor memory (GB); plans: {labels}",
            "memory_gb", MEMORIES_GB, series))
        matrix = np.array(list(series.values()))      # (plans, mems)
        diffs = np.diff(matrix, axis=1)
        if (diffs > 0).any() and (diffs < 0).any():
            any_non_monotone = True
        best = matrix.argmin(axis=0)
        if len(set(best.tolist())) > 1:
            any_flip = True
    publish("fig2_memory_impact", "\n\n".join(blocks))

    # Paper shape: memory matters; some plan responds non-monotonically;
    # the optimal plan flips with memory for at least one query.
    assert any_non_monotone, "no non-monotone memory response found"
    assert any_flip, "optimal plan never flipped with memory"
