"""Run metadata for every ``BENCH_*.json`` artifact.

Performance numbers are only comparable when the run context is
attributable: which commit, which numpy/BLAS build, how many cores, and
which BLAS threading caps were in force. :func:`run_metadata` collects
that context; :func:`write_bench_json` stamps it into each benchmark
artifact under a ``"meta"`` key, so the perf trajectory across PRs can
separate code changes from environment changes.

Timestamps are passed in by the harness (or default to the wall clock
at write time) so replayed/recorded runs can carry their original
capture time.
"""

from __future__ import annotations

import datetime
import json
import os
import pathlib
import subprocess

import numpy as np

__all__ = ["run_metadata", "write_bench_json"]

_REPO_ROOT = pathlib.Path(__file__).parent.parent

# Environment caps that change BLAS behavior between otherwise-identical
# hosts; recorded verbatim when set.
_THREAD_ENV = ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS")


def _git_sha() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=_REPO_ROOT,
            capture_output=True, text=True, timeout=10)
        return out.stdout.strip() or None if out.returncode == 0 else None
    except OSError:
        return None


def _blas_info() -> dict:
    """Name/version of the BLAS numpy linked against (best effort)."""
    try:
        config = np.show_config(mode="dicts")
        blas = config.get("Build Dependencies", {}).get("blas", {})
        return {"name": blas.get("name"), "version": blas.get("version")}
    except Exception:  # pragma: no cover - numpy build without dicts mode
        return {}


def run_metadata(timestamp: str | None = None) -> dict:
    """Attributable context of one benchmark run."""
    if timestamp is None:
        timestamp = datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds")
    return {
        "git_sha": _git_sha(),
        "timestamp": timestamp,
        "numpy_version": np.__version__,
        "blas": _blas_info(),
        "cpu_count": os.cpu_count(),
        "thread_env": {name: os.environ[name]
                       for name in _THREAD_ENV if name in os.environ},
    }


def write_bench_json(path: pathlib.Path, payload: dict,
                     timestamp: str | None = None) -> None:
    """Write a ``BENCH_*.json`` artifact with run metadata attached."""
    payload = dict(payload)
    payload["meta"] = run_metadata(timestamp=timestamp)
    path.write_text(json.dumps(payload, indent=2) + "\n")
