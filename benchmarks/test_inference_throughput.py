"""Inference throughput: the fast path vs the pre-PR prediction path.

Measures plans/sec for three serving scenarios —

* **single**: one (plan, profile) prediction at a time (optimizer in
  the loop);
* **grid**: 8 plans × 24 profiles, the plan-selection / resource-
  recommendation shape (Fig. 1) where the encoding cache pays off;
* **bulk**: a pre-encoded workload, isolating the graph-free fused
  forward + length-bucketed batching from encoding costs —

each on the fast path (encoding cache + graph-free fused LSTM forward +
length bucketing) and on the pre-PR path (cold encode per pair,
autograd forward, arrival-order batches). Results go to
``BENCH_inference.json`` at the repo root so future PRs have a perf
trajectory to regress against, plus the usual rendered table.

Expected shape: grid prediction ≥ 3× plans/sec vs the pre-PR path, and
fast-path predictions within 1e-6 of the autograd path.
"""

from __future__ import annotations

import pathlib
import time

import numpy as np

from benchmarks.conftest import get_fixed_pipeline, publish
from benchmarks.runmeta import write_bench_json
from repro.core import CostPredictor
from repro.core.advisor import default_profile_grid
from repro.encoding import PlanEncoder
from repro.eval import render_table

BENCH_JSON = pathlib.Path(__file__).parent.parent / "BENCH_inference.json"

GRID_PLANS = 8
GRID_PROFILES = 24
SINGLE_CALLS = 40
BULK_RECORDS = 200


def _best_of(fn, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_inference_throughput(benchmark):
    pipeline = get_fixed_pipeline("imdb")
    trained = pipeline.train_variant("RAAL", epochs=4)
    trainer, encoder = trained.trainer, trained.encoder
    predictor = CostPredictor(encoder, trainer)

    # The pre-PR path: no plan-side cache (every pair encodes cold), the
    # autograd Tensor forward, and arrival-order batches.
    legacy_encoder = PlanEncoder(
        semantic=encoder.semantic, structure=encoder.structure,
        use_structure=encoder.use_structure, use_onehot=encoder.use_onehot,
        cache_size=0)

    def legacy_predict(pairs):
        encoded = [legacy_encoder.encode(p, r) for p, r in pairs]
        return trainer.predict_seconds(encoded, fast=False, bucket=False)

    records = pipeline.split.test
    plans = list({id(r.plan): r.plan for r in records}.values())[:GRID_PLANS]
    assert len(plans) == GRID_PLANS, f"need {GRID_PLANS} distinct plans"
    profiles = default_profile_grid()[:GRID_PROFILES]
    grid_pairs = [(plan, prof) for prof in profiles for plan in plans]

    results: dict[str, dict[str, float]] = {}

    # -- grid: 8 plans × 24 profiles -----------------------------------
    def fast_grid():
        encoder.cache_clear()   # cold cache each round: no cross-round credit
        return predictor.predict_grid(plans, profiles)

    # pytest-benchmark statistics cover the fast grid path.
    fast_matrix = benchmark(fast_grid)
    fast_grid_s = benchmark.stats["min"]
    legacy_grid_s, legacy_flat = _best_of(lambda: legacy_predict(grid_pairs))
    grid_diff = float(np.abs(fast_matrix.ravel() - legacy_flat).max())
    results["grid"] = {
        "pairs": len(grid_pairs),
        "fast_plans_per_sec": len(grid_pairs) / fast_grid_s,
        "legacy_plans_per_sec": len(grid_pairs) / legacy_grid_s,
        "speedup": legacy_grid_s / fast_grid_s,
        "max_abs_diff_seconds": grid_diff,
    }

    # -- single: one pair at a time ------------------------------------
    single_pairs = [(plans[i % len(plans)], profiles[i % len(profiles)])
                    for i in range(SINGLE_CALLS)]

    def fast_single():
        return [predictor.predict(p, r) for p, r in single_pairs]

    def legacy_single():
        return [float(legacy_predict([(p, r)])[0]) for p, r in single_pairs]

    encoder.cache_clear()
    fast_single_s, fast_single_out = _best_of(fast_single)
    legacy_single_s, legacy_single_out = _best_of(legacy_single)
    single_diff = float(np.abs(
        np.array(fast_single_out) - np.array(legacy_single_out)).max())
    results["single"] = {
        "pairs": SINGLE_CALLS,
        "fast_plans_per_sec": SINGLE_CALLS / fast_single_s,
        "legacy_plans_per_sec": SINGLE_CALLS / legacy_single_s,
        "speedup": legacy_single_s / fast_single_s,
        "max_abs_diff_seconds": single_diff,
    }

    # -- bulk: pre-encoded workload (forward + bucketing only) ---------
    bulk = [encoder.encode(r.plan, r.resources)
            for r in (records * 10)[:BULK_RECORDS]]
    fast_bulk_s, fast_bulk_out = _best_of(
        lambda: trainer.predict_seconds(bulk, fast=True, bucket=True))
    legacy_bulk_s, legacy_bulk_out = _best_of(
        lambda: trainer.predict_seconds(bulk, fast=False, bucket=False))
    bulk_diff = float(np.abs(fast_bulk_out - legacy_bulk_out).max())
    results["bulk"] = {
        "pairs": len(bulk),
        "fast_plans_per_sec": len(bulk) / fast_bulk_s,
        "legacy_plans_per_sec": len(bulk) / legacy_bulk_s,
        "speedup": legacy_bulk_s / fast_bulk_s,
        "max_abs_diff_seconds": bulk_diff,
    }

    # -- precision tiers on the grid shape -----------------------------
    # f32/int8 with factored grid execution (plan-side network once per
    # plan) vs the fast f64 pairwise grid above. Relative error is
    # bounded by each tier's documented budget (DESIGN.md).
    from repro.core.predictor import PredictorConfig

    results["precision"] = {}
    for tier in ("f32", "int8"):
        tiered = predictor.configured(
            PredictorConfig(precision=tier, threads=0, factor_grids=True))
        tier_s, tier_matrix = _best_of(
            lambda: tiered.predict_grid(plans, profiles))
        rel = float((np.abs(tier_matrix - fast_matrix)
                     / np.maximum(np.abs(fast_matrix), 1e-9)).max())
        results["precision"][tier] = {
            "pairs_per_sec": len(grid_pairs) / tier_s,
            "speedup_vs_fast_f64": fast_grid_s / tier_s,
            "max_rel_diff_vs_f64": rel,
        }

    results["config"] = {
        "grid_plans": GRID_PLANS,
        "grid_profiles": GRID_PROFILES,
        "cache_size": encoder.cache_size,
        "batch_size": trainer.config.batch_size,
    }
    write_bench_json(BENCH_JSON, results)

    rows = [[name,
             results[name]["pairs"],
             f"{results[name]['fast_plans_per_sec']:.0f}",
             f"{results[name]['legacy_plans_per_sec']:.0f}",
             f"{results[name]['speedup']:.1f}x",
             f"{results[name]['max_abs_diff_seconds']:.2e}"]
            for name in ("single", "grid", "bulk")]
    publish("inference_throughput", render_table(
        "Inference throughput — fast path vs pre-PR path (plans/sec)",
        ["scenario", "pairs", "fast", "pre-PR", "speedup", "max |Δ| (s)"],
        rows))

    # Shape: the grid scenario (the paper's Fig. 1 serving pattern) must
    # be at least 3x faster, and the fast path must be numerically
    # interchangeable with the autograd path.
    assert results["grid"]["speedup"] >= 3.0, results["grid"]
    for name in ("single", "grid", "bulk"):
        assert results[name]["max_abs_diff_seconds"] <= 1e-6, results[name]
        assert results[name]["speedup"] >= 1.0, results[name]
    # The float32 multi-threaded factored grid must at least double the
    # float64 single-threaded throughput; drift stays within the
    # documented budgets (f32 rounding / int8 quantization, DESIGN.md).
    assert results["precision"]["f32"]["speedup_vs_fast_f64"] >= 2.0, \
        results["precision"]
    assert results["precision"]["f32"]["max_rel_diff_vs_f64"] <= 1e-4, \
        results["precision"]
    assert results["precision"]["int8"]["max_rel_diff_vs_f64"] <= 0.05, \
        results["precision"]
