"""Table IV + Figure 6: ablation of RAAL's modules.

Trains RAAL and its three ablations (NE-LSTM: no structure embedding;
NA-LSTM: no node-aware attention; RAAC: CNN instead of LSTM) on the
same IMDB records and reports the Table IV metrics plus the Fig. 6
training-loss curves. Metrics are averaged over several training seeds
— the architectural deltas are small (as in the paper, whose Fig. 6
curves nearly overlap except for NA-LSTM's instability), so a single
run would be noise-dominated.

Expected shape (paper Sec. V-B1): RAAL is at or near the best on the
averaged metrics; NA-LSTM's loss curve is the least stable."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import get_pipeline, publish
from repro.eval import render_series, render_table

VARIANT_NAMES = ["RAAL", "NE-LSTM", "NA-LSTM", "RAAC"]
SEEDS = [0, 1]


def test_fig6_table4_ablation(benchmark):
    pipeline = get_pipeline("imdb")

    def run():
        out = {}
        for name in VARIANT_NAMES:
            out[name] = [pipeline.train_variant(name, seed=seed)
                         for seed in SEEDS]
        return out

    trained = benchmark.pedantic(run, rounds=1, iterations=1)

    def mean_metric(name: str, attr: str) -> float:
        return float(np.mean([getattr(t.metrics, attr) for t in trained[name]]))

    # Table IV — seed-averaged metrics per variant.
    rows = []
    for name in VARIANT_NAMES:
        rows.append([name, mean_metric(name, "re"), mean_metric(name, "mse"),
                     mean_metric(name, "cor"), mean_metric(name, "r2")])
    table = render_table(
        f"Table IV — ablation metrics on IMDB (test split, mean of {len(SEEDS)} seeds)",
        ["model", "RE", "MSE", "COR", "R2"], rows)

    # Fig. 6 — loss curves from the first seed, aligned to shortest.
    min_len = min(len(t[0].train_losses) for t in trained.values())
    series = {name: trained[name][0].train_losses[:min_len]
              for name in VARIANT_NAMES}
    fig = render_series("Fig. 6 — training loss vs iteration (epoch, seed 0)",
                        "epoch", list(range(min_len)), series)
    publish("fig6_table4_ablation", table + "\n\n" + fig)

    # Shape 1: RAAL's averaged MSE is within 15% of the best variant —
    # the full model never collapses relative to its ablations.
    mses = {name: mean_metric(name, "mse") for name in VARIANT_NAMES}
    assert mses["RAAL"] <= min(mses.values()) * 1.15, (
        f"RAAL's MSE is not competitive with its ablations: {mses}")

    # Shape 2: RAAL beats the ablation *average* on at least two of the
    # four metrics.
    def ablation_mean(attr: str) -> float:
        return float(np.mean([mean_metric(n, attr) for n in VARIANT_NAMES[1:]]))

    wins = sum([
        mean_metric("RAAL", "re") <= ablation_mean("re"),
        mean_metric("RAAL", "mse") <= ablation_mean("mse"),
        mean_metric("RAAL", "cor") >= ablation_mean("cor"),
        mean_metric("RAAL", "r2") >= ablation_mean("r2"),
    ])
    assert wins >= 2, f"RAAL beat the ablation average on only {wins}/4 metrics"

    # Shape 3: NA-LSTM's loss curve is at least as unstable as RAAL's
    # (paper: "the loss of NA-LSTM fluctuates dramatically").
    def roughness(losses):
        tail = np.array(losses[len(losses) // 3:])
        return float(np.abs(np.diff(tail)).mean()) if len(tail) > 2 else 0.0

    assert roughness(series["NA-LSTM"]) >= roughness(series["RAAL"]) * 0.7, \
        "expected NA-LSTM's loss to be at least as unstable as RAAL's"
