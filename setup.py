"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` uses PEP 660 editable wheels,
which require ``wheel``; this offline environment lacks it, so the
legacy ``setup.py develop`` path (triggered via ``--no-use-pep517``)
is kept working.
"""

from setuptools import setup

setup()
