"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class. Subsystems raise the most specific
subclass that applies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class AutogradError(ReproError):
    """Raised for invalid autograd operations (e.g. backward on non-scalar)."""


class ShapeError(AutogradError):
    """Raised when tensor shapes are incompatible for an operation."""


class SQLError(ReproError):
    """Base class for SQL front-end errors."""


class TokenizeError(SQLError):
    """Raised when the SQL tokenizer encounters an invalid character."""


class ParseError(SQLError):
    """Raised when the SQL parser encounters invalid syntax."""


class AnalysisError(SQLError):
    """Raised when a parsed query references unknown tables or columns."""


class CatalogError(ReproError):
    """Raised for catalog inconsistencies (unknown table, duplicate name)."""


class PlanError(ReproError):
    """Raised when a logical or physical plan is malformed."""


class SimulationError(ReproError):
    """Raised when the cluster simulator is given an invalid configuration."""


class ResourceError(SimulationError):
    """Raised for invalid resource profiles (e.g. zero executors)."""


class EncodingError(ReproError):
    """Raised when a plan or resource vector cannot be encoded."""


class VocabularyError(EncodingError):
    """Raised for vocabulary lookups of unknown tokens in strict mode."""


class TrainingError(ReproError):
    """Raised for invalid training configurations or diverging training."""


class CheckpointError(TrainingError):
    """Raised when a persisted checkpoint is missing, torn, or corrupt.

    Subclasses :class:`TrainingError` because persistence historically
    raised that; existing ``except TrainingError`` handlers keep working.
    """


class PredictionError(ReproError):
    """Raised when guarded prediction exhausts every fallback stage."""


class DeadlineExceeded(PredictionError):
    """Raised when a prediction request runs past its latency deadline.

    The guarded chain maps this to the analytic fallback instead of
    letting the caller block on late model work.
    """


class Overloaded(PredictionError):
    """Raised when admission control sheds a request under saturation.

    Shedding is deliberately fast (no model work has started), so
    callers can retry elsewhere or degrade within milliseconds.
    """


class ServingError(ReproError):
    """Raised for malformed serving requests (HTTP layer maps to 400).

    Anything the *client* got wrong — missing fields, bad types,
    unknown resource keys — as opposed to :class:`PredictionError`
    subclasses, which report server-side prediction failures.
    """


class ModelNotFound(ServingError):
    """Raised for requests naming a model id the registry has never
    seen (HTTP layer maps to 404)."""


class DeployConflict(ServingError):
    """Raised when a deploy/promote/rollback conflicts with the
    shard's swap state — e.g. a second candidate while one is already
    shadowing, or a promote with nothing staged (HTTP maps to 409)."""


class DatasetError(ReproError):
    """Raised for invalid dataset manipulations (e.g. empty split)."""


class TelemetryError(ReproError):
    """Raised for invalid telemetry operations (bad metric names, type
    conflicts in the registry, malformed report artifacts)."""
