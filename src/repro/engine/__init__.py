"""Columnar execution engine: runs physical plans on catalog data.

Produces query results and per-operator observed cardinalities, which
the cluster simulator converts into resource-dependent runtimes.
"""

from repro.engine.executor import execute_plan
from repro.engine.relation import Relation, group_codes, join_indices

__all__ = ["execute_plan", "Relation", "join_indices", "group_codes"]
