"""Columnar relations and vectorized join/group primitives.

The execution engine operates on :class:`Relation` objects — ordered
dicts of alias-qualified column arrays — using numpy throughout. NULL
is ``nan`` in numeric columns and ``None`` in string (object) columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import PlanError, SimulationError

__all__ = ["Relation", "join_indices", "group_codes", "MAX_JOIN_PAIRS"]

MAX_JOIN_PAIRS = 8_000_000  # guard against runaway fan-out/cross joins


@dataclass
class Relation:
    """A batch of rows as named column arrays (all the same length)."""

    columns: dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        lengths = {len(v) for v in self.columns.values()}
        if len(lengths) > 1:
            raise PlanError(f"inconsistent column lengths: {sorted(lengths)}")

    @property
    def num_rows(self) -> int:
        """Number of rows (0 for a column-less relation)."""
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    @property
    def num_columns(self) -> int:
        """Number of columns."""
        return len(self.columns)

    def column(self, name: str) -> np.ndarray:
        """Fetch one column by its qualified name (``alias.column``)."""
        if name not in self.columns:
            raise PlanError(f"relation has no column {name!r}; has {sorted(self.columns)}")
        return self.columns[name]

    def take(self, indices: np.ndarray) -> "Relation":
        """Row subset/reorder by integer indices."""
        return Relation({name: arr[indices] for name, arr in self.columns.items()})

    def filter(self, mask: np.ndarray) -> "Relation":
        """Row subset by boolean mask."""
        return Relation({name: arr[mask] for name, arr in self.columns.items()})

    def select(self, names: list[str]) -> "Relation":
        """Column subset (keeps the given order)."""
        return Relation({name: self.column(name) for name in names})

    def merge(self, other: "Relation") -> "Relation":
        """Side-by-side concatenation of equal-length relations."""
        if self.columns and other.columns and self.num_rows != other.num_rows:
            raise PlanError(
                f"cannot merge relations of {self.num_rows} and {other.num_rows} rows"
            )
        merged = dict(self.columns)
        for name, arr in other.columns.items():
            if name in merged:
                raise PlanError(f"duplicate column {name!r} in merge")
            merged[name] = arr
        return Relation(merged)

    def estimated_bytes(self) -> float:
        """Approximate in-memory size (8 B numerics, 24 B strings)."""
        total = 0.0
        for arr in self.columns.values():
            per_value = 24.0 if arr.dtype == object else 8.0
            total += per_value * len(arr)
        return total


def _valid_key_mask(keys: np.ndarray) -> np.ndarray:
    if keys.dtype == object:
        return np.array([v is not None for v in keys], dtype=bool)
    return ~np.isnan(keys)


def join_indices(left_keys: np.ndarray, right_keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """All (left_idx, right_idx) pairs with equal, non-NULL keys.

    Sort-merge style: O(n log n) with fully vectorized pair expansion.
    """
    lmask = _valid_key_mask(left_keys)
    rmask = _valid_key_mask(right_keys)
    l_idx = np.flatnonzero(lmask)
    r_idx = np.flatnonzero(rmask)
    if len(l_idx) == 0 or len(r_idx) == 0:
        return np.array([], dtype=np.int64), np.array([], dtype=np.int64)
    lk = left_keys[l_idx]
    rk = right_keys[r_idx]
    if lk.dtype == object or rk.dtype == object:
        lk = lk.astype(str)
        rk = rk.astype(str)
    order = np.argsort(rk, kind="stable")
    rk_sorted = rk[order]
    lo = np.searchsorted(rk_sorted, lk, side="left")
    hi = np.searchsorted(rk_sorted, lk, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total > MAX_JOIN_PAIRS:
        raise SimulationError(
            f"join would produce {total} pairs (limit {MAX_JOIN_PAIRS}); "
            "reduce the data scale or add selective predicates"
        )
    if total == 0:
        return np.array([], dtype=np.int64), np.array([], dtype=np.int64)
    left_out = np.repeat(np.arange(len(lk)), counts)
    starts = np.repeat(lo, counts)
    offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    right_sorted_pos = starts + offsets
    right_out = order[right_sorted_pos]
    return l_idx[left_out], r_idx[right_out]


def group_codes(key_columns: list[np.ndarray]) -> tuple[np.ndarray, int]:
    """Dense group ids for a composite key.

    Returns ``(codes, num_groups)`` where ``codes[i]`` identifies the
    group of row ``i``. NULLs form their own group per column (SQL GROUP
    BY treats NULLs as equal).
    """
    if not key_columns:
        raise PlanError("group_codes() requires at least one key column")
    combined = np.zeros(len(key_columns[0]), dtype=np.int64)
    for col in key_columns:
        if col.dtype == object:
            proxy = np.array(["\0NULL" if v is None else str(v) for v in col])
        else:
            proxy = np.where(np.isnan(col), np.inf, col)
        _, inverse = np.unique(proxy, return_inverse=True)
        span = int(inverse.max()) + 1 if len(inverse) else 1
        combined = combined * span + inverse
        # Re-densify so the code space stays small across many keys.
        _, combined = np.unique(combined, return_inverse=True)
    num_groups = int(combined.max()) + 1 if len(combined) else 0
    return combined, num_groups
