"""Physical plan execution over catalog data.

Executes a :class:`~repro.plan.physical.PhysicalPlan` bottom-up on the
numpy column arrays in a :class:`~repro.data.catalog.Catalog`, producing
the query result *and* annotating every operator with its true observed
cardinality (``obs_rows`` / ``obs_bytes``).

This is the ground-truth side of the reproduction: the paper measures
real Spark executions; we execute plans for real (so per-operator data
volumes are exact) and feed those volumes to the cluster simulator,
which converts them into resource-dependent runtimes.
"""

from __future__ import annotations

import numpy as np

from repro.data.catalog import Catalog
from repro.engine.relation import Relation, group_codes, join_indices
from repro.errors import PlanError
from repro.plan.physical import (
    BroadcastExchange,
    BroadcastHashJoin,
    BroadcastNestedLoopJoin,
    ExchangeHashPartition,
    ExchangeSinglePartition,
    FileScan,
    FilterExec,
    HashAggregate,
    LimitExec,
    PhysicalNode,
    PhysicalPlan,
    ProjectExec,
    SortAggregate,
    SortExec,
    SortMergeJoin,
)
from repro.sql.ast import AggregateExpr, AggregateFunc, ColumnRef, OrderItem
from repro.sql.expressions import evaluate_predicate, null_mask

__all__ = ["execute_plan"]


def _qualified(ref: ColumnRef) -> str:
    return f"{ref.table}.{ref.column}"


def _apply_filters(relation: Relation, predicates) -> Relation:
    mask = np.ones(relation.num_rows, dtype=bool)
    for pred in predicates:
        values = relation.column(_qualified(pred.column))
        mask &= evaluate_predicate(pred, values)
    return relation.filter(mask)


def _execute_join(left: Relation, right: Relation, condition) -> Relation:
    # Determine which side owns which key column.
    lq, rq = _qualified(condition.left), _qualified(condition.right)
    if lq in left.columns and rq in right.columns:
        lkeys, rkeys = left.column(lq), right.column(rq)
    elif rq in left.columns and lq in right.columns:
        lkeys, rkeys = left.column(rq), right.column(lq)
    else:
        raise PlanError(f"join condition {condition} does not match child outputs")
    li, ri = join_indices(lkeys, rkeys)
    return left.take(li).merge(right.take(ri))


def _cross_join(left: Relation, right: Relation) -> Relation:
    nl, nr = left.num_rows, right.num_rows
    li = np.repeat(np.arange(nl), nr)
    ri = np.tile(np.arange(nr), nl)
    return left.take(li).merge(right.take(ri))


def _aggregate(relation: Relation, group_by: list[ColumnRef],
               aggregates: list[AggregateExpr]) -> Relation:
    out: dict[str, np.ndarray] = {}
    if group_by:
        keys = [relation.column(_qualified(c)) for c in group_by]
        codes, num_groups = group_codes(keys)
        representatives = np.zeros(num_groups, dtype=np.int64)
        representatives[codes] = np.arange(len(codes))
        for col in group_by:
            out[_qualified(col)] = relation.column(_qualified(col))[representatives]
    else:
        codes = np.zeros(relation.num_rows, dtype=np.int64)
        num_groups = 1
    for agg in aggregates:
        name = str(agg)
        if agg.func == AggregateFunc.COUNT and agg.argument is None:
            out[name] = np.bincount(codes, minlength=num_groups).astype(np.float64)
            continue
        values = relation.column(_qualified(agg.argument))
        present = ~null_mask(values)
        if agg.func == AggregateFunc.COUNT:
            out[name] = np.bincount(codes[present], minlength=num_groups).astype(np.float64)
            continue
        numeric = np.asarray(values[present], dtype=np.float64) \
            if values.dtype != object else None
        if numeric is None:
            # MIN/MAX over strings: fall back to per-group python reduce.
            result = np.array([None] * num_groups, dtype=object)
            for code, value in zip(codes[present], values[present]):
                current = result[code]
                if current is None:
                    result[code] = value
                elif agg.func == AggregateFunc.MIN:
                    result[code] = min(current, value)
                else:
                    result[code] = max(current, value)
            out[name] = result
            continue
        gcodes = codes[present]
        if agg.func == AggregateFunc.SUM:
            sums = np.zeros(num_groups)
            np.add.at(sums, gcodes, numeric)
            out[name] = sums
        elif agg.func == AggregateFunc.AVG:
            sums = np.zeros(num_groups)
            np.add.at(sums, gcodes, numeric)
            cnts = np.bincount(gcodes, minlength=num_groups).astype(np.float64)
            with np.errstate(invalid="ignore", divide="ignore"):
                out[name] = np.where(cnts > 0, sums / np.maximum(cnts, 1), np.nan)
        elif agg.func == AggregateFunc.MIN:
            mins = np.full(num_groups, np.inf)
            np.minimum.at(mins, gcodes, numeric)
            out[name] = np.where(np.isfinite(mins), mins, np.nan)
        elif agg.func == AggregateFunc.MAX:
            maxs = np.full(num_groups, -np.inf)
            np.maximum.at(maxs, gcodes, numeric)
            out[name] = np.where(np.isfinite(maxs), maxs, np.nan)
        else:
            raise PlanError(f"unsupported aggregate {agg.func}")
    if num_groups == 0 and not group_by:
        # COUNT over an empty input is still one row of zeros.
        out = {k: np.array([0.0]) for k in out}
    return Relation(out)


def _sort(relation: Relation, keys) -> Relation:
    if relation.num_rows == 0 or not keys:
        return relation
    # numpy lexsort: last key is primary, so reverse.
    arrays = []
    for key in reversed(keys):
        column = key.column if isinstance(key, OrderItem) else key
        values = relation.column(_qualified(column))
        if values.dtype == object:
            values = np.array(["" if v is None else str(v) for v in values])
        if isinstance(key, OrderItem) and key.descending and values.dtype != object:
            arrays.append(-np.nan_to_num(np.asarray(values, dtype=np.float64)))
        else:
            arrays.append(values)
    order = np.lexsort(arrays)
    return relation.take(order)


def execute_plan(plan: PhysicalPlan, catalog: Catalog) -> Relation:
    """Execute ``plan`` against ``catalog``; annotates observed sizes.

    Every node's ``obs_rows``/``obs_bytes`` are set as a side effect.
    Aggregation columns in the result are named after the aggregate
    expression (e.g. ``count(*)``).
    """

    def run(node: PhysicalNode) -> Relation:
        if isinstance(node, FileScan):
            table = catalog.table(node.table)
            relation = Relation({
                f"{node.alias}.{col}": table.column(col) for col in node.columns
            })
            if node.pushed_filters:
                relation = _apply_filters(relation, node.pushed_filters)
        elif isinstance(node, FilterExec):
            relation = _apply_filters(run(node.child), node.predicates)
        elif isinstance(node, ProjectExec):
            relation = run(node.child).select([_qualified(c) for c in node.columns])
        elif isinstance(node, SortExec):
            relation = _sort(run(node.child), node.keys)
        elif isinstance(node, (ExchangeHashPartition, ExchangeSinglePartition,
                               BroadcastExchange)):
            relation = run(node.child)
            if isinstance(node.child, (HashAggregate, SortAggregate)) \
                    and node.child.mode == "partial":
                # The shuffle transfers the partial aggregate's output
                # (one row per group), not the rows it passed through
                # for downstream correctness.
                node.obs_rows = node.child.obs_rows
                node.obs_bytes = node.child.obs_bytes
                return relation
        elif isinstance(node, (SortMergeJoin, BroadcastHashJoin)):
            left = run(node.left)
            right = run(node.right)
            if node.condition is None:
                relation = _cross_join(left, right)
            else:
                relation = _execute_join(left, right, node.condition)
        elif isinstance(node, BroadcastNestedLoopJoin):
            left = run(node.left)
            right = run(node.right)
            relation = _cross_join(left, right)
        elif isinstance(node, (HashAggregate, SortAggregate)):
            child = run(node.child)
            if node.mode == "partial":
                # Partial aggregation is a per-partition operation whose
                # output depends on the runtime partition count; record
                # the group count and pass rows through for correctness.
                if node.group_by:
                    keys = [child.column(_qualified(c)) for c in node.group_by]
                    _, groups = group_codes(keys)
                else:
                    groups = 1 if child.num_rows else 0
                node.obs_rows = float(groups)
                node.obs_bytes = groups * 8.0 * max(
                    len(node.group_by) + len(node.aggregates), 1)
                return child
            relation = _aggregate(child, node.group_by, node.aggregates)
        elif isinstance(node, LimitExec):
            child = run(node.child)
            relation = child.take(np.arange(min(node.count, child.num_rows)))
        else:
            raise PlanError(f"cannot execute node type {type(node).__name__}")
        node.obs_rows = float(relation.num_rows)
        node.obs_bytes = float(relation.estimated_bytes())
        return relation

    return run(plan.root)
