"""Reproduction of "A Resource-Aware Deep Cost Model for Big Data Query
Processing" (Li et al., ICDE 2022).

The package contains the paper's contribution - the RAAL resource-aware
attentional LSTM cost model (:mod:`repro.core`) - together with every
substrate it needs: a numpy deep-learning framework (:mod:`repro.nn`),
a word2vec implementation (:mod:`repro.text`), a Spark SQL-style query
planner (:mod:`repro.sql`, :mod:`repro.plan`), a cluster execution
simulator (:mod:`repro.cluster`), feature encoders
(:mod:`repro.encoding`), the TLSTM/GPSJ baselines
(:mod:`repro.baselines`), workload/data-collection tooling
(:mod:`repro.workload`), and evaluation metrics (:mod:`repro.eval`).
"""

from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = ["ReproError", "__version__"]
