"""Fused training-step kernels: analytic backward for the RAAL family.

The inference fast path (:mod:`repro.nn.inference`) removed the
autograd graph from the *forward* pass; training still paid for it
twice per batch — once to allocate a Python :class:`Tensor` per
intermediate, once to run the recorded closures backwards. The
functions here close that gap: each inference kernel gains a
cached-activation twin whose gradients are computed in closed form over
the same contiguous numpy buffers, matching the autograd gradients to
≤ 1e-8 for every parameter.

Entry point: :func:`raal_forward_backward`, also exposed as
``RAAL.forward_backward``. One call runs the fused forward (caching the
activations the gradients need), computes the MSE loss against
``batch.targets``, and accumulates closed-form gradients into every
parameter's ``.grad`` — exactly what ``model(batch)`` followed by
``mse_loss(...).backward()`` produces, without building a graph.

Gate order, masking semantics, and operation shapes follow
:mod:`repro.nn.rnn` / :mod:`repro.nn.attention`. Dropout draws its
masks from the same module-owned generators as the autograd layers, so
the fast and legacy training paths consume identical random streams and
``Trainer.fit`` produces the same loss trajectory either way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError, TrainingError
from repro.nn.inference import _sigmoid, _softmax
from repro.nn.layers import Dropout, Linear, ReLU, Sequential
from repro.nn.tensor import Tensor

__all__ = [
    "fused_lstm_forward_cached",
    "fused_lstm_backward",
    "node_attention_forward_cached",
    "node_attention_backward",
    "resource_attention_forward_cached",
    "resource_attention_backward",
    "masked_mean_backward",
    "dense_forward_cached",
    "dense_backward",
    "raal_forward_backward",
]

_NEG_INF = -1e9


def _accumulate(param: Tensor, grad: np.ndarray) -> None:
    """Add ``grad`` into ``param.grad`` (autograd accumulation semantics).

    Every gradient this module produces is a freshly allocated array, so
    the first accumulation can take ownership of it directly instead of
    zero-filling a buffer and adding.
    """
    if param.grad is None:
        param.grad = grad if grad.flags.owndata else grad.copy()
    else:
        param.grad += grad


# ---------------------------------------------------------------------------
# LSTM
# ---------------------------------------------------------------------------

@dataclass
class LSTMCache:
    """Per-timestep activations needed by :func:`fused_lstm_backward`.

    Slabs are stored time-major ``(T, B, ·)`` so each step of the
    forward/backward loops reads and writes one fully contiguous
    ``(B, ·)`` block instead of a strided slice plus a copy.
    """

    x_t: np.ndarray             # (T, B, D) inputs, time-major
    acts: np.ndarray            # (T, B, 4H) gate activations, i|f|g|o
    tanh_c: np.ndarray          # (T, B, H) tanh(c_new) per step
    outputs: np.ndarray         # (T, B, H) post-mask hidden states
    c_states: np.ndarray        # (T, B, H) post-mask cell states
    w_x: np.ndarray
    w_h: np.ndarray
    mf: np.ndarray | None       # (T, B, 1) float mask; None = all real
    col_real: np.ndarray | None  # (T,) True where every row is real


def fused_lstm_forward_cached(
    x: np.ndarray,
    w_x: np.ndarray,
    w_h: np.ndarray,
    bias: np.ndarray,
    mask: np.ndarray | None = None,
) -> tuple[np.ndarray, LSTMCache]:
    """:func:`repro.nn.inference.fused_lstm_forward` with activation caching.

    Same fused input-projection GEMM and mask-freeze semantics; also
    records the gate activations, ``tanh(c)``, and the (h, c) state
    entering each step, which is everything the analytic backward needs.
    """
    if x.ndim != 3:
        raise ShapeError(f"fused_lstm_forward_cached expects (batch, seq, input), got {x.shape}")
    batch, seq, input_size = x.shape
    hs = w_h.shape[0]
    # Time-major layout throughout: the fused input projection lands
    # directly in the (T, B, 4H) activation slab, and every step then
    # operates in place on one contiguous (B, 4H) block — no per-step
    # slab copies at all.
    x_t = np.ascontiguousarray(x.transpose(1, 0, 2))
    acts = (x_t.reshape(seq * batch, input_size) @ w_x).reshape(seq, batch, 4 * hs)
    acts += bias
    # Scratch follows the execution dtype (float64 for training, float32
    # for the reduced-precision inference tiers).
    dtype = acts.dtype
    h = np.zeros((batch, hs), dtype=dtype)
    c = np.zeros((batch, hs), dtype=dtype)
    outputs = np.empty((seq, batch, hs), dtype=dtype)
    tanh_c = np.empty((seq, batch, hs), dtype=dtype)
    c_states = np.empty((seq, batch, hs), dtype=dtype)
    mf = col_real = None
    if mask is not None:
        mf = np.ascontiguousarray(mask.T.astype(dtype))[:, :, None]
        col_real = mask.all(axis=0)
    gemm = np.empty((batch, 4 * hs), dtype=dtype)
    g = np.empty((batch, hs), dtype=dtype)
    for t in range(seq):
        gates = acts[t]
        np.matmul(h, w_h, out=gemm)
        gates += gemm
        # Tanh block first, then one in-place sigmoid sweep over the
        # whole gate block (overwriting the tanh slice after) — one
        # pass, no extra temporaries. σ(x) = (1 + tanh(x/2))/2 matches
        # 1/(1+exp(-clip(x, ±60))) to one ulp and needs no clip pass
        # (tanh saturates on its own).
        np.tanh(gates[:, 2 * hs : 3 * hs], out=g)
        gates *= 0.5
        np.tanh(gates, out=gates)
        gates += 1.0
        gates *= 0.5
        gates[:, 2 * hs : 3 * hs] = g
        i = gates[:, 0 * hs : 1 * hs]
        f = gates[:, 1 * hs : 2 * hs]
        o = gates[:, 3 * hs : 4 * hs]
        c_new = np.multiply(f, c, out=c_states[t])
        c_new += i * g
        tc = np.tanh(c_new, out=tanh_c[t])
        h_new = np.multiply(o, tc, out=outputs[t])
        if col_real is None or col_real[t]:
            # Every row is real at this step (buckets are length-sorted,
            # so that is the common case): no freeze blend needed.
            h, c = h_new, c_new
        else:
            # m is binary, so blending in place via h + (h_new - h)*m
            # selects exactly like h_new*m + h_prev*(1-m).
            m = mf[t]
            h_new -= h
            h_new *= m
            h_new += h
            c_new -= c
            c_new *= m
            c_new += c
            h, c = h_new, c_new
    cache = LSTMCache(x_t=x_t, acts=acts, tanh_c=tanh_c, outputs=outputs,
                      c_states=c_states, w_x=w_x, w_h=w_h, mf=mf,
                      col_real=col_real)
    return np.ascontiguousarray(outputs.transpose(1, 0, 2)), cache


def fused_lstm_backward(
    d_out: np.ndarray, cache: LSTMCache,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Closed-form BPTT through the fused LSTM.

    ``d_out`` is the loss gradient w.r.t. every hidden output
    ``(B, T, H)``. Returns ``(d_x, d_w_x, d_w_h, d_bias)``. Timesteps
    frozen by the mask contribute no gate gradients (the forward's
    ``h*m + h_prev*(1-m)`` blend routes their gradient straight to the
    carried state), matching the autograd path exactly.
    """
    x_t = cache.x_t
    seq, batch, input_size = x_t.shape
    hs = cache.w_h.shape[0]
    acts = cache.acts
    i = acts[:, :, 0 * hs : 1 * hs]
    f = acts[:, :, 1 * hs : 2 * hs]
    g = acts[:, :, 2 * hs : 3 * hs]
    o = acts[:, :, 3 * hs : 4 * hs]
    # Everything that does not depend on the recurrent (dh, dc) chain
    # is folded into per-gate coefficient blocks of one (T, B, 4H) slab
    # up front, vectorized over all timesteps; the reverse loop is then
    # one multiply per gate block plus the two recurrence GEMV/adds.
    #   d_pre_i = d_c_new * g      * i(1-i)   → coef_i = g * i(1-i)
    #   d_pre_f = d_c_new * c_prev * f(1-f)   → coef_f = c_prev * f(1-f)
    #   d_pre_g = d_c_new * i      * (1-g²)   → coef_g = i * (1-g²)
    #   d_pre_o = d_h_new * tanh_c * o(1-o)   → coef_o = tanh_c * o(1-o)
    #   d_c_new += d_h_new * o * (1-tanh_c²)  → coef_c = o * (1-tanh_c²)
    # The sigmoid-derivative factor a(1-a) is shared by the i, f, o
    # blocks, so it is computed in two contiguous full-slab passes and
    # only the tanh block is patched afterwards.
    coef = 1.0 - acts
    coef *= acts
    coef_i = coef[:, :, 0 * hs : 1 * hs]
    coef_f = coef[:, :, 1 * hs : 2 * hs]
    coef_g = coef[:, :, 2 * hs : 3 * hs]
    coef_o = coef[:, :, 3 * hs : 4 * hs]
    coef_i *= g
    # c entering step 0 is zero, so that slice of coef_f vanishes.
    coef_f[0] = 0.0
    coef_f[1:] *= cache.c_states[:-1]
    np.multiply(g, g, out=coef_g)
    np.subtract(1.0, coef_g, out=coef_g)
    coef_g *= i
    coef_o *= cache.tanh_c
    coef_c = np.multiply(cache.tanh_c, cache.tanh_c)
    np.subtract(1.0, coef_c, out=coef_c)
    coef_c *= o
    d_xproj = np.empty((seq, batch, 4 * hs))
    d_out_t = np.ascontiguousarray(d_out.transpose(1, 0, 2))
    dh = np.zeros((batch, hs))
    dc = np.zeros((batch, hs))
    mf, col_real = cache.mf, cache.col_real
    w_hT = np.ascontiguousarray(cache.w_h.T)
    # Rotating scratch buffers: the loop body allocates nothing.
    b_ht, b_hn, b_hc, b_cn, b_cc, b_tmp = (
        np.empty((batch, hs)) for _ in range(6))
    b_dh = np.empty((batch, hs))
    b_dc = np.empty((batch, hs))
    for t in range(seq - 1, -1, -1):
        dh_total = np.add(d_out_t[t], dh, out=b_ht)
        dg = d_xproj[t]
        if mf is None or col_real[t]:
            # All rows real at this step: no freeze split needed.
            d_h_new = dh_total
            d_c_new = np.multiply(dh_total, coef_c[t], out=b_cn)
            d_c_new += dc
            frozen = False
        else:
            # The mask is binary, so the frozen-step split
            # d*(1-m) equals d - d*m exactly — one subtract instead
            # of a second multiply.
            m = mf[t]
            d_h_new = np.multiply(dh_total, m, out=b_hn)
            dh_carry = np.subtract(dh_total, d_h_new, out=b_hc)
            d_c_new = np.multiply(dc, m, out=b_cn)
            dc_carry = np.subtract(dc, d_c_new, out=b_cc)
            np.multiply(d_h_new, coef_c[t], out=b_tmp)
            d_c_new += b_tmp
            frozen = True
        np.multiply(d_c_new, coef_i[t], out=dg[:, 0 * hs : 1 * hs])
        np.multiply(d_c_new, coef_f[t], out=dg[:, 1 * hs : 2 * hs])
        np.multiply(d_c_new, coef_g[t], out=dg[:, 2 * hs : 3 * hs])
        np.multiply(d_h_new, coef_o[t], out=dg[:, 3 * hs : 4 * hs])
        dc = np.multiply(d_c_new, f[t], out=b_dc)
        dh = np.matmul(dg, w_hT, out=b_dh)
        if frozen:
            dc += dc_carry
            dh += dh_carry
    d_bias = d_xproj.sum(axis=(0, 1))
    flat = d_xproj.reshape(seq * batch, 4 * hs)
    # Recurrent-weight gradient as one batched GEMM over all timesteps
    # (h entering step t is the post-mask output of step t-1, and step 0
    # sees h = 0, so its rows drop out of the product) instead of T
    # rank-B updates inside the loop.
    d_wh = cache.outputs[:-1].reshape((seq - 1) * batch, hs).T \
        @ flat[batch:] if seq > 1 else np.zeros((hs, 4 * hs))
    d_wx = x_t.reshape(seq * batch, input_size).T @ flat
    d_x = (flat @ cache.w_x.T).reshape(seq, batch, input_size)
    return d_x.transpose(1, 0, 2), d_wx, d_wh, d_bias


# ---------------------------------------------------------------------------
# Attention
# ---------------------------------------------------------------------------

@dataclass
class NodeAttentionCache:
    """Activations for :func:`node_attention_backward`."""

    hidden: np.ndarray          # (B, N, H)
    queries: np.ndarray         # (B, N, K)
    keys: np.ndarray            # (B, N, K)
    attn0: np.ndarray           # raw softmax (B, N, N)
    attn: np.ndarray            # attn0 * has_children
    has_children: np.ndarray    # (B, N, 1) float
    node_w: np.ndarray          # (B, N) float node weights
    denom: np.ndarray           # (B, 1) pooling denominator
    w_query: np.ndarray
    w_key: np.ndarray
    scale: float


def node_attention_forward_cached(
    hidden: np.ndarray,
    w_query: np.ndarray,
    w_key: np.ndarray,
    child_mask: np.ndarray,
    node_mask: np.ndarray,
    latent_dim: int,
) -> tuple[np.ndarray, NodeAttentionCache]:
    """:func:`~repro.nn.inference.node_attention_forward` with caching."""
    batch, n, _ = hidden.shape
    if child_mask.shape != (batch, n, n):
        raise ShapeError(f"child_mask shape {child_mask.shape} != {(batch, n, n)}")
    hidden_flat = hidden.reshape(batch * n, -1)
    queries = (hidden_flat @ w_query).reshape(batch, n, -1)
    keys = (hidden_flat @ w_key).reshape(batch, n, -1)
    scale = 1.0 / np.sqrt(latent_dim)
    scores = queries @ keys.transpose(0, 2, 1)
    scores *= scale
    scores += np.where(child_mask, 0.0, _NEG_INF)
    attn0 = _softmax(scores, axis=-1)
    has_children = child_mask.any(axis=-1, keepdims=True).astype(np.float64)
    attn = attn0 * has_children
    context = attn @ hidden + hidden * (1.0 - has_children)
    node_w = node_mask.astype(np.float64)
    denom = np.maximum(node_w.sum(axis=1, keepdims=True), 1.0)
    pooled = (context * node_w[:, :, None]).sum(axis=1) * (1.0 / denom)
    cache = NodeAttentionCache(
        hidden=hidden, queries=queries, keys=keys, attn0=attn0, attn=attn,
        has_children=has_children, node_w=node_w, denom=denom,
        w_query=w_query, w_key=w_key, scale=scale)
    return pooled, cache


def node_attention_backward(
    d_pooled: np.ndarray, cache: NodeAttentionCache,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gradients of node-aware attention: ``(d_hidden, d_w_query, d_w_key)``.

    Childless rows (leaves and padded nodes) carried a zeroed attention
    row in the forward, so their softmax receives no gradient and the
    self-term routes their gradient directly to ``hidden``.
    """
    # pooled = sum_n context * w / denom
    d_context = d_pooled[:, None, :] * (cache.node_w / cache.denom)[:, :, None]
    # context = attn @ hidden + hidden * (1 - has_children)
    d_attn = d_context @ cache.hidden.transpose(0, 2, 1)
    d_hidden = cache.attn.transpose(0, 2, 1) @ d_context
    d_hidden += d_context * (1.0 - cache.has_children)
    # attn = softmax(scores + bias) * has_children
    d_attn0 = d_attn * cache.has_children
    dot = (d_attn0 * cache.attn0).sum(axis=-1, keepdims=True)
    d_scores = cache.attn0 * (d_attn0 - dot) * cache.scale
    # scores = queries @ keys^T
    d_queries = d_scores @ cache.keys
    d_keys = np.ascontiguousarray(d_scores.transpose(0, 2, 1)) @ cache.queries
    k = d_queries.shape[-1]
    dq_flat = d_queries.reshape(-1, k)
    dk_flat = d_keys.reshape(-1, k)
    hidden_flat = cache.hidden.reshape(-1, cache.hidden.shape[-1])
    d_wq = hidden_flat.T @ dq_flat
    d_wk = hidden_flat.T @ dk_flat
    # One flat GEMM per projection instead of a B-deep batched matmul.
    dh_proj = dq_flat @ cache.w_query.T
    dh_proj += dk_flat @ cache.w_key.T
    d_hidden += dh_proj.reshape(d_hidden.shape)
    return d_hidden, d_wq, d_wk


@dataclass
class ResourceAttentionCache:
    """Activations for :func:`resource_attention_backward`."""

    hidden: np.ndarray          # (B, N, H)
    resources: np.ndarray       # (B, R)
    query: np.ndarray           # (B, K)
    keys: np.ndarray            # (B, N, K)
    attn: np.ndarray            # (B, N)
    w_resource: np.ndarray
    w_key: np.ndarray
    scale: float


def resource_attention_forward_cached(
    hidden: np.ndarray,
    resources: np.ndarray,
    w_resource: np.ndarray,
    w_key: np.ndarray,
    node_mask: np.ndarray,
    latent_dim: int,
) -> tuple[np.ndarray, ResourceAttentionCache]:
    """:func:`~repro.nn.inference.resource_attention_forward` with caching."""
    if resources.shape[-1] != w_resource.shape[0]:
        raise ShapeError(
            f"expected resource dim {w_resource.shape[0]}, got {resources.shape[-1]}")
    query = resources @ w_resource
    b, n, h = hidden.shape
    keys = (hidden.reshape(b * n, h) @ w_key).reshape(b, n, -1)
    scale = 1.0 / np.sqrt(latent_dim)
    scores = (keys @ query[:, :, None]).squeeze(2)
    scores *= scale
    scores += np.where(node_mask, 0.0, _NEG_INF)
    attn = _softmax(scores, axis=-1)
    out = (hidden * attn[:, :, None]).sum(axis=1)
    cache = ResourceAttentionCache(
        hidden=hidden, resources=resources, query=query, keys=keys, attn=attn,
        w_resource=w_resource, w_key=w_key, scale=scale)
    return out, cache


def resource_attention_backward(
    d_out: np.ndarray, cache: ResourceAttentionCache,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gradients of resource attention: ``(d_hidden, d_w_resource, d_w_key)``."""
    # out = sum_n hidden * attn
    d_attn = (cache.hidden * d_out[:, None, :]).sum(axis=-1)
    d_hidden = cache.attn[:, :, None] * d_out[:, None, :]
    # attn = softmax(scores + node bias)
    dot = (d_attn * cache.attn).sum(axis=-1, keepdims=True)
    d_scores = cache.attn * (d_attn - dot) * cache.scale
    # scores = keys @ query
    d_keys = d_scores[:, :, None] * cache.query[:, None, :]
    d_query = (d_scores[:, :, None] * cache.keys).sum(axis=1)
    d_wr = cache.resources.T @ d_query
    dk_flat = d_keys.reshape(-1, d_keys.shape[-1])
    d_wk = cache.hidden.reshape(-1, cache.hidden.shape[-1]).T @ dk_flat
    # One flat GEMM instead of a B-deep batched matmul.
    d_hidden += (dk_flat @ cache.w_key.T).reshape(d_hidden.shape)
    return d_hidden, d_wr, d_wk


def masked_mean_backward(d_pooled: np.ndarray, node_mask: np.ndarray) -> np.ndarray:
    """Gradient of :func:`~repro.nn.inference.masked_mean_forward`."""
    weights = node_mask.astype(np.float64)
    denom = np.maximum(weights.sum(axis=1, keepdims=True), 1.0)
    return d_pooled[:, None, :] * (weights / denom)[:, :, None]


# ---------------------------------------------------------------------------
# Dense head
# ---------------------------------------------------------------------------

def dense_forward_cached(
    dense: Sequential, x: np.ndarray, training: bool,
) -> tuple[np.ndarray, list[tuple[str, Linear | None, np.ndarray | None]]]:
    """Forward through a Linear/ReLU/Dropout stack, caching per-layer state.

    In training mode Dropout draws its mask from the layer's own
    generator with the same call the autograd layer makes, so the fast
    and legacy paths consume identical random streams.
    """
    caches: list[tuple[str, Linear | None, np.ndarray | None]] = []
    for layer in dense:
        if isinstance(layer, Linear):
            caches.append(("linear", layer, x))
            x = x @ layer.weight.data
            if layer.bias is not None:
                x = x + layer.bias.data
        elif isinstance(layer, ReLU):
            mask = x > 0
            caches.append(("relu", None, mask))
            x = x * mask
        elif isinstance(layer, Dropout):
            if training and layer.p > 0.0:
                keep = 1.0 - layer.p
                mask = (layer._rng.random(x.shape) < keep) / keep
                caches.append(("dropout", None, mask))
                x = x * mask
            else:
                caches.append(("identity", None, None))
        else:
            raise ShapeError(
                f"no analytic backward for dense layer {type(layer).__name__}")
    return x, caches


def dense_backward(
    d_out: np.ndarray,
    caches: list[tuple[str, Linear | None, np.ndarray | None]],
) -> np.ndarray:
    """Backward through the cached dense stack; accumulates layer grads."""
    d = d_out
    for kind, layer, saved in reversed(caches):
        if kind == "linear":
            if layer.bias is not None:
                _accumulate(layer.bias, d.sum(axis=0))
            _accumulate(layer.weight, saved.T @ d)
            d = d @ layer.weight.data.T
        elif kind in ("relu", "dropout"):
            d = d * saved
        # "identity": eval-mode dropout, gradient passes through
    return d


# ---------------------------------------------------------------------------
# Full model
# ---------------------------------------------------------------------------

def raal_forward_backward(model, batch) -> tuple[float, np.ndarray]:
    """One fused training step for a RAAL-family model.

    Runs the graph-free forward with activation caching, computes the
    MSE loss against ``batch.targets`` (the trainer's loss, eq.
    Sec. IV-D), and accumulates analytic gradients into every
    parameter's ``.grad`` — numerically equivalent (≤ 1e-8 per
    parameter) to ``mse_loss(model(batch), Tensor(batch.targets))``
    followed by ``.backward()``, for every ablation variant.

    Parameters
    ----------
    model:
        A :class:`repro.core.raal.RAAL` instance (any ablation variant).
    batch:
        A :class:`repro.core.raal.RAALBatch` with ``targets`` set.

    Returns
    -------
    tuple[float, np.ndarray]
        ``(loss, predictions)`` — the scalar MSE and the ``(B,)``
        log-space predictions.
    """
    config = model.config
    if batch.targets is None:
        raise TrainingError(
            "forward_backward needs batch.targets (collate training samples, "
            "or use forward_inference for prediction)")
    x = np.asarray(batch.node_features, dtype=np.float64)
    if x.shape[2] != config.node_dim:
        raise ShapeError(
            f"batch node_dim {x.shape[2]} != model node_dim {config.node_dim}")
    targets = np.asarray(batch.targets, dtype=np.float64)
    batch_size = x.shape[0]

    # -- forward, caching what the gradients need -----------------------
    emb = x @ model.embedding.weight.data
    if model.embedding.bias is not None:
        emb += model.embedding.bias.data
    np.tanh(emb, out=emb)

    lstm_cache = cnn_state = None
    if model.plan_feature is not None:
        cell = model.plan_feature.cell
        hidden, lstm_cache = fused_lstm_forward_cached(
            emb, cell.w_x.data, cell.w_h.data, cell.bias.data,
            mask=batch.node_mask)
    else:
        pad_len = config.cnn_kernel - 1
        embp = emb
        if pad_len:
            b, _, dim = emb.shape
            embp = np.concatenate([np.zeros((b, pad_len, dim)), emb], axis=1)
        b, seq, dim = embp.shape
        k = config.cnn_kernel
        seq_out = seq - k + 1
        cols = np.empty((b, seq_out, k * dim))
        for t in range(seq_out):
            cols[:, t, :] = embp[:, t : t + k, :].reshape(b, k * dim)
        pre = cols @ model.cnn.weight.data + model.cnn.bias.data
        relu_mask = pre > 0
        hidden = pre * relu_mask
        cnn_state = (cols, relu_mask, pad_len)

    na_cache = ra_cache = None
    if model.node_attention is not None:
        plan_vec, na_cache = node_attention_forward_cached(
            hidden, model.node_attention.w_query.data,
            model.node_attention.w_key.data,
            batch.child_mask, batch.node_mask, config.latent_dim)
    else:
        plan_vec = (hidden * batch.node_mask.astype(np.float64)[:, :, None]
                    ).sum(axis=1) / np.maximum(
                        batch.node_mask.sum(axis=1, keepdims=True), 1.0)

    parts = [plan_vec]
    if model.resource_attention is not None:
        resources = np.asarray(batch.resources, dtype=np.float64)
        res_vec, ra_cache = resource_attention_forward_cached(
            hidden, resources, model.resource_attention.w_resource.data,
            model.resource_attention.w_key.data,
            batch.node_mask, config.latent_dim)
        parts.append(res_vec)
        parts.append(resources)
    parts.append(np.asarray(batch.extras, dtype=np.float64))
    joined = np.concatenate(parts, axis=1)
    out, dense_caches = dense_forward_cached(
        model.dense, joined, training=model.training)
    pred = out[:, 0]

    diff = pred - targets
    loss = float(np.mean(diff * diff))

    # -- backward -------------------------------------------------------
    d_pred = (2.0 / diff.size) * diff
    d_joined = dense_backward(d_pred[:, None], dense_caches)

    hs = config.hidden_size
    d_plan_vec = d_joined[:, :hs]
    d_hidden = None
    if model.resource_attention is not None:
        # Raw resources and extras are inputs, not parameters — their
        # slice of d_joined is discarded.
        d_res_vec = d_joined[:, hs : 2 * hs]
        d_hidden, d_wr, d_wk = resource_attention_backward(d_res_vec, ra_cache)
        _accumulate(model.resource_attention.w_resource, d_wr)
        _accumulate(model.resource_attention.w_key, d_wk)
    if model.node_attention is not None:
        dh, d_wq, d_wk = node_attention_backward(d_plan_vec, na_cache)
        d_hidden = dh if d_hidden is None else d_hidden + dh
        _accumulate(model.node_attention.w_query, d_wq)
        _accumulate(model.node_attention.w_key, d_wk)
    else:
        dh = masked_mean_backward(d_plan_vec, batch.node_mask)
        d_hidden = dh if d_hidden is None else d_hidden + dh

    if model.plan_feature is not None:
        cell = model.plan_feature.cell
        d_emb, d_wx, d_wh, d_bias = fused_lstm_backward(d_hidden, lstm_cache)
        _accumulate(cell.w_x, d_wx)
        _accumulate(cell.w_h, d_wh)
        _accumulate(cell.bias, d_bias)
    else:
        cols, relu_mask, pad_len = cnn_state
        b, seq_out, kdim = cols.shape
        k = config.cnn_kernel
        dim = kdim // k
        d_pre = d_hidden * relu_mask
        _accumulate(model.cnn.bias, d_pre.sum(axis=(0, 1)))
        _accumulate(model.cnn.weight,
                    cols.reshape(b * seq_out, kdim).T
                    @ d_pre.reshape(b * seq_out, -1))
        d_cols = d_pre @ model.cnn.weight.data.T
        d_embp = np.zeros((b, seq_out + k - 1, dim))
        for t in range(seq_out):
            d_embp[:, t : t + k, :] += d_cols[:, t].reshape(b, k, dim)
        d_emb = d_embp[:, pad_len:, :] if pad_len else d_embp

    # Embedding: emb = tanh(x @ W + b)
    d_emb_pre = d_emb * (1.0 - emb * emb)
    flat = d_emb_pre.reshape(-1, d_emb_pre.shape[-1])
    _accumulate(model.embedding.weight,
                x.reshape(-1, x.shape[-1]).T @ flat)
    if model.embedding.bias is not None:
        _accumulate(model.embedding.bias, d_emb_pre.sum(axis=(0, 1)))
    return loss, pred
