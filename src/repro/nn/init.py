"""Weight initialization schemes for the numpy NN framework.

All initializers take an explicit :class:`numpy.random.Generator` so
that model construction is fully deterministic given a seed.
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["xavier_uniform", "xavier_normal", "kaiming_uniform", "orthogonal", "zeros", "uniform"]


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> Tensor:
    """Glorot/Xavier uniform initialization ``U(-a, a)``.

    ``a = gain * sqrt(6 / (fan_in + fan_out))``; used for tanh/sigmoid
    layers such as the LSTM gates and attention projections.
    """
    fan_in, fan_out = _fans(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return Tensor(rng.uniform(-bound, bound, size=shape), requires_grad=True)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> Tensor:
    """Glorot/Xavier normal initialization ``N(0, std^2)``."""
    fan_in, fan_out = _fans(shape)
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return Tensor(rng.normal(0.0, std, size=shape), requires_grad=True)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> Tensor:
    """He/Kaiming uniform initialization for ReLU layers."""
    fan_in, _ = _fans(shape)
    bound = math.sqrt(6.0 / fan_in)
    return Tensor(rng.uniform(-bound, bound, size=shape), requires_grad=True)


def orthogonal(shape: tuple[int, int], rng: np.random.Generator, gain: float = 1.0) -> Tensor:
    """Orthogonal initialization (used for recurrent weight matrices)."""
    rows, cols = shape
    flat = rng.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q *= np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return Tensor(np.ascontiguousarray(gain * q[:rows, :cols]), requires_grad=True)


def zeros(shape: tuple[int, ...]) -> Tensor:
    """All-zeros parameter (typical for biases)."""
    return Tensor(np.zeros(shape), requires_grad=True)


def uniform(shape: tuple[int, ...], rng: np.random.Generator, low: float = -0.1, high: float = 0.1) -> Tensor:
    """Plain uniform initialization (used for embedding tables)."""
    return Tensor(rng.uniform(low, high, size=shape), requires_grad=True)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    """Compute (fan_in, fan_out) for a weight shape."""
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
