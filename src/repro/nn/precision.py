"""Precision policy for the inference engine: f64 / f32 / int8 tiers.

The dtype policy is decided once per predictor (``PredictorConfig``)
and materialized here as an :class:`InferenceWeights` bundle — every
array the graph-free forward needs, already in the execution dtype:

* ``f64`` — the model's own parameter arrays, by reference (no copies);
  this tier is bit-identical to the pre-precision inference path.
* ``f32`` — float32 copies of every parameter. OpenBLAS moves roughly
  twice the FLOPs at half the memory traffic, and the elementwise
  tanh/exp sweeps in the LSTM and softmax speed up similarly.
* ``int8`` — every GEMM weight matrix is quantized to int8 with
  per-output-channel scales (:mod:`repro.nn.quantize`) and dequantized
  back to float32 *once*, on load; the GEMMs then run in float32 over
  the dequantized cache. Biases and 1-D parameters stay float32
  (quantizing them saves nothing and costs accuracy).

Bundles for the non-f64 tiers are cached on the model instance, keyed
by precision and a weights fingerprint (the per-parameter sums), so
repeated predict calls pay the cast/quantize cost once per model
version: fine-tuning or ``load_state_dict`` changes the fingerprint and
the next predict rebuilds the bundle automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import PredictionError, ShapeError
from repro.nn.layers import Dropout, Linear, ReLU, Sequential
from repro.nn.quantize import quantization_error, quantize_per_channel

__all__ = [
    "PRECISIONS",
    "DEFAULT_PRECISION",
    "SOFTMAX_FLOORS",
    "resolve_dtype",
    "softmax_floor",
    "InferenceWeights",
    "inference_weights",
    "weights_fingerprint",
    "invalidate_inference_cache",
]

#: Supported precision tiers, in decreasing arithmetic width.
PRECISIONS = ("f64", "f32", "int8")
DEFAULT_PRECISION = "f64"

_DTYPES = {"f64": np.float64, "f32": np.float32, "int8": np.float32}

#: Dtype-aware logit floor for masked softmax entries. Mask bias pushes
#: masked scores to ~-1e9; exp() of those underflows through libm's
#: slow denormal path, and anything near the underflow edge turns into
#: denormals after the normalizing division, poisoning every downstream
#: multiply. The floor keeps exp fast and every derived value in the
#: normal range: float64 underflows below exp(-745) (min normal
#: ~2.2e-308), so -200 leaves ~1e-87 headroom; float32 underflows below
#: exp(-87.3) (min normal ~1.18e-38), so the floor must be much higher
#: — exp(-60) ≈ 8.8e-27 stays normal even after dividing by a
#: 200-node row sum. Either floor perturbs masked weights by < 1e-26,
#: orders of magnitude under the tier's rounding error.
SOFTMAX_FLOORS = {
    np.dtype(np.float64): -200.0,
    np.dtype(np.float32): -60.0,
}


def resolve_dtype(precision: str) -> np.dtype:
    """Execution dtype of a precision tier (int8 executes in float32)."""
    try:
        return np.dtype(_DTYPES[precision])
    except KeyError:
        raise PredictionError(
            f"unknown precision {precision!r}; expected one of {PRECISIONS}")


def softmax_floor(dtype) -> float:
    """Safe logit floor for masked softmax entries at ``dtype``."""
    floor = SOFTMAX_FLOORS.get(np.dtype(dtype))
    if floor is None:
        raise ShapeError(f"no softmax floor defined for dtype {dtype!r}")
    return floor


@dataclass
class InferenceWeights:
    """All arrays of one RAAL-family model, in one execution dtype.

    ``dense`` is a flat op list — ``("linear", w, b)`` / ``("relu",)``
    — mirroring the model's Sequential head with eval-mode Dropout
    already erased, so the execution kernels never touch Module objects.
    ``qerror`` carries the per-matrix quantization error summary for the
    int8 tier (empty otherwise).
    """

    precision: str
    dtype: np.dtype
    embedding_w: np.ndarray
    embedding_b: np.ndarray | None
    lstm: tuple[np.ndarray, np.ndarray, np.ndarray] | None   # w_x, w_h, bias
    cnn: tuple[np.ndarray, np.ndarray, int] | None           # weight, bias, kernel
    node_attention: tuple[np.ndarray, np.ndarray] | None     # w_query, w_key
    resource_attention: tuple[np.ndarray, np.ndarray] | None  # w_resource, w_key
    dense: list[tuple]
    latent_dim: int
    node_dim: int
    quantized_bytes: int = 0
    qerror: dict[str, dict[str, float]] = field(default_factory=dict)


def weights_fingerprint(model) -> tuple:
    """Cheap staleness token: the per-parameter sums, in discovery order.

    Any optimizer step or ``load_state_dict`` perturbs parameter sums
    (up to pathological cancellation), so comparing fingerprints costs
    ~tens of microseconds and catches every realistic weight change.
    ``invalidate_inference_cache`` exists for callers that mutate
    weights and want a hard guarantee.
    """
    return tuple(float(np.sum(p.data)) for p in model.parameters())


def invalidate_inference_cache(model) -> None:
    """Drop all cached per-precision weight bundles of ``model``."""
    if hasattr(model, "_inference_weights"):
        model._inference_weights.clear()


def inference_weights(model, precision: str = DEFAULT_PRECISION) -> InferenceWeights:
    """The model's weights as an execution bundle for one precision tier.

    ``f64`` bundles are rebuilt per call from the live parameter arrays
    (pure views, no copies — always current by construction). ``f32``
    and ``int8`` bundles are cached on the model instance and
    revalidated against :func:`weights_fingerprint`.
    """
    dtype = resolve_dtype(precision)
    if precision == "f64":
        return _build_weights(model, precision, dtype)
    cache = getattr(model, "_inference_weights", None)
    if cache is None:
        cache = model._inference_weights = {}
    fingerprint = weights_fingerprint(model)
    hit = cache.get(precision)
    if hit is not None and hit[0] == fingerprint:
        return hit[1]
    weights = _build_weights(model, precision, dtype)
    cache[precision] = (fingerprint, weights)
    return weights


def _build_weights(model, precision: str, dtype: np.dtype) -> InferenceWeights:
    qerror: dict[str, dict[str, float]] = {}
    quantized_bytes = 0

    def matrix(name: str, array: np.ndarray) -> np.ndarray:
        """A GEMM weight in the execution dtype (quantized for int8)."""
        nonlocal quantized_bytes
        if precision == "int8":
            quantized = quantize_per_channel(array)
            qerror[name] = quantization_error(array, quantized)
            quantized_bytes += quantized.nbytes
            return quantized.dequantize(dtype)
        return np.asarray(array, dtype=dtype)

    def vector(array: np.ndarray | None) -> np.ndarray | None:
        """A bias/1-D parameter: cast only, never quantized."""
        if array is None:
            return None
        return np.asarray(array, dtype=dtype)

    config = model.config
    embedding_b = (model.embedding.bias.data
                   if model.embedding.bias is not None else None)

    lstm = cnn = None
    if model.plan_feature is not None:
        cell = model.plan_feature.cell
        lstm = (matrix("lstm.w_x", cell.w_x.data),
                matrix("lstm.w_h", cell.w_h.data),
                vector(cell.bias.data))
    else:
        cnn = (matrix("cnn.weight", model.cnn.weight.data),
               vector(model.cnn.bias.data),
               config.cnn_kernel)

    node_attention = resource_attention = None
    if model.node_attention is not None:
        node_attention = (
            matrix("node_attention.w_query", model.node_attention.w_query.data),
            matrix("node_attention.w_key", model.node_attention.w_key.data))
    if model.resource_attention is not None:
        resource_attention = (
            matrix("resource_attention.w_resource",
                   model.resource_attention.w_resource.data),
            matrix("resource_attention.w_key",
                   model.resource_attention.w_key.data))

    dense: list[tuple] = []
    if not isinstance(model.dense, Sequential):
        raise ShapeError("model.dense must be a Sequential of Linear/ReLU/Dropout")
    for i, layer in enumerate(model.dense):
        if isinstance(layer, Linear):
            dense.append(("linear", matrix(f"dense.{i}.weight", layer.weight.data),
                          vector(layer.bias.data if layer.bias is not None else None)))
        elif isinstance(layer, ReLU):
            dense.append(("relu",))
        elif isinstance(layer, Dropout):
            pass  # identity at inference
        else:
            raise ShapeError(
                f"no inference kernel for dense layer {type(layer).__name__}")

    return InferenceWeights(
        precision=precision,
        dtype=dtype,
        embedding_w=matrix("embedding.weight", model.embedding.weight.data),
        embedding_b=vector(embedding_b),
        lstm=lstm,
        cnn=cnn,
        node_attention=node_attention,
        resource_attention=resource_attention,
        dense=dense,
        latent_dim=config.latent_dim,
        node_dim=config.node_dim,
        quantized_bytes=quantized_bytes,
        qerror=qerror,
    )
