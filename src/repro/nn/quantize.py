"""Per-channel int8 weight quantization for the inference path.

The int8 precision tier stores every GEMM weight matrix as one signed
byte per element plus one float32 scale per *output channel* (symmetric
quantization, no zero point):

    q[:, j] = round(w[:, j] / scale[j]),   scale[j] = max|w[:, j]| / 127

Per-channel scales matter because the RAAL weight matrices concatenate
heterogeneous blocks (the LSTM packs four gates into one ``(D, 4H)``
matrix; the dense head mixes plan, resource, and statistical inputs) —
one tensor-wide scale would let the largest gate dominate the
resolution of all the others.

numpy has no int8 GEMM, so execution *dequantizes on load*: the int8
payload expands back to float32 once per model version (cached by
:mod:`repro.nn.precision`) and the GEMMs run in float32. The byte
tensors are what a serving deployment ships and holds in memory — 4×
smaller than float32, 8× smaller than float64 — while the arithmetic
error is exactly the quantization rounding, which
:func:`quantization_error` reports per matrix and the precision tests
bound end to end (the documented q-error budget, see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError

__all__ = [
    "QuantizedMatrix",
    "quantize_per_channel",
    "quantization_error",
]

#: Symmetric signed-byte range: q in [-127, 127] (−128 is unused so the
#: range stays symmetric and |dequantized| <= max|w| exactly).
QMAX = 127


@dataclass(frozen=True)
class QuantizedMatrix:
    """An int8-quantized 2-D weight with per-output-channel scales."""

    q: np.ndarray       # (in, out) int8
    scale: np.ndarray   # (out,) float32, always > 0

    @property
    def nbytes(self) -> int:
        """Serialized payload size (bytes + scales)."""
        return self.q.nbytes + self.scale.nbytes

    def dequantize(self, dtype=np.float32) -> np.ndarray:
        """Expand back to floating point: ``q * scale`` per column."""
        return (self.q.astype(dtype) * self.scale.astype(dtype)).astype(
            dtype, copy=False)


def quantize_per_channel(w: np.ndarray) -> QuantizedMatrix:
    """Quantize a 2-D weight matrix to int8, one scale per column.

    Columns are output channels for every GEMM in this codebase (weights
    are shaped ``(in, out)`` and applied as ``x @ w``). All-zero columns
    get scale 1.0 so dequantization is exact for them.
    """
    w = np.asarray(w)
    if w.ndim != 2:
        raise ShapeError(
            f"per-channel quantization expects a 2-D matrix, got {w.shape}")
    absmax = np.abs(w).max(axis=0)
    scale = np.where(absmax > 0.0, absmax / QMAX, 1.0).astype(np.float32)
    q = np.clip(np.rint(w / scale.astype(np.float64)), -QMAX, QMAX)
    return QuantizedMatrix(q=q.astype(np.int8), scale=scale)


def quantization_error(w: np.ndarray, quantized: QuantizedMatrix) -> dict[str, float]:
    """Rounding-error summary of one quantized matrix vs its source.

    ``max_abs`` is the worst absolute weight error, ``max_rel`` the
    worst error relative to the column's absmax (bounded by
    ``0.5 / 127`` ≈ 0.4% by construction), ``rms`` the root-mean-square
    absolute error.
    """
    deq = quantized.dequantize(np.float64)
    err = np.abs(deq - w)
    col_ref = np.maximum(np.abs(w).max(axis=0), 1e-30)
    return {
        "max_abs": float(err.max()) if err.size else 0.0,
        "max_rel": float((err / col_ref).max()) if err.size else 0.0,
        "rms": float(np.sqrt(np.mean(err * err))) if err.size else 0.0,
    }
