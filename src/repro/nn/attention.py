"""Attention mechanisms used by the RAAL model (paper Sec. IV-D).

Two layers are provided:

* :class:`NodeAwareAttention` — eq. (8)/(9): for each node, a softmax
  over its *children* scores how strongly each child influences it; the
  result is a weighted sum of LSTM hidden states.
* :class:`ResourceAwareAttention` — eq. (10)/(11): a softmax over all
  plan nodes scores how strongly the *resource vector* interacts with
  each node; the result is a resource-conditioned plan summary.

Both layers learn bilinear projections into a shared latent space of
dimension ``K`` (the paper fixes ``K = 32``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn import init
from repro.nn.layers import Module
from repro.nn.tensor import Tensor

__all__ = ["NodeAwareAttention", "ResourceAwareAttention"]

_NEG_INF = -1e9


class NodeAwareAttention(Module):
    """Child-structure attention over plan-node hidden states.

    For each node ``v_i`` the layer computes scores between the node's
    hidden state and every other node's, masks the scores so only
    *children* of ``v_i`` compete in the softmax (eq. 8), and sums the
    hidden states weighted by the resulting attention (eq. 9). Nodes
    without children (leaves) fall back to their own hidden state. The
    per-node context vectors are mean-pooled over real (non-padded)
    nodes into one plan-level vector ``P``.
    """

    def __init__(self, hidden_size: int, latent_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.hidden_size = hidden_size
        self.latent_dim = latent_dim
        self.w_query = init.xavier_uniform((hidden_size, latent_dim), rng)
        self.w_key = init.xavier_uniform((hidden_size, latent_dim), rng)

    def forward(
        self,
        hidden: Tensor,
        child_mask: np.ndarray,
        node_mask: np.ndarray,
    ) -> Tensor:
        """Compute the plan relation vector ``P``.

        Parameters
        ----------
        hidden:
            LSTM hidden states ``(batch, n, hidden)``.
        child_mask:
            Boolean ``(batch, n, n)``; ``child_mask[b, i, j]`` is True
            when node ``j`` is a child of node ``i`` in plan ``b``.
        node_mask:
            Boolean ``(batch, n)``; True on real (non-padded) nodes.

        Returns
        -------
        Tensor
            ``(batch, hidden)`` pooled relational representation.
        """
        batch, n, hid = hidden.shape
        if child_mask.shape != (batch, n, n):
            raise ShapeError(f"child_mask shape {child_mask.shape} != {(batch, n, n)}")
        queries = hidden @ self.w_query           # (batch, n, K)
        keys = hidden @ self.w_key                # (batch, n, K)
        scores = queries @ keys.transpose(0, 2, 1)  # (batch, n, n)
        scores = scores * (1.0 / np.sqrt(self.latent_dim))
        bias = np.where(child_mask, 0.0, _NEG_INF)
        attn = (scores + Tensor(bias)).softmax(axis=-1)      # (batch, n, n)
        # Rows with no children produce a uniform distribution over the
        # -inf-masked row; zero them out and substitute the node itself.
        has_children = child_mask.any(axis=-1, keepdims=True)  # (batch, n, 1)
        attn = attn * Tensor(has_children.astype(np.float64))
        context = attn @ hidden                     # (batch, n, hidden)
        self_term = hidden * Tensor(1.0 - has_children.astype(np.float64))
        context = context + self_term
        # Mean-pool over real nodes.
        node_w = node_mask.astype(np.float64)
        denom = np.maximum(node_w.sum(axis=1, keepdims=True), 1.0)
        pooled = (context * Tensor(node_w[:, :, None])).sum(axis=1) * Tensor(1.0 / denom)
        return pooled


class ResourceAwareAttention(Module):
    """Resource-conditioned attention over plan-node hidden states.

    The resource vector ``Re`` is projected into the latent space and
    scored against every node's hidden state; a softmax over nodes
    (eq. 10) weights the hidden states into a summary ``M`` (eq. 11)
    that reflects which operators are most sensitive to the current
    resource allocation.
    """

    def __init__(self, hidden_size: int, resource_dim: int, latent_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.hidden_size = hidden_size
        self.resource_dim = resource_dim
        self.latent_dim = latent_dim
        self.w_resource = init.xavier_uniform((resource_dim, latent_dim), rng)
        self.w_key = init.xavier_uniform((hidden_size, latent_dim), rng)

    def forward(self, hidden: Tensor, resources: Tensor, node_mask: np.ndarray) -> Tensor:
        """Compute the resource-impact vector ``M``.

        Parameters
        ----------
        hidden:
            LSTM hidden states ``(batch, n, hidden)``.
        resources:
            Normalized resource features ``(batch, resource_dim)``.
        node_mask:
            Boolean ``(batch, n)``; True on real nodes.

        Returns
        -------
        Tensor
            ``(batch, hidden)`` resource-weighted plan summary.
        """
        if resources.shape[-1] != self.resource_dim:
            raise ShapeError(
                f"expected resource dim {self.resource_dim}, got {resources.shape[-1]}"
            )
        query = resources @ self.w_resource                 # (batch, K)
        keys = hidden @ self.w_key                          # (batch, n, K)
        scores = (keys @ query.expand_dims(2)).squeeze(2)   # (batch, n)
        scores = scores * (1.0 / np.sqrt(self.latent_dim))
        bias = np.where(node_mask, 0.0, _NEG_INF)
        attn = (scores + Tensor(bias)).softmax(axis=-1)     # (batch, n)
        return (hidden * attn.expand_dims(2)).sum(axis=1)   # (batch, hidden)
