"""Per-thread scratch arenas for the batched inference path.

The bucketed predict loop pads every batch into fresh arrays — node
features, child mask, node mask, resources, extras — and throws them
away after one forward. Under a thread-pool executor that is allocator
traffic multiplied by the worker count. :class:`ScratchArena` applies
the rotating-buffer pattern the analytic LSTM backward uses
(:mod:`repro.nn.training`) to collation: one grow-only flat buffer per
(key, dtype), re-sliced and re-shaped per batch, so a steady-state
request stream performs no collation allocations at all.

Arenas are deliberately *not* thread-safe — each executor worker gets
its own via :func:`thread_local_arena` — and views handed out by an
arena are only valid until the same thread's next request for the same
key, which matches the collate → forward → discard lifecycle exactly.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["ScratchArena", "thread_local_arena"]


class ScratchArena:
    """Grow-only reusable buffers, keyed by purpose string."""

    def __init__(self) -> None:
        self._buffers: dict[tuple[str, np.dtype], np.ndarray] = {}
        #: Total bytes currently held (observability, tests).
        self.allocated_bytes = 0

    def _flat(self, key: str, size: int, dtype) -> np.ndarray:
        dtype = np.dtype(dtype)
        buf = self._buffers.get((key, dtype))
        if buf is None or buf.size < size:
            # Geometric growth bounds the number of re-allocations a
            # warming-up workload performs per key.
            capacity = max(size, 2 * (buf.size if buf is not None else 0))
            if buf is not None:
                self.allocated_bytes -= buf.nbytes
            buf = np.empty(capacity, dtype=dtype)
            self._buffers[(key, dtype)] = buf
            self.allocated_bytes += buf.nbytes
        return buf[:size]

    def empty(self, key: str, shape: tuple[int, ...], dtype=np.float64) -> np.ndarray:
        """An uninitialized ``shape`` view of the ``key`` buffer."""
        size = int(np.prod(shape)) if shape else 1
        return self._flat(key, size, dtype).reshape(shape)

    def zeros(self, key: str, shape: tuple[int, ...], dtype=np.float64) -> np.ndarray:
        """A zero-filled ``shape`` view of the ``key`` buffer."""
        out = self.empty(key, shape, dtype)
        out.fill(0)
        return out


_LOCAL = threading.local()


def thread_local_arena() -> ScratchArena:
    """The calling thread's private arena (created on first use)."""
    arena = getattr(_LOCAL, "arena", None)
    if arena is None:
        arena = _LOCAL.arena = ScratchArena()
    return arena
