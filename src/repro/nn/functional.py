"""Functional helpers shared by models and trainers."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn.tensor import Tensor

__all__ = ["softmax", "log_softmax", "one_hot", "pad_sequences", "masked_mean"]


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` (delegates to :meth:`Tensor.softmax`)."""
    return x.softmax(axis=axis)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def one_hot(ids: np.ndarray, num_classes: int) -> np.ndarray:
    """Return a ``(len(ids), num_classes)`` one-hot float matrix."""
    ids = np.asarray(ids, dtype=np.int64)
    if ids.size and (ids.min() < 0 or ids.max() >= num_classes):
        raise ShapeError(f"ids out of range [0, {num_classes})")
    out = np.zeros((ids.size, num_classes))
    out[np.arange(ids.size), ids.ravel()] = 1.0
    return out.reshape(*ids.shape, num_classes)


def pad_sequences(seqs: list[np.ndarray], max_len: int | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Zero-pad a list of ``(len_i, dim)`` arrays into one batch.

    Returns ``(padded, mask)`` where ``padded`` has shape
    ``(batch, max_len, dim)`` and ``mask`` is a boolean ``(batch, max_len)``
    marking real timesteps.
    """
    if not seqs:
        raise ShapeError("pad_sequences() of an empty list")
    dims = {s.shape[1] for s in seqs}
    if len(dims) != 1:
        raise ShapeError(f"inconsistent feature dims: {sorted(dims)}")
    dim = dims.pop()
    longest = max(len(s) for s in seqs)
    if max_len is None:
        max_len = longest
    elif longest > max_len:
        raise ShapeError(f"sequence of length {longest} exceeds max_len {max_len}")
    batch = len(seqs)
    padded = np.zeros((batch, max_len, dim))
    mask = np.zeros((batch, max_len), dtype=bool)
    for i, s in enumerate(seqs):
        padded[i, : len(s)] = s
        mask[i, : len(s)] = True
    return padded, mask


def masked_mean(x: Tensor, mask: np.ndarray) -> Tensor:
    """Mean of ``x`` (batch, n, dim) over axis 1 restricted to ``mask``."""
    weights = mask.astype(np.float64)
    denom = np.maximum(weights.sum(axis=1, keepdims=True), 1.0)
    return (x * Tensor(weights[:, :, None])).sum(axis=1) * Tensor(1.0 / denom)
