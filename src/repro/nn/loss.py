"""Loss functions for regression cost models."""

from __future__ import annotations

from repro.errors import ShapeError
from repro.nn.tensor import Tensor

__all__ = ["mse_loss", "mae_loss", "huber_loss", "q_error"]


def _check(pred: Tensor, target: Tensor) -> None:
    if pred.shape != target.shape:
        raise ShapeError(f"prediction shape {pred.shape} != target shape {target.shape}")


def mse_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Mean squared error — the paper's training loss (Sec. IV-D)."""
    _check(pred, target)
    diff = pred - target
    return (diff * diff).mean()


def mae_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error."""
    _check(pred, target)
    return (pred - target).abs().mean()


def huber_loss(pred: Tensor, target: Tensor, delta: float = 1.0) -> Tensor:
    """Huber loss: quadratic near zero, linear in the tails.

    Implemented as ``delta^2 * (sqrt(1 + (d/delta)^2) - 1)``
    (pseudo-Huber), which is smooth and autograd-friendly.
    """
    _check(pred, target)
    diff = (pred - target) * (1.0 / delta)
    return ((diff * diff + 1.0) ** 0.5 - 1.0).mean() * (delta * delta)


def q_error(pred: Tensor, target: Tensor, eps: float = 1e-9) -> Tensor:
    """Mean q-error ``max(pred/actual, actual/pred)`` on positive values.

    Not used for training in the paper but a standard diagnostic for
    cost estimators.
    """
    _check(pred, target)
    p = pred.abs() + eps
    t = target.abs() + eps
    ratio = p / t
    inverse = t / p
    # max(a, b) = (a + b + |a - b|) / 2, implemented with autograd ops.
    return ((ratio + inverse + (ratio - inverse).abs()) * 0.5).mean()
