"""Neural network layers (modules) built on :class:`repro.nn.tensor.Tensor`.

The :class:`Module` base class provides parameter discovery, train/eval
mode switching, and state-dict (de)serialization — enough surface to
express every network in the paper (RAAL, its ablations, TLSTM, RAAC).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import ShapeError
from repro.nn import init
from repro.nn.tensor import Tensor

__all__ = ["Module", "Linear", "Sequential", "ReLU", "Tanh", "Sigmoid", "Dropout", "Embedding", "LayerNorm", "Conv1d"]


class Module:
    """Base class for all layers and models.

    Subclasses register parameters by assigning :class:`Tensor` objects
    (with ``requires_grad=True``) or other :class:`Module` instances as
    attributes; :meth:`parameters` then discovers them recursively.
    """

    def __init__(self) -> None:
        self.training = True

    # -- parameter discovery -------------------------------------------
    def parameters(self) -> list[Tensor]:
        """Return all trainable tensors of this module and submodules."""
        return [tensor for _, tensor in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        """Yield ``(name, tensor)`` pairs for all trainable parameters."""
        for name, value in vars(self).items():
            if name.startswith("_"):
                continue
            full = f"{prefix}{name}"
            if isinstance(value, Tensor) and value.requires_grad:
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{i}.")
                    elif isinstance(item, Tensor) and item.requires_grad:
                        yield f"{full}.{i}", item

    def num_parameters(self) -> int:
        """Total number of trainable scalar parameters."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        """Reset gradients of all parameters."""
        for p in self.parameters():
            p.zero_grad()

    # -- train/eval ------------------------------------------------------
    def train(self) -> "Module":
        """Put the module (recursively) into training mode."""
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        """Put the module (recursively) into evaluation mode."""
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in vars(self).values():
            if isinstance(value, Module):
                value._set_mode(training)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._set_mode(training)

    # -- serialization -----------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a name → array snapshot of all parameters (copies)."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter values from :meth:`state_dict` output."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise ShapeError(
                f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, value in state.items():
            param = own[name]
            value = np.asarray(value, dtype=np.float64)
            if param.data.shape != value.shape:
                raise ShapeError(
                    f"parameter {name!r}: shape {value.shape} does not match {param.data.shape}"
                )
            param.data[...] = value

    # -- call protocol -------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Linear(Module):
    """Affine layer ``y = x W + b`` (weights shaped ``(in, out)``)."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator, bias: bool = True) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = init.xavier_uniform((in_features, out_features), rng)
        self.bias = init.zeros((out_features,)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class ReLU(Module):
    """Elementwise ReLU activation as a module."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    """Elementwise tanh activation as a module."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    """Elementwise sigmoid activation as a module."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.layers = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)


class Dropout(Module):
    """Inverted dropout; identity in eval mode.

    A module-owned generator keeps dropout deterministic per model seed
    while remaining independent of data-order randomness.
    """

    def __init__(self, p: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ShapeError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep) / keep
        return x * Tensor(mask)


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = init.uniform((num_embeddings, dim), rng, low=-0.5 / dim, high=0.5 / dim)

    def forward(self, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_embeddings):
            raise ShapeError(
                f"embedding ids out of range [0, {self.num_embeddings}): "
                f"[{ids.min()}, {ids.max()}]"
            )
        return self.weight[ids]


class LayerNorm(Module):
    """Layer normalization over the last axis."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Tensor(np.ones(dim), requires_grad=True)
        self.beta = Tensor(np.zeros(dim), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        centered = x - mu
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered * (var + self.eps) ** -0.5
        return normed * self.gamma + self.beta


class Conv1d(Module):
    """1-D convolution over a sequence, implemented via im2col.

    Input shape ``(batch, seq, in_channels)``, output
    ``(batch, seq_out, out_channels)`` with ``seq_out = seq - kernel + 1``
    (no padding, stride 1). Used by the RAAC ablation, which replaces
    the LSTM plan-feature layer with a CNN.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.weight = init.kaiming_uniform((kernel_size * in_channels, out_channels), rng)
        self.bias = init.zeros((out_channels,))

    def forward(self, x: Tensor) -> Tensor:
        batch, seq, channels = x.shape
        if channels != self.in_channels:
            raise ShapeError(f"expected {self.in_channels} input channels, got {channels}")
        if seq < self.kernel_size:
            raise ShapeError(f"sequence length {seq} shorter than kernel {self.kernel_size}")
        windows = [x[:, t : t + self.kernel_size, :].reshape(batch, self.kernel_size * channels)
                   for t in range(seq - self.kernel_size + 1)]
        cols = Tensor.stack(windows, axis=1)  # (batch, seq_out, k*in)
        return cols @ self.weight + self.bias
