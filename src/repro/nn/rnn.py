"""Recurrent layers: the LSTM cell and sequence LSTM used by RAAL.

The cell implements the standard equations the paper cites (its eqs.
2-7): input gate ``i``, forget gate ``f``, output gate ``o``, candidate
cell ``g``, cell state ``c`` and hidden state ``h``:

    i_t = sigmoid(x_t W_xi + h_{t-1} W_hi + b_i)
    f_t = sigmoid(x_t W_xf + h_{t-1} W_hf + b_f)
    o_t = sigmoid(x_t W_xo + h_{t-1} W_ho + b_o)
    g_t = tanh   (x_t W_xg + h_{t-1} W_hg + b_g)
    c_t = f_t * c_{t-1} + i_t * g_t
    h_t = o_t * tanh(c_t)

The four gate projections are fused into single ``(input, 4*hidden)``
and ``(hidden, 4*hidden)`` matrices for speed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn import init
from repro.nn.layers import Module
from repro.nn.tensor import Tensor

__all__ = ["LSTMCell", "LSTM"]


class LSTMCell(Module):
    """A single LSTM step ``(x_t, (h, c)) -> (h', c')``."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_x = init.xavier_uniform((input_size, 4 * hidden_size), rng)
        self.w_h = init.orthogonal((hidden_size, 4 * hidden_size), rng)
        bias = np.zeros(4 * hidden_size)
        # Forget-gate bias starts at 1 so early training keeps memory.
        bias[hidden_size : 2 * hidden_size] = 1.0
        self.bias = Tensor(bias, requires_grad=True)

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
        h_prev, c_prev = state
        if x.shape[-1] != self.input_size:
            raise ShapeError(f"LSTMCell expected input size {self.input_size}, got {x.shape[-1]}")
        gates = x @ self.w_x + h_prev @ self.w_h + self.bias
        hs = self.hidden_size
        i = gates[..., 0 * hs : 1 * hs].sigmoid()
        f = gates[..., 1 * hs : 2 * hs].sigmoid()
        g = gates[..., 2 * hs : 3 * hs].tanh()
        o = gates[..., 3 * hs : 4 * hs].sigmoid()
        c = f * c_prev + i * g
        h = o * c.tanh()
        return h, c

    def initial_state(self, batch: int) -> tuple[Tensor, Tensor]:
        """Zero (h, c) state for a batch."""
        return (Tensor(np.zeros((batch, self.hidden_size))),
                Tensor(np.zeros((batch, self.hidden_size))))


class LSTM(Module):
    """Unidirectional sequence LSTM over ``(batch, seq, input)`` inputs.

    Returns all hidden states ``(batch, seq, hidden)`` plus the final
    ``(h, c)``. An optional boolean mask (``(batch, seq)``) freezes the
    state on padded steps so that variable-length plan sequences can be
    batched together.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, rng)
        self.input_size = input_size
        self.hidden_size = hidden_size

    def forward(
        self,
        x: Tensor,
        mask: np.ndarray | None = None,
        state: tuple[Tensor, Tensor] | None = None,
    ) -> tuple[Tensor, tuple[Tensor, Tensor]]:
        if x.ndim != 3:
            raise ShapeError(f"LSTM expects (batch, seq, input), got shape {x.shape}")
        batch, seq, _ = x.shape
        if state is None:
            h, c = self.cell.initial_state(batch)
        else:
            h, c = state
        outputs: list[Tensor] = []
        for t in range(seq):
            h_new, c_new = self.cell(x[:, t, :], (h, c))
            if mask is not None:
                m = Tensor(mask[:, t : t + 1].astype(np.float64))
                h = h_new * m + h * (1.0 - m)
                c = c_new * m + c * (1.0 - m)
            else:
                h, c = h_new, c_new
            outputs.append(h)
        return Tensor.stack(outputs, axis=1), (h, c)
