"""Reverse-mode automatic differentiation on top of numpy.

This module implements the :class:`Tensor` class, a small but complete
autograd engine in the spirit of PyTorch. A ``Tensor`` wraps a numpy
array and records the operations applied to it; calling
:meth:`Tensor.backward` on a scalar result propagates gradients back to
every tensor created with ``requires_grad=True``.

The engine supports full numpy-style broadcasting. Gradients flowing
into a broadcast operand are reduced back to the operand's shape by
:func:`_unbroadcast`.

Example
-------
>>> from repro.nn.tensor import Tensor
>>> x = Tensor([1.0, 2.0, 3.0], requires_grad=True)
>>> y = (x * x).sum()
>>> y.backward()
>>> x.grad.tolist()
[2.0, 4.0, 6.0]
"""

from __future__ import annotations

import threading
from typing import Iterable, Sequence

import numpy as np

from repro.errors import AutogradError, ShapeError

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

# Per-thread gradient mode: bucket-parallel inference runs no_grad
# contexts concurrently, and a process-global flag would let one
# thread's __exit__ clobber another's (leaving gradients disabled for
# the whole process once the restores interleave). New threads start
# with gradients enabled.
_GRAD_STATE = threading.local()


class no_grad:
    """Context manager that disables gradient tracking.

    While active, all new tensors produced by operations *on this
    thread* are detached from the autograd graph, which makes inference
    cheaper. The mode is thread-local, so concurrent inference workers
    cannot corrupt each other's (or the training loop's) grad mode.

    >>> with no_grad():
    ...     z = x * 2  # z.requires_grad is False
    """

    def __enter__(self) -> "no_grad":
        self._previous = is_grad_enabled()
        _GRAD_STATE.enabled = False
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        _GRAD_STATE.enabled = self._previous


def is_grad_enabled() -> bool:
    """Return whether gradient tracking is enabled on this thread."""
    return getattr(_GRAD_STATE, "enabled", True)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, inverting numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were expanded from size 1.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(data) -> np.ndarray:
    """Coerce ``data`` (scalar, sequence, ndarray, Tensor) to float64 ndarray."""
    if isinstance(data, Tensor):
        return data.data
    arr = np.asarray(data, dtype=np.float64)
    return arr


class Tensor:
    """A numpy-backed tensor with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Scalar, nested sequence, or numpy array. Stored as ``float64``.
    requires_grad:
        If ``True``, gradients are accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_op")

    def __init__(self, data, requires_grad: bool = False) -> None:
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: np.ndarray | None = None
        self._backward = None
        self._parents: tuple[Tensor, ...] = ()
        self._op = "leaf"

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        """Return a tensor of zeros with the given shape."""
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        """Return a tensor of ones with the given shape."""
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def from_numpy(array: np.ndarray, requires_grad: bool = False) -> "Tensor":
        """Wrap a numpy array (copied to float64) as a tensor."""
        return Tensor(array, requires_grad=requires_grad)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions of the underlying array."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    @property
    def T(self) -> "Tensor":
        """Transpose (reverses all axes)."""
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def tolist(self):
        """Return the data as (nested) Python lists."""
        return self.data.tolist()

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        out = Tensor.__new__(Tensor)
        out.data = self.data
        out.requires_grad = False
        out.grad = None
        out._backward = None
        out._parents = ()
        out._op = "detach"
        return out

    # ------------------------------------------------------------------
    # Graph plumbing
    # ------------------------------------------------------------------
    def _make(self, data: np.ndarray, parents: Sequence["Tensor"], op: str) -> "Tensor":
        """Create a result tensor wired into the autograd graph."""
        out = Tensor.__new__(Tensor)
        out.data = data
        out.grad = None
        out._backward = None
        out._op = op
        tracked = is_grad_enabled() and any(p.requires_grad for p in parents)
        out.requires_grad = tracked
        out._parents = tuple(parents) if tracked else ()
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's ``.grad`` buffer."""
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to ``None``."""
        self.grad = None

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective w.r.t. this tensor. Defaults
            to ``1.0`` and then requires this tensor to be a scalar.
        """
        if not self.requires_grad:
            raise AutogradError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise AutogradError(
                    f"backward() without an explicit gradient requires a scalar tensor, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)
            if grad.shape != self.data.shape:
                raise ShapeError(
                    f"gradient shape {grad.shape} does not match tensor shape {self.shape}"
                )

        # Topological sort of the graph reachable from self.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make(self.data + other.data, (self, other), "add")
        if out.requires_grad:

            def _backward(grad: np.ndarray) -> None:
                if self.requires_grad:
                    self._accumulate(_unbroadcast(grad, self.data.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(grad, other.data.shape))

            out._backward = _backward
        return out

    __radd__ = __add__

    def __mul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make(self.data * other.data, (self, other), "mul")
        if out.requires_grad:

            def _backward(grad: np.ndarray) -> None:
                if self.requires_grad:
                    self._accumulate(_unbroadcast(grad * other.data, self.data.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(grad * self.data, other.data.shape))

            out._backward = _backward
        return out

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return self + (-other)

    def __rsub__(self, other) -> "Tensor":
        return Tensor(other) + (-self)

    def __truediv__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return self * other ** -1.0

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor(other) * self ** -1.0

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise AutogradError("tensor exponents are not supported; use exp/log")
        exponent = float(exponent)
        out = self._make(self.data ** exponent, (self,), "pow")
        if out.requires_grad:

            def _backward(grad: np.ndarray) -> None:
                self._accumulate(grad * exponent * self.data ** (exponent - 1.0))

            out._backward = _backward
        return out

    def __matmul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make(self.data @ other.data, (self, other), "matmul")
        if out.requires_grad:

            def _backward(grad: np.ndarray) -> None:
                a, b = self.data, other.data
                if self.requires_grad:
                    if b.ndim == 1 and a.ndim == 1:
                        ga = grad * b
                    elif b.ndim == 1:
                        # (..., m, k) @ (k,) -> (..., m): d/da = grad[..., None] * b
                        ga = np.expand_dims(grad, -1) * b
                    else:
                        ga = grad @ np.swapaxes(b, -1, -2)
                    self._accumulate(_unbroadcast(np.asarray(ga), a.shape))
                if other.requires_grad:
                    if a.ndim == 1 and b.ndim == 1:
                        gb = grad * a
                    elif a.ndim == 1:
                        # (k,) @ (k, n) -> (n,): d/db = outer(a, grad)
                        gb = np.multiply.outer(a, grad)
                    elif b.ndim == 1:
                        # (..., m, k) @ (k,) -> (..., m): d/db = sum over batch of a^T grad
                        gb = (np.swapaxes(a, -1, -2) @ np.expand_dims(grad, -1)).squeeze(-1)
                    else:
                        gb = np.swapaxes(a, -1, -2) @ grad
                    other._accumulate(_unbroadcast(np.asarray(gb), b.shape))

            out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        out = self._make(np.exp(self.data), (self,), "exp")
        if out.requires_grad:

            def _backward(grad: np.ndarray) -> None:
                self._accumulate(grad * out.data)

            out._backward = _backward
        return out

    def log(self) -> "Tensor":
        """Elementwise natural logarithm."""
        out = self._make(np.log(self.data), (self,), "log")
        if out.requires_grad:

            def _backward(grad: np.ndarray) -> None:
                self._accumulate(grad / self.data)

            out._backward = _backward
        return out

    def sigmoid(self) -> "Tensor":
        """Elementwise logistic sigmoid, computed stably."""
        # Clipping at |x| = 60 keeps exp() finite; sigmoid saturates to
        # within 1e-26 of 0/1 there, so the result is exact in float64.
        x = np.clip(self.data, -60.0, 60.0)
        s = 1.0 / (1.0 + np.exp(-x))
        out = self._make(s, (self,), "sigmoid")
        if out.requires_grad:

            def _backward(grad: np.ndarray) -> None:
                self._accumulate(grad * out.data * (1.0 - out.data))

            out._backward = _backward
        return out

    def tanh(self) -> "Tensor":
        """Elementwise hyperbolic tangent."""
        out = self._make(np.tanh(self.data), (self,), "tanh")
        if out.requires_grad:

            def _backward(grad: np.ndarray) -> None:
                self._accumulate(grad * (1.0 - out.data ** 2))

            out._backward = _backward
        return out

    def relu(self) -> "Tensor":
        """Elementwise rectified linear unit."""
        mask = self.data > 0
        out = self._make(self.data * mask, (self,), "relu")
        if out.requires_grad:

            def _backward(grad: np.ndarray) -> None:
                self._accumulate(grad * mask)

            out._backward = _backward
        return out

    def sqrt(self) -> "Tensor":
        """Elementwise square root."""
        return self ** 0.5

    def abs(self) -> "Tensor":
        """Elementwise absolute value (subgradient 0 at 0)."""
        sign = np.sign(self.data)
        out = self._make(np.abs(self.data), (self,), "abs")
        if out.requires_grad:

            def _backward(grad: np.ndarray) -> None:
                self._accumulate(grad * sign)

            out._backward = _backward
        return out

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values to ``[low, high]``; gradient is zero outside."""
        mask = (self.data >= low) & (self.data <= high)
        out = self._make(np.clip(self.data, low, high), (self,), "clip")
        if out.requires_grad:

            def _backward(grad: np.ndarray) -> None:
                self._accumulate(grad * mask)

            out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        """Sum of elements over the given axis (or all elements)."""
        out = self._make(self.data.sum(axis=axis, keepdims=keepdims), (self,), "sum")
        if out.requires_grad:
            in_shape = self.data.shape

            def _backward(grad: np.ndarray) -> None:
                g = grad
                if axis is not None and not keepdims:
                    axes = (axis,) if isinstance(axis, int) else axis
                    for ax in sorted(a % self.data.ndim for a in axes):
                        g = np.expand_dims(g, ax)
                self._accumulate(np.broadcast_to(g, in_shape).copy())

            out._backward = _backward
        return out

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        """Arithmetic mean over the given axis (or all elements)."""
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = 1
            for ax in axes:
                count *= self.data.shape[ax]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        """Maximum over the given axis; gradient flows to (all) argmax cells."""
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        out = self._make(out_data, (self,), "max")
        if out.requires_grad:

            def _backward(grad: np.ndarray) -> None:
                if axis is None:
                    mask = (self.data == out_data)
                    g = grad * mask / mask.sum()
                else:
                    expanded = self.data.max(axis=axis, keepdims=True)
                    mask = (self.data == expanded)
                    counts = mask.sum(axis=axis, keepdims=True)
                    g_exp = grad if keepdims else np.expand_dims(grad, axis)
                    g = g_exp * mask / counts
                self._accumulate(g)

            out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        """Return a reshaped view of this tensor."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = self._make(self.data.reshape(shape), (self,), "reshape")
        if out.requires_grad:
            in_shape = self.data.shape

            def _backward(grad: np.ndarray) -> None:
                self._accumulate(grad.reshape(in_shape))

            out._backward = _backward
        return out

    def transpose(self, *axes: int) -> "Tensor":
        """Permute the axes (all reversed when none are given)."""
        axes_t = axes if axes else tuple(reversed(range(self.data.ndim)))
        if len(axes_t) == 1 and isinstance(axes_t[0], (tuple, list)):
            axes_t = tuple(axes_t[0])
        out = self._make(self.data.transpose(axes_t), (self,), "transpose")
        if out.requires_grad:
            inverse = np.argsort(axes_t)

            def _backward(grad: np.ndarray) -> None:
                self._accumulate(grad.transpose(inverse))

            out._backward = _backward
        return out

    def __getitem__(self, index) -> "Tensor":
        out = self._make(self.data[index], (self,), "getitem")
        if out.requires_grad:

            def _backward(grad: np.ndarray) -> None:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

            out._backward = _backward
        return out

    def squeeze(self, axis: int | None = None) -> "Tensor":
        """Remove axes of length one."""
        out_data = self.data.squeeze() if axis is None else self.data.squeeze(axis)
        out = self._make(out_data, (self,), "squeeze")
        if out.requires_grad:
            in_shape = self.data.shape

            def _backward(grad: np.ndarray) -> None:
                self._accumulate(grad.reshape(in_shape))

            out._backward = _backward
        return out

    def expand_dims(self, axis: int) -> "Tensor":
        """Insert a new axis of length one at ``axis``."""
        out = self._make(np.expand_dims(self.data, axis), (self,), "expand_dims")
        if out.requires_grad:
            in_shape = self.data.shape

            def _backward(grad: np.ndarray) -> None:
                self._accumulate(grad.reshape(in_shape))

            out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Joining
    # ------------------------------------------------------------------
    @staticmethod
    def concat(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        """Concatenate tensors along an existing axis."""
        tensors = list(tensors)
        if not tensors:
            raise ShapeError("concat() of an empty sequence")
        data = np.concatenate([t.data for t in tensors], axis=axis)
        proto = tensors[0]
        out = proto._make(data, tensors, "concat")
        if out.requires_grad:
            sizes = [t.data.shape[axis] for t in tensors]
            offsets = np.cumsum([0] + sizes)

            def _backward(grad: np.ndarray) -> None:
                for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                    if t.requires_grad:
                        slicer = [slice(None)] * grad.ndim
                        slicer[axis] = slice(start, stop)
                        t._accumulate(grad[tuple(slicer)])

            out._backward = _backward
        return out

    @staticmethod
    def stack(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        """Stack tensors along a new axis."""
        tensors = list(tensors)
        if not tensors:
            raise ShapeError("stack() of an empty sequence")
        data = np.stack([t.data for t in tensors], axis=axis)
        proto = tensors[0]
        out = proto._make(data, tensors, "stack")
        if out.requires_grad:

            def _backward(grad: np.ndarray) -> None:
                parts = np.split(grad, len(tensors), axis=axis)
                for t, g in zip(tensors, parts):
                    if t.requires_grad:
                        t._accumulate(np.squeeze(g, axis=axis))

            out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Softmax (kept on Tensor because attention layers use it heavily)
    # ------------------------------------------------------------------
    def softmax(self, axis: int = -1) -> "Tensor":
        """Numerically stable softmax along ``axis``."""
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        sm = exp / exp.sum(axis=axis, keepdims=True)
        out = self._make(sm, (self,), "softmax")
        if out.requires_grad:

            def _backward(grad: np.ndarray) -> None:
                dot = (grad * sm).sum(axis=axis, keepdims=True)
                self._accumulate(sm * (grad - dot))

            out._backward = _backward
        return out
