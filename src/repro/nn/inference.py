"""Graph-free inference kernels for the RAAL model family.

The autograd :class:`~repro.nn.tensor.Tensor` pays for every operation
twice at inference time: it allocates a Python object per intermediate
and wires up a backward closure that is never called. The functions
here re-implement the forward pass of each RAAL building block on raw
numpy arrays — no graph, no Tensor wrappers — using the *same*
formulas and operation order as the autograd layers, so results agree
to float-rounding (≤ 1e-8) with the training path.

The LSTM forward is additionally *fused*: the input projections of all
timesteps are computed in a single ``(B·T, D) @ (D, 4H)`` GEMM up
front, so the per-timestep loop only carries the (irreducibly
sequential) recurrent ``h @ W_h`` product.

Entry point: :func:`raal_forward_inference`, also exposed as
``RAAL.forward_inference``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn.layers import Dropout, Linear, ReLU, Sequential

__all__ = [
    "fused_lstm_forward",
    "node_attention_forward",
    "resource_attention_forward",
    "masked_mean_forward",
    "dense_forward",
    "conv1d_forward",
    "raal_forward_inference",
]

_NEG_INF = -1e9


def _sigmoid(x: np.ndarray) -> np.ndarray:
    # Same clipping as Tensor.sigmoid so the two paths agree bitwise on
    # saturated gates.
    x = np.clip(x, -60.0, 60.0)
    return 1.0 / (1.0 + np.exp(-x))


def _softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    # Mask bias pushes entries to ~-1e9; exp() of those underflows
    # through libm's slow denormal path, and anything closer to the
    # underflow edge turns into denormals after the division below,
    # which poisons every downstream multiply. Flooring at -200 keeps
    # exp fast and every derived value in the normal range while
    # perturbing masked weights by at most ~1e-87.
    np.clip(shifted, -200.0, None, out=shifted)
    np.exp(shifted, out=shifted)
    shifted /= shifted.sum(axis=axis, keepdims=True)
    return shifted


def fused_lstm_forward(
    x: np.ndarray,
    w_x: np.ndarray,
    w_h: np.ndarray,
    bias: np.ndarray,
    mask: np.ndarray | None = None,
) -> np.ndarray:
    """All hidden states of a unidirectional LSTM, graph-free.

    Parameters
    ----------
    x:
        Inputs ``(batch, seq, input_size)``.
    w_x / w_h / bias:
        Fused gate parameters, shaped ``(input, 4H)`` / ``(H, 4H)`` /
        ``(4H,)`` with gate order i, f, g, o (as in
        :class:`repro.nn.rnn.LSTMCell`).
    mask:
        Optional boolean ``(batch, seq)``; the state freezes on padded
        (False) steps, matching :class:`repro.nn.rnn.LSTM`.

    Returns
    -------
    np.ndarray
        Hidden states ``(batch, seq, H)``.
    """
    # Single implementation with the training fast path: the cached
    # time-major kernel is faster than a per-gate loop even counting the
    # activation slabs it records (lazy import: training imports from
    # this module).
    from repro.nn.training import fused_lstm_forward_cached

    outputs, _ = fused_lstm_forward_cached(x, w_x, w_h, bias, mask=mask)
    return outputs


def node_attention_forward(
    hidden: np.ndarray,
    w_query: np.ndarray,
    w_key: np.ndarray,
    child_mask: np.ndarray,
    node_mask: np.ndarray,
    latent_dim: int,
) -> np.ndarray:
    """Numpy twin of :class:`repro.nn.attention.NodeAwareAttention`."""
    batch, n, _ = hidden.shape
    if child_mask.shape != (batch, n, n):
        raise ShapeError(f"child_mask shape {child_mask.shape} != {(batch, n, n)}")
    queries = hidden @ w_query
    keys = hidden @ w_key
    scores = queries @ keys.transpose(0, 2, 1)
    scores = scores * (1.0 / np.sqrt(latent_dim))
    bias = np.where(child_mask, 0.0, _NEG_INF)
    attn = _softmax(scores + bias, axis=-1)
    has_children = child_mask.any(axis=-1, keepdims=True).astype(np.float64)
    attn = attn * has_children
    context = attn @ hidden + hidden * (1.0 - has_children)
    return masked_mean_forward(context, node_mask)


def resource_attention_forward(
    hidden: np.ndarray,
    resources: np.ndarray,
    w_resource: np.ndarray,
    w_key: np.ndarray,
    node_mask: np.ndarray,
    latent_dim: int,
) -> np.ndarray:
    """Numpy twin of :class:`repro.nn.attention.ResourceAwareAttention`."""
    if resources.shape[-1] != w_resource.shape[0]:
        raise ShapeError(
            f"expected resource dim {w_resource.shape[0]}, got {resources.shape[-1]}")
    query = resources @ w_resource                      # (batch, K)
    keys = hidden @ w_key                               # (batch, n, K)
    scores = (keys @ query[:, :, None]).squeeze(2)      # (batch, n)
    scores = scores * (1.0 / np.sqrt(latent_dim))
    bias = np.where(node_mask, 0.0, _NEG_INF)
    attn = _softmax(scores + bias, axis=-1)
    return (hidden * attn[:, :, None]).sum(axis=1)


def masked_mean_forward(x: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Numpy twin of :func:`repro.nn.functional.masked_mean`."""
    weights = mask.astype(np.float64)
    denom = np.maximum(weights.sum(axis=1, keepdims=True), 1.0)
    return (x * weights[:, :, None]).sum(axis=1) * (1.0 / denom)


def dense_forward(dense: Sequential, x: np.ndarray) -> np.ndarray:
    """Eval-mode forward through a Linear/ReLU/Dropout stack, graph-free."""
    for layer in dense:
        if isinstance(layer, Linear):
            x = x @ layer.weight.data
            if layer.bias is not None:
                x = x + layer.bias.data
        elif isinstance(layer, ReLU):
            x = x * (x > 0)
        elif isinstance(layer, Dropout):
            pass  # identity at inference
        else:
            raise ShapeError(
                f"no graph-free kernel for dense layer {type(layer).__name__}")
    return x


def conv1d_forward(x: np.ndarray, weight: np.ndarray, bias: np.ndarray,
                   kernel_size: int) -> np.ndarray:
    """Numpy twin of :class:`repro.nn.layers.Conv1d` (im2col, stride 1)."""
    batch, seq, channels = x.shape
    if seq < kernel_size:
        raise ShapeError(f"sequence length {seq} shorter than kernel {kernel_size}")
    seq_out = seq - kernel_size + 1
    cols = np.empty((batch, seq_out, kernel_size * channels))
    for t in range(seq_out):
        cols[:, t, :] = x[:, t : t + kernel_size, :].reshape(batch, kernel_size * channels)
    return cols @ weight + bias


def raal_forward_inference(model, batch) -> np.ndarray:
    """Graph-free eval-mode forward of a RAAL-family model.

    Numerically equivalent (≤ 1e-8) to ``model(batch)`` in eval mode,
    but builds no autograd graph and fuses the LSTM input projections.

    Parameters
    ----------
    model:
        A :class:`repro.core.raal.RAAL` instance (any ablation variant).
    batch:
        A :class:`repro.core.raal.RAALBatch`.

    Returns
    -------
    np.ndarray
        Predicted (log-)costs, shape ``(batch,)``.
    """
    config = model.config
    node_features = np.asarray(batch.node_features, dtype=np.float64)
    if node_features.shape[2] != config.node_dim:
        raise ShapeError(
            f"batch node_dim {node_features.shape[2]} != "
            f"model node_dim {config.node_dim}")

    emb = node_features @ model.embedding.weight.data
    if model.embedding.bias is not None:
        emb = emb + model.embedding.bias.data
    emb = np.tanh(emb)

    if model.plan_feature is not None:
        cell = model.plan_feature.cell
        hidden = fused_lstm_forward(
            emb, cell.w_x.data, cell.w_h.data, cell.bias.data,
            mask=batch.node_mask)
    else:
        pad_len = config.cnn_kernel - 1
        if pad_len:
            batch_size, _, dim = emb.shape
            emb = np.concatenate([np.zeros((batch_size, pad_len, dim)), emb], axis=1)
        out = conv1d_forward(emb, model.cnn.weight.data, model.cnn.bias.data,
                             config.cnn_kernel)
        hidden = out * (out > 0)

    if model.node_attention is not None:
        plan_vec = node_attention_forward(
            hidden, model.node_attention.w_query.data,
            model.node_attention.w_key.data,
            batch.child_mask, batch.node_mask, config.latent_dim)
    else:
        plan_vec = masked_mean_forward(hidden, batch.node_mask)

    parts = [plan_vec]
    if model.resource_attention is not None:
        resources = np.asarray(batch.resources, dtype=np.float64)
        parts.append(resource_attention_forward(
            hidden, resources, model.resource_attention.w_resource.data,
            model.resource_attention.w_key.data,
            batch.node_mask, config.latent_dim))
        parts.append(resources)
    parts.append(np.asarray(batch.extras, dtype=np.float64))
    joined = np.concatenate(parts, axis=1)
    return dense_forward(model.dense, joined).squeeze(-1)
