"""Graph-free inference kernels for the RAAL model family.

The autograd :class:`~repro.nn.tensor.Tensor` pays for every operation
twice at inference time: it allocates a Python object per intermediate
and wires up a backward closure that is never called. The functions
here re-implement the forward pass of each RAAL building block on raw
numpy arrays — no graph, no Tensor wrappers — using the *same*
formulas and operation order as the autograd layers, so results agree
to float-rounding (≤ 1e-8) with the training path.

The LSTM forward is additionally *fused*: the input projections of all
timesteps are computed in a single ``(B·T, D) @ (D, 4H)`` GEMM up
front, so the per-timestep loop only carries the (irreducibly
sequential) recurrent ``h @ W_h`` product.

Every kernel is *dtype-generic*: arithmetic runs in the dtype of its
inputs, so the same code serves the float64 tier (bit-identical to the
pre-precision path), the float32 tier, and the int8 tier (which
executes in float32 over dequantized weights — see
:mod:`repro.nn.precision`). Scratch allocations, mask floats, and the
masked-softmax logit floor all follow the execution dtype.

The forward is split into a *plan-side* stage (embedding → LSTM/CNN →
node-aware attention; depends only on the plan) and a *resource-side*
stage (resource-aware attention → dense head; depends on the resource
profile too). :func:`raal_forward_inference` runs both for one batch of
(plan, resources) pairs; :func:`raal_grid_inference` exploits the split
for grid workloads (``plans × profiles``), computing the plan-side
stage once per plan instead of once per pair and batching the entire
resource side into a handful of GEMMs.

Entry point: :func:`raal_forward_inference`, also exposed as
``RAAL.forward_inference``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn.layers import Dropout, Linear, ReLU, Sequential
from repro.nn.precision import (
    SOFTMAX_FLOORS,
    InferenceWeights,
    inference_weights,
)

__all__ = [
    "fused_lstm_forward",
    "node_attention_forward",
    "resource_attention_forward",
    "masked_mean_forward",
    "dense_forward",
    "dense_forward_ops",
    "conv1d_forward",
    "plan_side_forward",
    "resource_side_forward",
    "raal_forward_inference",
    "raal_grid_inference",
]

_NEG_INF = -1e9


def _sigmoid(x: np.ndarray) -> np.ndarray:
    # Same clipping as Tensor.sigmoid so the two paths agree bitwise on
    # saturated gates.
    x = np.clip(x, -60.0, 60.0)
    return 1.0 / (1.0 + np.exp(-x))


def _softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    # Mask bias pushes entries to ~-1e9; exp() of those underflows
    # through libm's slow denormal path, and anything closer to the
    # underflow edge turns into denormals after the division below,
    # which poisons every downstream multiply. The floor is dtype-aware
    # (float32 underflows at exp(-87.3), float64 at exp(-745)): each
    # tier's floor keeps exp fast and every derived value in the normal
    # range while perturbing masked weights by < 1e-26.
    floor = SOFTMAX_FLOORS.get(shifted.dtype, -200.0)
    np.clip(shifted, floor, None, out=shifted)
    np.exp(shifted, out=shifted)
    shifted /= shifted.sum(axis=axis, keepdims=True)
    return shifted


def _mask_bias(mask: np.ndarray, dtype) -> np.ndarray:
    """0 where ``mask``, a large negative logit elsewhere, in ``dtype``."""
    return np.where(mask, 0.0, _NEG_INF).astype(dtype, copy=False)


def fused_lstm_forward(
    x: np.ndarray,
    w_x: np.ndarray,
    w_h: np.ndarray,
    bias: np.ndarray,
    mask: np.ndarray | None = None,
) -> np.ndarray:
    """All hidden states of a unidirectional LSTM, graph-free.

    Parameters
    ----------
    x:
        Inputs ``(batch, seq, input_size)``.
    w_x / w_h / bias:
        Fused gate parameters, shaped ``(input, 4H)`` / ``(H, 4H)`` /
        ``(4H,)`` with gate order i, f, g, o (as in
        :class:`repro.nn.rnn.LSTMCell`).
    mask:
        Optional boolean ``(batch, seq)``; the state freezes on padded
        (False) steps, matching :class:`repro.nn.rnn.LSTM`.

    Returns
    -------
    np.ndarray
        Hidden states ``(batch, seq, H)``.
    """
    # Single implementation with the training fast path: the cached
    # time-major kernel is faster than a per-gate loop even counting the
    # activation slabs it records (lazy import: training imports from
    # this module). Arithmetic runs in the dtype of ``x``/``w_x``.
    from repro.nn.training import fused_lstm_forward_cached

    outputs, _ = fused_lstm_forward_cached(x, w_x, w_h, bias, mask=mask)
    return outputs


def node_attention_forward(
    hidden: np.ndarray,
    w_query: np.ndarray,
    w_key: np.ndarray,
    child_mask: np.ndarray,
    node_mask: np.ndarray,
    latent_dim: int,
) -> np.ndarray:
    """Numpy twin of :class:`repro.nn.attention.NodeAwareAttention`."""
    batch, n, _ = hidden.shape
    if child_mask.shape != (batch, n, n):
        raise ShapeError(f"child_mask shape {child_mask.shape} != {(batch, n, n)}")
    queries = hidden @ w_query
    keys = hidden @ w_key
    scores = queries @ keys.transpose(0, 2, 1)
    # float(sqrt): a Python-float scale keeps float32 arrays float32
    # under NEP 50 (a numpy float64 scalar would silently upcast).
    scores = scores * (1.0 / float(np.sqrt(latent_dim)))
    bias = _mask_bias(child_mask, scores.dtype)
    attn = _softmax(scores + bias, axis=-1)
    has_children = child_mask.any(axis=-1, keepdims=True).astype(hidden.dtype)
    attn = attn * has_children
    context = attn @ hidden + hidden * (1.0 - has_children)
    return masked_mean_forward(context, node_mask)


def resource_attention_forward(
    hidden: np.ndarray,
    resources: np.ndarray,
    w_resource: np.ndarray,
    w_key: np.ndarray,
    node_mask: np.ndarray,
    latent_dim: int,
) -> np.ndarray:
    """Numpy twin of :class:`repro.nn.attention.ResourceAwareAttention`."""
    if resources.shape[-1] != w_resource.shape[0]:
        raise ShapeError(
            f"expected resource dim {w_resource.shape[0]}, got {resources.shape[-1]}")
    query = resources @ w_resource                      # (batch, K)
    keys = hidden @ w_key                               # (batch, n, K)
    scores = (keys @ query[:, :, None]).squeeze(2)      # (batch, n)
    # float(sqrt): a Python-float scale keeps float32 arrays float32
    # under NEP 50 (a numpy float64 scalar would silently upcast).
    scores = scores * (1.0 / float(np.sqrt(latent_dim)))
    bias = _mask_bias(node_mask, scores.dtype)
    attn = _softmax(scores + bias, axis=-1)
    return (hidden * attn[:, :, None]).sum(axis=1)


def masked_mean_forward(x: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Numpy twin of :func:`repro.nn.functional.masked_mean`."""
    weights = mask.astype(x.dtype)
    denom = np.maximum(weights.sum(axis=1, keepdims=True), 1.0)
    return (x * weights[:, :, None]).sum(axis=1) * (1.0 / denom)


def dense_forward(dense: Sequential, x: np.ndarray) -> np.ndarray:
    """Eval-mode forward through a Linear/ReLU/Dropout stack, graph-free."""
    for layer in dense:
        if isinstance(layer, Linear):
            x = x @ layer.weight.data
            if layer.bias is not None:
                x = x + layer.bias.data
        elif isinstance(layer, ReLU):
            x = x * (x > 0)
        elif isinstance(layer, Dropout):
            pass  # identity at inference
        else:
            raise ShapeError(
                f"no graph-free kernel for dense layer {type(layer).__name__}")
    return x


def dense_forward_ops(ops: list[tuple], x: np.ndarray) -> np.ndarray:
    """Forward through a precompiled dense op list (see InferenceWeights).

    Same arithmetic and operation order as :func:`dense_forward`, but
    over ``("linear", w, b)`` / ``("relu",)`` tuples instead of Module
    objects — no isinstance dispatch on the hot path, and the weights
    are already in the execution dtype.
    """
    for op in ops:
        if op[0] == "linear":
            x = x @ op[1]
            if op[2] is not None:
                x = x + op[2]
        else:  # relu
            x = x * (x > 0)
    return x


def conv1d_forward(x: np.ndarray, weight: np.ndarray, bias: np.ndarray,
                   kernel_size: int) -> np.ndarray:
    """Numpy twin of :class:`repro.nn.layers.Conv1d` (im2col, stride 1)."""
    batch, seq, channels = x.shape
    if seq < kernel_size:
        raise ShapeError(f"sequence length {seq} shorter than kernel {kernel_size}")
    seq_out = seq - kernel_size + 1
    cols = np.empty((batch, seq_out, kernel_size * channels), dtype=x.dtype)
    for t in range(seq_out):
        cols[:, t, :] = x[:, t : t + kernel_size, :].reshape(batch, kernel_size * channels)
    return cols @ weight + bias


# ---------------------------------------------------------------------------
# Staged forward
# ---------------------------------------------------------------------------

def plan_side_forward(
    weights: InferenceWeights,
    node_features: np.ndarray,
    child_mask: np.ndarray,
    node_mask: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Everything that depends only on the plan: ``(hidden, plan_vec)``.

    ``node_features`` must already be in the execution dtype. Returns
    the feature-layer hidden states ``(B, N, H)`` and the node-attention
    (or masked-mean) pooled plan vector ``(B, H)``.
    """
    emb = node_features @ weights.embedding_w
    if weights.embedding_b is not None:
        emb = emb + weights.embedding_b
    emb = np.tanh(emb)

    if weights.lstm is not None:
        w_x, w_h, bias = weights.lstm
        hidden = fused_lstm_forward(emb, w_x, w_h, bias, mask=node_mask)
    else:
        cnn_w, cnn_b, kernel = weights.cnn
        pad_len = kernel - 1
        if pad_len:
            batch_size, _, dim = emb.shape
            emb = np.concatenate(
                [np.zeros((batch_size, pad_len, dim), dtype=emb.dtype), emb],
                axis=1)
        out = conv1d_forward(emb, cnn_w, cnn_b, kernel)
        hidden = out * (out > 0)

    if weights.node_attention is not None:
        w_query, w_key = weights.node_attention
        plan_vec = node_attention_forward(
            hidden, w_query, w_key, child_mask, node_mask, weights.latent_dim)
    else:
        plan_vec = masked_mean_forward(hidden, node_mask)
    return hidden, plan_vec


def resource_side_forward(
    weights: InferenceWeights,
    hidden: np.ndarray,
    plan_vec: np.ndarray,
    resources: np.ndarray | None,
    extras: np.ndarray,
    node_mask: np.ndarray,
) -> np.ndarray:
    """Resource attention + dense head for one batch of pairs: ``(B,)``."""
    parts = [plan_vec]
    if weights.resource_attention is not None:
        w_resource, w_key = weights.resource_attention
        parts.append(resource_attention_forward(
            hidden, resources, w_resource, w_key, node_mask,
            weights.latent_dim))
        parts.append(resources)
    parts.append(extras)
    joined = np.concatenate(parts, axis=1)
    return dense_forward_ops(weights.dense, joined).squeeze(-1)


def raal_forward_inference(model, batch,
                           weights: InferenceWeights | None = None) -> np.ndarray:
    """Graph-free eval-mode forward of a RAAL-family model.

    Numerically equivalent (≤ 1e-8) to ``model(batch)`` in eval mode,
    but builds no autograd graph and fuses the LSTM input projections.
    With the default float64 weights the result is bit-identical to the
    pre-precision fast path.

    Parameters
    ----------
    model:
        A :class:`repro.core.raal.RAAL` instance (any ablation variant).
    batch:
        A :class:`repro.core.raal.RAALBatch`.
    weights:
        Optional precision-tier weight bundle
        (:func:`repro.nn.precision.inference_weights`); defaults to a
        zero-copy float64 view of the model's parameters.

    Returns
    -------
    np.ndarray
        Predicted (log-)costs, shape ``(batch,)``.
    """
    if weights is None:
        weights = inference_weights(model, "f64")
    node_features = np.asarray(batch.node_features, dtype=weights.dtype)
    if node_features.shape[2] != weights.node_dim:
        raise ShapeError(
            f"batch node_dim {node_features.shape[2]} != "
            f"model node_dim {weights.node_dim}")
    hidden, plan_vec = plan_side_forward(
        weights, node_features, batch.child_mask, batch.node_mask)
    resources = None
    if weights.resource_attention is not None:
        resources = np.asarray(batch.resources, dtype=weights.dtype)
    extras = np.asarray(batch.extras, dtype=weights.dtype)
    return resource_side_forward(
        weights, hidden, plan_vec, resources, extras, batch.node_mask)


def raal_grid_inference(
    weights: InferenceWeights,
    node_features: np.ndarray,
    child_mask: np.ndarray,
    node_mask: np.ndarray,
    extras: np.ndarray,
    profile_features: np.ndarray,
) -> np.ndarray:
    """Factored grid forward: every plan under every resource profile.

    The grid workload (plan selection, resource recommendation) scores
    ``B`` plans × ``P`` profiles. The pairwise path re-runs the whole
    network per pair — including the LSTM and node attention, which do
    not depend on the profile at all. This kernel runs the plan-side
    stage once per plan, then evaluates the entire resource side for
    all ``B × P`` combinations in a handful of flat GEMMs:

    * attention keys ``(B·N, H) @ (H, K)`` — once per plan;
    * attention scores ``(B·N, K) @ (K, P)`` — all pairs at once;
    * one masked softmax over ``(B, N, P)``;
    * context ``(B, P, N) @ (B, N, H)`` batched matmul;
    * one dense-head GEMM over all ``B·P`` joined rows.

    Numerically equivalent to the pairwise path to float-rounding (the
    GEMM groupings differ, so results are *not* bit-identical — see the
    precision equivalence tests for the per-tier tolerances).

    Parameters
    ----------
    weights:
        Precision-tier weight bundle.
    node_features / child_mask / node_mask / extras:
        One collated batch of ``B`` **distinct plans** (not pairs):
        ``(B, N, D)``, ``(B, N, N)``, ``(B, N)``, ``(B, E)``.
    profile_features:
        ``(P, R)`` normalized resource vectors.

    Returns
    -------
    np.ndarray
        Log-cost matrix ``(P, B)`` — profile-major, matching
        ``CostPredictor.predict_grid``'s output layout.
    """
    node_features = np.asarray(node_features, dtype=weights.dtype)
    extras = np.asarray(extras, dtype=weights.dtype)
    profiles = np.asarray(profile_features, dtype=weights.dtype)
    n_plans = node_features.shape[0]
    n_profiles = profiles.shape[0]
    hidden, plan_vec = plan_side_forward(
        weights, node_features, child_mask, node_mask)
    hs = hidden.shape[-1]

    if weights.resource_attention is None:
        # Resource-blind ablation: every profile sees the same answer.
        joined = np.concatenate([plan_vec, extras], axis=1)
        row = dense_forward_ops(weights.dense, joined).squeeze(-1)  # (B,)
        return np.broadcast_to(row, (n_profiles, n_plans)).copy()

    w_resource, w_key = weights.resource_attention
    batch, n, _ = hidden.shape
    queries = profiles @ w_resource                                  # (P, K)
    keys = hidden.reshape(batch * n, hs) @ w_key                     # (B·N, K)
    scores = (keys @ queries.T).reshape(batch, n, n_profiles)        # (B, N, P)
    scores *= 1.0 / float(np.sqrt(weights.latent_dim))
    scores += _mask_bias(node_mask, scores.dtype)[:, :, None]
    attn = _softmax(scores, axis=1)                                  # (B, N, P)
    # res_vec[b, p, :] = sum_n hidden[b, n, :] * attn[b, n, p]
    res_vec = np.matmul(attn.transpose(0, 2, 1), hidden)             # (B, P, H)

    joined_dim = 2 * hs + profiles.shape[1] + extras.shape[1]
    joined = np.empty((n_profiles, n_plans, joined_dim), dtype=weights.dtype)
    joined[:, :, :hs] = plan_vec
    joined[:, :, hs : 2 * hs] = res_vec.transpose(1, 0, 2)
    off = 2 * hs
    joined[:, :, off : off + profiles.shape[1]] = profiles[:, None, :]
    joined[:, :, off + profiles.shape[1] :] = extras
    out = dense_forward_ops(
        weights.dense, joined.reshape(n_profiles * n_plans, joined_dim))
    return out.reshape(n_profiles, n_plans)
