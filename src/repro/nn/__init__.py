"""A from-scratch numpy deep-learning framework.

This subpackage replaces PyTorch for the reproduction: reverse-mode
autograd (:mod:`repro.nn.tensor`), layers (:mod:`repro.nn.layers`),
the LSTM (:mod:`repro.nn.rnn`), the paper's two attention mechanisms
(:mod:`repro.nn.attention`), losses, and optimizers.
"""

from repro.nn.arena import ScratchArena, thread_local_arena
from repro.nn.attention import NodeAwareAttention, ResourceAwareAttention
from repro.nn.inference import (
    dense_forward,
    fused_lstm_forward,
    masked_mean_forward,
    node_attention_forward,
    raal_forward_inference,
    raal_grid_inference,
    resource_attention_forward,
)
from repro.nn.layers import (
    Conv1d,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.loss import huber_loss, mae_loss, mse_loss, q_error
from repro.nn.precision import (
    PRECISIONS,
    InferenceWeights,
    inference_weights,
    invalidate_inference_cache,
    resolve_dtype,
)
from repro.nn.quantize import QuantizedMatrix, quantize_per_channel
from repro.nn.optim import SGD, Adam, Optimizer, StepLR, clip_grad_norm
from repro.nn.rnn import LSTM, LSTMCell
from repro.nn.serialization import load_model, save_model
from repro.nn.tensor import Tensor, is_grad_enabled, no_grad
from repro.nn.training import (
    fused_lstm_backward,
    fused_lstm_forward_cached,
    node_attention_backward,
    raal_forward_backward,
    resource_attention_backward,
)

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "Module",
    "Linear",
    "Sequential",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Dropout",
    "Embedding",
    "LayerNorm",
    "Conv1d",
    "LSTM",
    "LSTMCell",
    "NodeAwareAttention",
    "ResourceAwareAttention",
    "mse_loss",
    "mae_loss",
    "huber_loss",
    "q_error",
    "Optimizer",
    "SGD",
    "Adam",
    "StepLR",
    "clip_grad_norm",
    "save_model",
    "load_model",
    "raal_forward_inference",
    "raal_grid_inference",
    "fused_lstm_forward",
    "node_attention_forward",
    "resource_attention_forward",
    "masked_mean_forward",
    "dense_forward",
    "ScratchArena",
    "thread_local_arena",
    "InferenceWeights",
    "inference_weights",
    "invalidate_inference_cache",
    "PRECISIONS",
    "resolve_dtype",
    "quantize_per_channel",
    "QuantizedMatrix",
    "raal_forward_backward",
    "fused_lstm_forward_cached",
    "fused_lstm_backward",
    "node_attention_backward",
    "resource_attention_backward",
]
