"""First-order optimizers and learning-rate schedules."""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import TrainingError
from repro.nn.tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam", "StepLR", "clip_grad_norm"]


class Optimizer:
    """Base class holding the parameter list and zero-grad helper."""

    def __init__(self, parameters: Sequence[Tensor], lr: float) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise TrainingError("optimizer created with no parameters")
        if lr <= 0:
            raise TrainingError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update to all parameters using their gradients."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: Sequence[Tensor], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """One SGD update (with momentum/weight decay when configured)."""
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            p.data -= self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba) with bias correction."""

    def __init__(self, parameters: Sequence[Tensor], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        # Moments live in one flat slab each, updated with a handful of
        # full-width ufunc passes per step instead of ~11 tiny ops per
        # parameter; the per-parameter views below alias the slabs so
        # the sparse-gradient fallback shares the same state.
        sizes = [p.data.size for p in self.parameters]
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        self._spans = [slice(int(a), int(b))
                       for a, b in zip(offsets[:-1], offsets[1:])]
        total = int(offsets[-1])
        self._mflat = np.zeros(total)
        self._vflat = np.zeros(total)
        self._gflat = np.empty(total)
        self._bflat = np.empty(total)
        self._m = [self._mflat[s].reshape(p.data.shape)
                   for p, s in zip(self.parameters, self._spans)]
        self._v = [self._vflat[s].reshape(p.data.shape)
                   for p, s in zip(self.parameters, self._spans)]
        self._buf = [self._bflat[s].reshape(p.data.shape)
                     for p, s in zip(self.parameters, self._spans)]
        self._t = 0

    def step(self) -> None:
        """One bias-corrected Adam update (allocation-free)."""
        self._t += 1
        bc1 = 1.0 - self.beta1 ** self._t
        bc2 = 1.0 - self.beta2 ** self._t
        if any(p.grad is None for p in self.parameters):
            self._step_unpacked(bc1, bc2)
            return
        g = self._gflat
        for p, s in zip(self.parameters, self._spans):
            g[s] = p.grad.reshape(-1)
            if self.weight_decay:
                g[s] += self.weight_decay * p.data.reshape(-1)
        m, v, buf = self._mflat, self._vflat, self._bflat
        m *= self.beta1
        np.multiply(g, 1.0 - self.beta1, out=buf)
        m += buf
        v *= self.beta2
        np.multiply(g, g, out=buf)
        buf *= 1.0 - self.beta2
        v += buf
        # p -= lr * (m / bc1) / (sqrt(v / bc2) + eps)
        np.divide(v, bc2, out=buf)
        np.sqrt(buf, out=buf)
        buf += self.eps
        np.divide(m, buf, out=buf)
        buf *= self.lr / bc1
        for p, s in zip(self.parameters, self._spans):
            p.data -= buf[s].reshape(p.data.shape)

    def _step_unpacked(self, bc1: float, bc2: float) -> None:
        """Per-parameter update, skipping parameters with no gradient."""
        for p, m, v, buf in zip(self.parameters, self._m, self._v, self._buf):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            np.multiply(grad, 1.0 - self.beta1, out=buf)
            m += buf
            v *= self.beta2
            np.multiply(grad, grad, out=buf)
            buf *= 1.0 - self.beta2
            v += buf
            np.divide(v, bc2, out=buf)
            np.sqrt(buf, out=buf)
            buf += self.eps
            np.divide(m, buf, out=buf)
            buf *= self.lr / bc1
            p.data -= buf


class StepLR:
    """Decay an optimizer's learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        if step_size <= 0:
            raise TrainingError(f"step_size must be positive, got {step_size}")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._base_lr = optimizer.lr
        self._epoch = 0

    def step(self) -> None:
        """Advance one epoch and update the optimizer's learning rate."""
        self._epoch += 1
        decays = self._epoch // self.step_size
        self.optimizer.lr = self._base_lr * (self.gamma ** decays)


def clip_grad_norm(parameters: Sequence[Tensor], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm, which trainers can log to detect
    divergence.
    """
    total = 0.0
    params = [p for p in parameters if p.grad is not None]
    for p in params:
        flat = p.grad.ravel()
        total += float(flat @ flat)
    norm = math.sqrt(total)
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for p in params:
            p.grad *= scale
    return norm
