"""Save/load model parameters to ``.npz`` files.

The format is a plain numpy archive whose keys are the parameter names
produced by :meth:`repro.nn.layers.Module.named_parameters`, which makes
checkpoints portable and human-inspectable.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import TrainingError
from repro.nn.layers import Module

__all__ = ["save_model", "load_model"]


def save_model(model: Module, path: str | os.PathLike) -> None:
    """Write ``model``'s parameters to ``path`` as an ``.npz`` archive."""
    state = model.state_dict()
    if not state:
        raise TrainingError("model has no parameters to save")
    np.savez(path, **state)


def load_model(model: Module, path: str | os.PathLike) -> Module:
    """Load parameters saved by :func:`save_model` into ``model`` in place."""
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    model.load_state_dict(state)
    return model
