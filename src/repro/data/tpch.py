"""A synthetic stand-in for the TPC-H benchmark database.

The paper uses TPC-H at scale factor 100 on Ali Cloud. We reproduce the
eight-table TPC-H schema with a generator whose row-count *ratios*
match the spec (lineitem ≈ 4× orders ≈ 6× customer, etc.). ``scale``
multiplies all row counts; ``scale=1.0`` is laptop-sized.
"""

from __future__ import annotations

from repro.data.catalog import Catalog, build_catalog
from repro.data.generator import (
    CategoricalString,
    DerivedInt,
    ForeignKeyRef,
    NormalFloat,
    SerialKey,
    TableGenerator,
    UniformInt,
)
from repro.data.schema import Column, DataType, ForeignKey, TableSchema

__all__ = ["tpch_schemas", "tpch_generators", "build_tpch_catalog", "TPCH_BASE_ROWS"]

_I = DataType.INT
_F = DataType.FLOAT
_S = DataType.STRING

# TPC-H ratios per the spec: per SF, supplier=10k, part=200k, customer=150k,
# orders=1.5M, lineitem≈6M, partsupp=800k. Scaled down by 100x here.
TPCH_BASE_ROWS = {
    "region": 5,
    "nation": 25,
    "supplier": 100,
    "part": 2000,
    "partsupp": 8000,
    "customer": 1500,
    "orders": 15000,
    "lineitem": 60000,
}

_REGIONS = ["africa", "america", "asia", "europe", "middle east"]
_NATIONS = ["algeria", "argentina", "brazil", "canada", "egypt", "ethiopia",
            "france", "germany", "india", "indonesia", "iran", "iraq", "japan",
            "jordan", "kenya", "morocco", "mozambique", "peru", "china",
            "romania", "saudi arabia", "vietnam", "russia", "uk", "us"]
_SEGMENTS = ["automobile", "building", "furniture", "machinery", "household"]
_PRIORITIES = ["1-urgent", "2-high", "3-medium", "4-not specified", "5-low"]
_SHIPMODES = ["air", "fob", "mail", "rail", "reg air", "ship", "truck"]
_BRANDS = [f"brand#{i}" for i in range(1, 26)]
_TYPES = ["economy anodized", "standard brushed", "promo burnished",
          "large polished", "medium plated", "small anodized"]
_STATUSES = ["f", "o", "p"]
_RETURN_FLAGS = ["a", "n", "r"]


def tpch_schemas() -> list[TableSchema]:
    """The eight TPC-H relations (simplified column sets)."""
    return [
        TableSchema("region", [Column("r_regionkey", _I), Column("r_name", _S)],
                    primary_key="r_regionkey"),
        TableSchema(
            "nation",
            [Column("n_nationkey", _I), Column("n_name", _S), Column("n_regionkey", _I)],
            primary_key="n_nationkey",
            foreign_keys=[ForeignKey("n_regionkey", "region", "r_regionkey")],
        ),
        TableSchema(
            "supplier",
            [Column("s_suppkey", _I), Column("s_name", _S), Column("s_nationkey", _I),
             Column("s_acctbal", _F)],
            primary_key="s_suppkey",
            foreign_keys=[ForeignKey("s_nationkey", "nation", "n_nationkey")],
        ),
        TableSchema(
            "part",
            [Column("p_partkey", _I), Column("p_name", _S), Column("p_brand", _S),
             Column("p_type", _S), Column("p_size", _I), Column("p_retailprice", _F)],
            primary_key="p_partkey",
        ),
        TableSchema(
            "partsupp",
            [Column("ps_partkey", _I), Column("ps_suppkey", _I),
             Column("ps_availqty", _I), Column("ps_supplycost", _F)],
            foreign_keys=[ForeignKey("ps_partkey", "part", "p_partkey"),
                          ForeignKey("ps_suppkey", "supplier", "s_suppkey")],
        ),
        TableSchema(
            "customer",
            [Column("c_custkey", _I), Column("c_name", _S), Column("c_nationkey", _I),
             Column("c_mktsegment", _S), Column("c_acctbal", _F)],
            primary_key="c_custkey",
            foreign_keys=[ForeignKey("c_nationkey", "nation", "n_nationkey")],
        ),
        TableSchema(
            "orders",
            [Column("o_orderkey", _I), Column("o_custkey", _I), Column("o_orderstatus", _S),
             Column("o_totalprice", _F), Column("o_orderdate", _I),
             Column("o_orderpriority", _S), Column("o_shippriority", _I)],
            primary_key="o_orderkey",
            foreign_keys=[ForeignKey("o_custkey", "customer", "c_custkey")],
        ),
        TableSchema(
            "lineitem",
            [Column("l_orderkey", _I), Column("l_partkey", _I), Column("l_suppkey", _I),
             Column("l_linenumber", _I), Column("l_quantity", _I),
             Column("l_extendedprice", _F), Column("l_discount", _F), Column("l_tax", _F),
             Column("l_returnflag", _S), Column("l_linestatus", _S),
             Column("l_shipdate", _I), Column("l_shipmode", _S)],
            foreign_keys=[ForeignKey("l_orderkey", "orders", "o_orderkey"),
                          ForeignKey("l_partkey", "part", "p_partkey"),
                          ForeignKey("l_suppkey", "supplier", "s_suppkey")],
        ),
    ]


def _rows(table: str, scale: float) -> int:
    return max(int(TPCH_BASE_ROWS[table] * scale), 2)


def tpch_generators(scale: float = 1.0) -> list[TableGenerator]:
    """Table generators in dependency order."""
    return [
        TableGenerator("region", _rows("region", scale), {
            "r_regionkey": SerialKey(start=0),
            "r_name": CategoricalString(_REGIONS),
        }),
        TableGenerator("nation", _rows("nation", scale), {
            "n_nationkey": SerialKey(start=0),
            "n_name": CategoricalString(_NATIONS),
            "n_regionkey": ForeignKeyRef("region", "r_regionkey", skew=0.0),
        }),
        TableGenerator("supplier", _rows("supplier", scale), {
            "s_suppkey": SerialKey(),
            "s_name": CategoricalString([f"supplier_{i}" for i in range(100)]),
            "s_nationkey": ForeignKeyRef("nation", "n_nationkey", skew=0.0),
            "s_acctbal": NormalFloat(4500.0, 3000.0, low=-999.0, high=9999.0),
        }),
        TableGenerator("part", _rows("part", scale), {
            "p_partkey": SerialKey(),
            "p_name": CategoricalString([f"part_{i}" for i in range(400)]),
            "p_brand": CategoricalString(_BRANDS),
            "p_type": CategoricalString(_TYPES, skew=0.4),
            "p_size": UniformInt(1, 50),
            "p_retailprice": NormalFloat(1200.0, 300.0, low=900.0, high=2100.0),
        }),
        TableGenerator("partsupp", _rows("partsupp", scale), {
            "ps_partkey": ForeignKeyRef("part", "p_partkey", skew=0.0),
            "ps_suppkey": ForeignKeyRef("supplier", "s_suppkey", skew=0.0),
            "ps_availqty": UniformInt(1, 9999),
            "ps_supplycost": NormalFloat(500.0, 280.0, low=1.0, high=1000.0),
        }),
        TableGenerator("customer", _rows("customer", scale), {
            "c_custkey": SerialKey(),
            "c_name": CategoricalString([f"customer_{i}" for i in range(300)]),
            "c_nationkey": ForeignKeyRef("nation", "n_nationkey", skew=0.3),
            "c_mktsegment": CategoricalString(_SEGMENTS),
            "c_acctbal": NormalFloat(4500.0, 3200.0, low=-999.0, high=9999.0),
        }),
        TableGenerator("orders", _rows("orders", scale), {
            "o_orderkey": SerialKey(),
            "o_custkey": ForeignKeyRef("customer", "c_custkey", skew=0.5),
            "o_orderstatus": CategoricalString(_STATUSES, skew=0.8),
            "o_totalprice": NormalFloat(150000.0, 80000.0, low=900.0, high=550000.0),
            # Order dates span 1992-1998 as in the spec (encoded as days
            # since 1992-01-01), correlated with the key order.
            "o_orderdate": DerivedInt(
                "o_orderkey",
                transform=lambda k: 2400.0 * (k / max(k.max(), 1.0)),
                noise=200.0, low=0, high=2555,
            ),
            "o_orderpriority": CategoricalString(_PRIORITIES),
            "o_shippriority": UniformInt(0, 1),
        }),
        TableGenerator("lineitem", _rows("lineitem", scale), {
            "l_orderkey": ForeignKeyRef("orders", "o_orderkey", skew=0.2),
            "l_partkey": ForeignKeyRef("part", "p_partkey", skew=0.4),
            "l_suppkey": ForeignKeyRef("supplier", "s_suppkey", skew=0.3),
            "l_linenumber": UniformInt(1, 7),
            "l_quantity": UniformInt(1, 50),
            "l_extendedprice": NormalFloat(36000.0, 20000.0, low=900.0, high=95000.0),
            "l_discount": NormalFloat(0.05, 0.03, low=0.0, high=0.1),
            "l_tax": NormalFloat(0.04, 0.025, low=0.0, high=0.08),
            "l_returnflag": CategoricalString(_RETURN_FLAGS, skew=0.5),
            "l_linestatus": CategoricalString(["f", "o"]),
            "l_shipdate": UniformInt(0, 2555),
            "l_shipmode": CategoricalString(_SHIPMODES),
        }),
    ]


def build_tpch_catalog(scale: float = 0.1, seed: int = 11) -> Catalog:
    """Build the synthetic TPC-H catalog at the given scale."""
    return build_catalog("tpch", tpch_schemas(), tpch_generators(scale), seed=seed)
