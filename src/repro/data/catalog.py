"""The catalog: schemas + generated data + statistics for one database."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.generator import TableGenerator
from repro.data.schema import TableSchema
from repro.data.statistics import TableStatistics, compute_table_statistics
from repro.errors import CatalogError

__all__ = ["TableData", "Catalog", "build_catalog"]


@dataclass
class TableData:
    """Materialized columnar data for one table."""

    schema: TableSchema
    columns: dict[str, np.ndarray]

    @property
    def row_count(self) -> int:
        """Number of rows."""
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    def column(self, name: str) -> np.ndarray:
        """Return one column's array."""
        if name not in self.columns:
            raise CatalogError(f"table {self.schema.name!r} has no column {name!r}")
        return self.columns[name]


class Catalog:
    """Name → (schema, data, statistics) registry for a database.

    The catalog is what the SQL analyzer, the cardinality estimator, the
    execution engine, and the GPSJ baseline all consult.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._tables: dict[str, TableData] = {}
        self._statistics: dict[str, TableStatistics] = {}

    # -- registration ---------------------------------------------------
    def register(self, schema: TableSchema, columns: dict[str, np.ndarray]) -> None:
        """Add a table with its data; statistics are computed eagerly."""
        if schema.name in self._tables:
            raise CatalogError(f"table {schema.name!r} already registered")
        missing = set(schema.column_names) - set(columns)
        if missing:
            raise CatalogError(f"table {schema.name!r} data missing columns {sorted(missing)}")
        self._tables[schema.name] = TableData(schema=schema, columns=columns)
        self._statistics[schema.name] = compute_table_statistics(schema, columns)

    # -- lookup -----------------------------------------------------------
    @property
    def table_names(self) -> list[str]:
        """All registered table names, sorted."""
        return sorted(self._tables)

    def has_table(self, name: str) -> bool:
        """Whether a table with this name exists."""
        return name in self._tables

    def table(self, name: str) -> TableData:
        """Return the data for a table."""
        if name not in self._tables:
            raise CatalogError(f"unknown table {name!r}")
        return self._tables[name]

    def schema(self, name: str) -> TableSchema:
        """Return the schema of a table."""
        return self.table(name).schema

    def statistics(self, name: str) -> TableStatistics:
        """Return the statistics of a table."""
        if name not in self._statistics:
            raise CatalogError(f"no statistics for table {name!r}")
        return self._statistics[name]

    def resolve_column(self, column: str, tables: list[str]) -> str:
        """Find which of ``tables`` owns ``column``; raises if ambiguous."""
        owners = [t for t in tables if self.schema(t).has_column(column)]
        if not owners:
            raise CatalogError(f"column {column!r} not found in tables {tables}")
        if len(owners) > 1:
            raise CatalogError(f"column {column!r} is ambiguous across {owners}")
        return owners[0]

    def total_rows(self) -> int:
        """Sum of row counts across all tables."""
        return sum(t.row_count for t in self._tables.values())


def build_catalog(
    name: str,
    schemas: list[TableSchema],
    generators: list[TableGenerator],
    seed: int = 0,
) -> Catalog:
    """Generate every table (in dependency order) and register it.

    ``generators`` must be ordered so that foreign-key parents precede
    children; the JOB/TPC-H factories in :mod:`repro.data.imdb` and
    :mod:`repro.data.tpch` take care of that.
    """
    by_name = {s.name: s for s in schemas}
    rng = np.random.default_rng(seed)
    catalog = Catalog(name)
    produced: dict[str, dict[str, np.ndarray]] = {}
    for gen in generators:
        if gen.table not in by_name:
            raise CatalogError(f"generator for unknown table {gen.table!r}")
        columns = gen.generate(rng, produced)
        produced[gen.table] = columns
        catalog.register(by_name[gen.table], columns)
    return catalog
