"""Relational schema objects: data types, columns, tables, foreign keys.

These are deliberately lightweight descriptions — actual data lives in
:class:`repro.data.catalog.TableData` as numpy column arrays.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import CatalogError

__all__ = ["DataType", "Column", "ForeignKey", "TableSchema"]


class DataType(enum.Enum):
    """Column data types supported by the engine."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"

    @property
    def is_numeric(self) -> bool:
        """Whether comparison predicates like ``<`` use numeric order."""
        return self in (DataType.INT, DataType.FLOAT)


@dataclass(frozen=True)
class Column:
    """A named, typed column.

    Parameters
    ----------
    name:
        Column name, unique within its table.
    dtype:
        One of :class:`DataType`.
    nullable:
        Whether the generator may emit NULLs (represented as ``nan`` for
        floats, ``-1`` sentinel for ints, ``None`` for strings).
    """

    name: str
    dtype: DataType
    nullable: bool = False

    def __str__(self) -> str:
        return f"{self.name} {self.dtype.value}"


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key edge ``table.column -> ref_table.ref_column``."""

    column: str
    ref_table: str
    ref_column: str


@dataclass
class TableSchema:
    """Schema of one table: columns, primary key, and foreign keys."""

    name: str
    columns: list[Column]
    primary_key: str | None = None
    foreign_keys: list[ForeignKey] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(names) != len(set(names)):
            raise CatalogError(f"duplicate column names in table {self.name!r}")
        if self.primary_key is not None and self.primary_key not in names:
            raise CatalogError(
                f"primary key {self.primary_key!r} is not a column of {self.name!r}"
            )
        for fk in self.foreign_keys:
            if fk.column not in names:
                raise CatalogError(
                    f"foreign key column {fk.column!r} is not a column of {self.name!r}"
                )

    @property
    def column_names(self) -> list[str]:
        """Names of all columns in declaration order."""
        return [c.name for c in self.columns]

    def column(self, name: str) -> Column:
        """Look up a column by name."""
        for col in self.columns:
            if col.name == name:
                return col
        raise CatalogError(f"table {self.name!r} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        """Whether a column with this name exists."""
        return any(c.name == name for c in self.columns)

    def __str__(self) -> str:
        cols = ", ".join(str(c) for c in self.columns)
        return f"{self.name}({cols})"
