"""Synthetic data generation with skew and cross-column correlation.

The paper's datasets (IMDB/JOB and TPC-H) are characterized by zipfian
value skew, foreign-key fan-out skew, and correlated columns — the
properties that make cardinality/cost estimation hard. This module
provides distribution specs that reproduce those properties for
arbitrary schemas.

Numeric columns are always materialized as ``float64`` arrays (ints are
whole-valued floats) so NULLs can be represented uniformly as ``nan``;
string columns are object arrays with ``None`` for NULL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.data.schema import DataType
from repro.errors import CatalogError

__all__ = [
    "ColumnGenerator",
    "SerialKey",
    "UniformInt",
    "ZipfInt",
    "NormalFloat",
    "CategoricalString",
    "ForeignKeyRef",
    "DerivedInt",
    "TableGenerator",
]


class ColumnGenerator:
    """Base class: produces one column of ``n`` values.

    Subclasses implement :meth:`generate`; ``context`` holds previously
    generated columns of the same table (for correlated/derived columns)
    and ``tables`` holds previously generated tables (for foreign keys).
    """

    nullable_fraction: float = 0.0

    def generate(self, n: int, rng: np.random.Generator,
                 context: dict[str, np.ndarray],
                 tables: dict[str, dict[str, np.ndarray]]) -> np.ndarray:
        raise NotImplementedError

    def _apply_nulls(self, values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.nullable_fraction <= 0.0:
            return values
        mask = rng.random(len(values)) < self.nullable_fraction
        if values.dtype == object:
            values = values.copy()
            values[mask] = None
        else:
            values = values.astype(np.float64)
            values[mask] = np.nan
        return values


@dataclass
class SerialKey(ColumnGenerator):
    """Sequential primary key ``start, start+1, ...``."""

    start: int = 1
    nullable_fraction: float = 0.0

    def generate(self, n, rng, context, tables):
        return np.arange(self.start, self.start + n, dtype=np.float64)


@dataclass
class UniformInt(ColumnGenerator):
    """Uniform integers in ``[low, high]`` inclusive."""

    low: int
    high: int
    nullable_fraction: float = 0.0

    def generate(self, n, rng, context, tables):
        vals = rng.integers(self.low, self.high + 1, size=n).astype(np.float64)
        return self._apply_nulls(vals, rng)


@dataclass
class ZipfInt(ColumnGenerator):
    """Zipf-skewed integers over ``[1, n_values]``.

    Value ``k`` has probability proportional to ``1 / k**skew``; this is
    the canonical model of the heavy-tailed attribute skew in IMDB.
    """

    n_values: int
    skew: float = 1.1
    nullable_fraction: float = 0.0

    def generate(self, n, rng, context, tables):
        ranks = np.arange(1, self.n_values + 1, dtype=np.float64)
        probs = ranks ** (-self.skew)
        probs /= probs.sum()
        vals = rng.choice(self.n_values, size=n, p=probs) + 1.0
        return self._apply_nulls(vals.astype(np.float64), rng)


@dataclass
class NormalFloat(ColumnGenerator):
    """Gaussian floats clipped to ``[low, high]``."""

    mean: float
    std: float
    low: float = -np.inf
    high: float = np.inf
    nullable_fraction: float = 0.0

    def generate(self, n, rng, context, tables):
        vals = np.clip(rng.normal(self.mean, self.std, size=n), self.low, self.high)
        return self._apply_nulls(vals, rng)


@dataclass
class CategoricalString(ColumnGenerator):
    """Strings drawn from a finite vocabulary with optional zipf skew."""

    values: list[str]
    skew: float = 0.0
    nullable_fraction: float = 0.0

    def generate(self, n, rng, context, tables):
        if not self.values:
            raise CatalogError("CategoricalString needs at least one value")
        k = len(self.values)
        if self.skew > 0:
            ranks = np.arange(1, k + 1, dtype=np.float64)
            probs = ranks ** (-self.skew)
            probs /= probs.sum()
            idx = rng.choice(k, size=n, p=probs)
        else:
            idx = rng.integers(0, k, size=n)
        vals = np.array([self.values[i] for i in idx], dtype=object)
        return self._apply_nulls(vals, rng)


@dataclass
class ForeignKeyRef(ColumnGenerator):
    """References the primary key of another table with zipf fan-out skew.

    ``skew=0`` gives uniform fan-out; larger values concentrate child
    rows on a few parents (a handful of famous movies own most of the
    ``movie_keyword`` rows, etc.).
    """

    ref_table: str
    ref_column: str
    skew: float = 0.8
    nullable_fraction: float = 0.0

    def generate(self, n, rng, context, tables):
        if self.ref_table not in tables:
            raise CatalogError(
                f"foreign key references table {self.ref_table!r} which has not been generated yet"
            )
        parent = tables[self.ref_table][self.ref_column]
        k = len(parent)
        if k == 0:
            raise CatalogError(f"referenced table {self.ref_table!r} is empty")
        if self.skew > 0:
            ranks = np.arange(1, k + 1, dtype=np.float64)
            probs = ranks ** (-self.skew)
            probs /= probs.sum()
            idx = rng.choice(k, size=n, p=probs)
        else:
            idx = rng.integers(0, k, size=n)
        return self._apply_nulls(parent[idx].astype(np.float64), rng)


@dataclass
class DerivedInt(ColumnGenerator):
    """Column correlated with an earlier column of the same table.

    ``value = transform(base) + noise`` where noise is uniform in
    ``[-noise, noise]``, then clipped to ``[low, high]`` and rounded.
    This models the cross-column correlations (e.g. production year vs.
    id ranges) that defeat independence assumptions.
    """

    base_column: str
    transform: Callable[[np.ndarray], np.ndarray]
    noise: float = 0.0
    low: float = -np.inf
    high: float = np.inf
    nullable_fraction: float = 0.0

    def generate(self, n, rng, context, tables):
        if self.base_column not in context:
            raise CatalogError(
                f"derived column depends on {self.base_column!r} which has not been generated yet"
            )
        base = np.nan_to_num(np.asarray(context[self.base_column], dtype=np.float64))
        vals = self.transform(base)
        if self.noise > 0:
            vals = vals + rng.uniform(-self.noise, self.noise, size=n)
        vals = np.clip(np.round(vals), self.low, self.high).astype(np.float64)
        return self._apply_nulls(vals, rng)


@dataclass
class TableGenerator:
    """Generates all columns of one table in declaration order."""

    table: str
    row_count: int
    columns: dict[str, ColumnGenerator] = field(default_factory=dict)

    def generate(self, rng: np.random.Generator,
                 tables: dict[str, dict[str, np.ndarray]]) -> dict[str, np.ndarray]:
        """Return ``{column_name: array}`` for this table."""
        context: dict[str, np.ndarray] = {}
        for name, gen in self.columns.items():
            context[name] = gen.generate(self.row_count, rng, context, tables)
        return context


def infer_dtype(generator: ColumnGenerator) -> DataType:
    """Best-effort mapping from a generator to a column data type."""
    if isinstance(generator, (CategoricalString,)):
        return DataType.STRING
    if isinstance(generator, NormalFloat):
        return DataType.FLOAT
    return DataType.INT
