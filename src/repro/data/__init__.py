"""Synthetic database substrate: schemas, data generators, statistics.

Provides size-parameterized stand-ins for the paper's two evaluation
databases — IMDB/JOB (:func:`build_imdb_catalog`) and TPC-H
(:func:`build_tpch_catalog`) — with the skew and correlation structure
that makes cost estimation hard.
"""

from repro.data.catalog import Catalog, TableData, build_catalog
from repro.data.generator import (
    CategoricalString,
    ColumnGenerator,
    DerivedInt,
    ForeignKeyRef,
    NormalFloat,
    SerialKey,
    TableGenerator,
    UniformInt,
    ZipfInt,
)
from repro.data.imdb import build_imdb_catalog, imdb_generators, imdb_schemas
from repro.data.schema import Column, DataType, ForeignKey, TableSchema
from repro.data.statistics import (
    ColumnStatistics,
    TableStatistics,
    compute_table_statistics,
)
from repro.data.tpch import build_tpch_catalog, tpch_generators, tpch_schemas

__all__ = [
    "Catalog",
    "TableData",
    "build_catalog",
    "Column",
    "DataType",
    "ForeignKey",
    "TableSchema",
    "ColumnGenerator",
    "SerialKey",
    "UniformInt",
    "ZipfInt",
    "NormalFloat",
    "CategoricalString",
    "ForeignKeyRef",
    "DerivedInt",
    "TableGenerator",
    "ColumnStatistics",
    "TableStatistics",
    "compute_table_statistics",
    "build_imdb_catalog",
    "imdb_schemas",
    "imdb_generators",
    "build_tpch_catalog",
    "tpch_schemas",
    "tpch_generators",
]
