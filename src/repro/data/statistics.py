"""Table and column statistics, as a Catalyst-style optimizer would keep.

Statistics are computed once per generated table and used by the
cardinality estimator (:mod:`repro.plan.cardinality`), by the GPSJ
analytic baseline, and as "other features" of the learned cost models
(the paper feeds cardinality and distinct counts alongside the plan).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.schema import DataType, TableSchema
from repro.errors import CatalogError

__all__ = ["ColumnStatistics", "TableStatistics", "compute_table_statistics", "HISTOGRAM_BUCKETS"]

HISTOGRAM_BUCKETS = 32


@dataclass
class ColumnStatistics:
    """Summary statistics for one column.

    ``histogram`` is an equi-depth histogram over numeric values:
    ``bounds`` has ``len(counts) + 1`` entries and ``counts[i]`` rows
    fall in ``[bounds[i], bounds[i+1])`` (last bucket right-inclusive).
    For string columns the histogram is over the per-value frequency
    table instead (``top_values`` / ``top_counts``).
    """

    name: str
    dtype: DataType
    row_count: int
    ndv: int
    null_count: int = 0
    min_value: float | None = None
    max_value: float | None = None
    bounds: np.ndarray | None = None
    counts: np.ndarray | None = None
    top_values: list = field(default_factory=list)
    top_counts: list[int] = field(default_factory=list)

    @property
    def null_fraction(self) -> float:
        """Fraction of NULL rows."""
        if self.row_count == 0:
            return 0.0
        return self.null_count / self.row_count

    def selectivity_eq(self, value) -> float:
        """Estimated selectivity of ``col = value``."""
        if self.row_count == 0:
            return 0.0
        for v, c in zip(self.top_values, self.top_counts):
            if v == value or (self.dtype != DataType.STRING and float(v) == float(value)):
                return c / self.row_count
        if self.dtype == DataType.STRING:
            covered = sum(self.top_counts)
            rest_rows = max(self.row_count - covered - self.null_count, 0)
            rest_ndv = max(self.ndv - len(self.top_values), 1)
            return (rest_rows / rest_ndv) / self.row_count if rest_rows else 1.0 / max(self.row_count, 1)
        if self.min_value is None or not (self.min_value <= float(value) <= self.max_value):
            return 0.0
        rest_rows = max(self.row_count - sum(self.top_counts) - self.null_count, 0)
        rest_ndv = max(self.ndv - len(self.top_values), 1)
        return (rest_rows / rest_ndv) / max(self.row_count, 1)

    def selectivity_range(self, low: float | None, high: float | None,
                          low_inclusive: bool = True, high_inclusive: bool = True) -> float:
        """Estimated selectivity of a (half-)open numeric range predicate.

        Uses the equi-depth histogram with linear interpolation inside
        partially-covered buckets; falls back to a uniform assumption
        when no histogram is available.
        """
        if self.row_count == 0 or self.dtype == DataType.STRING:
            return 1.0 / 3.0  # default guess, as in classical optimizers
        if self.min_value is None or self.max_value is None:
            return 1.0 / 3.0
        lo = self.min_value if low is None else float(low)
        hi = self.max_value if high is None else float(high)
        lo = max(lo, self.min_value)
        hi = min(hi, self.max_value)
        if hi < lo:
            return 0.0
        # Most-common values are tracked exactly (histogram excludes them).
        mcv_rows = 0.0
        for v, c in zip(self.top_values, self.top_counts):
            v = float(v)
            inside = (lo < v < hi) or (v == lo and low_inclusive) or (v == hi and high_inclusive)
            if lo == hi:
                inside = v == lo and low_inclusive and high_inclusive
            if inside:
                mcv_rows += c
        if self.bounds is None or self.counts is None or self.counts.sum() == 0:
            span = self.max_value - self.min_value
            hist_rows = 0.0
            if span > 0:
                remainder = max(self.row_count - sum(self.top_counts) - self.null_count, 0)
                hist_rows = remainder * (hi - lo) / span
            return float(min(max((mcv_rows + hist_rows) / self.row_count, 0.0), 1.0))
        covered = 0.0
        for i, count in enumerate(self.counts):
            b_lo, b_hi = self.bounds[i], self.bounds[i + 1]
            width = b_hi - b_lo
            if width <= 0:
                if lo <= b_lo <= hi:
                    covered += count
                continue
            overlap = max(0.0, min(hi, b_hi) - max(lo, b_lo))
            covered += count * (overlap / width)
        sel = (mcv_rows + covered) / self.row_count if self.row_count else 0.0
        return float(min(max(sel, 0.0), 1.0))

    def to_dict(self) -> dict:
        """JSON-friendly snapshot (used when persisting catalogs)."""
        return {
            "name": self.name,
            "dtype": self.dtype.value,
            "row_count": self.row_count,
            "ndv": self.ndv,
            "null_count": self.null_count,
            "min_value": self.min_value,
            "max_value": self.max_value,
        }


@dataclass
class TableStatistics:
    """Statistics for a whole table."""

    table: str
    row_count: int
    columns: dict[str, ColumnStatistics]
    avg_row_bytes: float = 32.0

    @property
    def total_bytes(self) -> float:
        """Estimated on-disk size of the table."""
        return self.row_count * self.avg_row_bytes

    def column(self, name: str) -> ColumnStatistics:
        """Look up statistics for a column."""
        if name not in self.columns:
            raise CatalogError(f"no statistics for column {self.table}.{name}")
        return self.columns[name]


_BYTES_PER_TYPE = {DataType.INT: 8, DataType.FLOAT: 8, DataType.STRING: 24}


def compute_table_statistics(
    schema: TableSchema,
    data: dict[str, np.ndarray],
    buckets: int = HISTOGRAM_BUCKETS,
    top_k: int = 16,
) -> TableStatistics:
    """Scan generated column arrays and build :class:`TableStatistics`."""
    row_count = len(next(iter(data.values()))) if data else 0
    col_stats: dict[str, ColumnStatistics] = {}
    row_bytes = 0.0
    for col in schema.columns:
        if col.name not in data:
            raise CatalogError(f"data for {schema.name!r} missing column {col.name!r}")
        values = data[col.name]
        row_bytes += _BYTES_PER_TYPE[col.dtype]
        if col.dtype == DataType.STRING:
            mask = np.array([v is not None for v in values], dtype=bool)
            present = values[mask]
            uniques, counts = np.unique(present, return_counts=True)
            order = np.argsort(counts)[::-1][:top_k]
            col_stats[col.name] = ColumnStatistics(
                name=col.name,
                dtype=col.dtype,
                row_count=row_count,
                ndv=int(len(uniques)),
                null_count=int(row_count - mask.sum()),
                top_values=[str(uniques[i]) for i in order],
                top_counts=[int(counts[i]) for i in order],
            )
            continue
        numeric = np.asarray(values, dtype=np.float64)
        null_mask = np.isnan(numeric)
        present = numeric[~null_mask]
        if present.size == 0:
            col_stats[col.name] = ColumnStatistics(
                name=col.name, dtype=col.dtype, row_count=row_count,
                ndv=0, null_count=int(null_mask.sum()),
            )
            continue
        uniques, unique_counts = np.unique(present, return_counts=True)
        ndv = int(uniques.size)
        # Track heavy hitters (more than ~2 average buckets of mass) as
        # exact most-common values; the histogram covers the remainder.
        mcv_threshold = max(present.size / (buckets * 2), 1.0)
        heavy = unique_counts > mcv_threshold
        order = np.argsort(unique_counts[heavy])[::-1][:top_k]
        top_values = [float(v) for v in uniques[heavy][order]]
        top_counts = [int(c) for c in unique_counts[heavy][order]]
        remainder = present[~np.isin(present, np.array(top_values))] if top_values else present
        if remainder.size:
            n_buckets = min(buckets, max(int(np.unique(remainder).size), 1))
            quantiles = np.linspace(0.0, 1.0, n_buckets + 1)
            dedup = np.unique(np.quantile(remainder, quantiles))
            if dedup.size > 1:
                counts, bounds = np.histogram(remainder, bins=dedup)
            else:
                bounds = np.array([remainder.min(), remainder.max()])
                counts = np.array([remainder.size])
        else:
            bounds = None
            counts = None
        col_stats[col.name] = ColumnStatistics(
            name=col.name,
            dtype=col.dtype,
            row_count=row_count,
            ndv=ndv,
            null_count=int(null_mask.sum()),
            min_value=float(present.min()),
            max_value=float(present.max()),
            bounds=bounds,
            counts=counts,
            top_values=top_values,
            top_counts=top_counts,
        )
    return TableStatistics(
        table=schema.name,
        row_count=row_count,
        columns=col_stats,
        avg_row_bytes=max(row_bytes, 8.0),
    )
