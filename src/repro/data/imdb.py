"""A synthetic stand-in for the IMDB / Join Order Benchmark database.

The paper evaluates on the 7.2 GB IMDB dataset (22 tables, JOB
extension). We reproduce the JOB schema — movie fact tables with
skewed, correlated foreign keys and string dimensions — with a
size-parameterized generator. Row counts scale linearly with ``scale``;
``scale=1.0`` produces a laptop-sized database (~150k total rows) that
keeps the same *relative* table sizes and skew structure as IMDB.
"""

from __future__ import annotations


from repro.data.catalog import Catalog, build_catalog
from repro.data.generator import (
    CategoricalString,
    DerivedInt,
    ForeignKeyRef,
    SerialKey,
    TableGenerator,
    UniformInt,
    ZipfInt,
)
from repro.data.schema import Column, DataType, ForeignKey, TableSchema

__all__ = ["imdb_schemas", "imdb_generators", "build_imdb_catalog", "IMDB_BASE_ROWS"]

_I = DataType.INT
_S = DataType.STRING

# Relative sizes mirror IMDB: cast_info and movie_info dominate, the
# dimension tables are tiny.
IMDB_BASE_ROWS = {
    "kind_type": 7,
    "company_type": 4,
    "info_type": 113,
    "link_type": 18,
    "role_type": 12,
    "comp_cast_type": 4,
    "keyword": 1500,
    "company_name": 2500,
    "name": 8000,
    "char_name": 6000,
    "title": 20000,
    "aka_title": 3000,
    "aka_name": 2500,
    "movie_companies": 26000,
    "movie_keyword": 45000,
    "movie_info": 50000,
    "movie_info_idx": 14000,
    "movie_link": 3000,
    "cast_info": 62000,
    "person_info": 30000,
    "complete_cast": 1300,
}

_GENRES = ["action", "comedy", "drama", "documentary", "horror", "thriller",
           "romance", "animation", "crime", "adventure", "fantasy", "mystery"]
_COUNTRIES = ["us", "uk", "fr", "de", "jp", "it", "in", "cn", "ca", "au", "es", "kr"]
_KIND_NAMES = ["movie", "tv series", "tv movie", "video movie", "tv mini series",
               "video game", "episode"]
_COMPANY_KINDS = ["production companies", "distributors", "special effects companies",
                  "miscellaneous companies"]
_INFO_WORDS = ["budget", "genres", "rating", "votes", "runtimes", "languages",
               "countries", "color", "sound", "release", "gross", "locations"]


def imdb_schemas() -> list[TableSchema]:
    """Schemas of the 21 JOB relations (simplified column sets)."""
    return [
        TableSchema("kind_type", [Column("id", _I), Column("kind", _S)], primary_key="id"),
        TableSchema("company_type", [Column("id", _I), Column("kind", _S)], primary_key="id"),
        TableSchema("info_type", [Column("id", _I), Column("info", _S)], primary_key="id"),
        TableSchema("link_type", [Column("id", _I), Column("link", _S)], primary_key="id"),
        TableSchema("role_type", [Column("id", _I), Column("role", _S)], primary_key="id"),
        TableSchema("comp_cast_type", [Column("id", _I), Column("kind", _S)], primary_key="id"),
        TableSchema("keyword", [Column("id", _I), Column("keyword", _S),
                                Column("phonetic_code", _I)], primary_key="id"),
        TableSchema("company_name", [Column("id", _I), Column("name", _S),
                                     Column("country_code", _S)], primary_key="id"),
        TableSchema("name", [Column("id", _I), Column("name", _S),
                             Column("gender", _S), Column("imdb_index", _I)], primary_key="id"),
        TableSchema("char_name", [Column("id", _I), Column("name", _S)], primary_key="id"),
        TableSchema(
            "title",
            [Column("id", _I), Column("title", _S), Column("kind_id", _I),
             Column("production_year", _I), Column("imdb_index", _I),
             Column("season_nr", _I), Column("episode_nr", _I)],
            primary_key="id",
            foreign_keys=[ForeignKey("kind_id", "kind_type", "id")],
        ),
        TableSchema(
            "aka_title",
            [Column("id", _I), Column("movie_id", _I), Column("title", _S),
             Column("kind_id", _I)],
            primary_key="id",
            foreign_keys=[ForeignKey("movie_id", "title", "id"),
                          ForeignKey("kind_id", "kind_type", "id")],
        ),
        TableSchema(
            "aka_name",
            [Column("id", _I), Column("person_id", _I), Column("name", _S)],
            primary_key="id",
            foreign_keys=[ForeignKey("person_id", "name", "id")],
        ),
        TableSchema(
            "movie_companies",
            [Column("id", _I), Column("movie_id", _I), Column("company_id", _I),
             Column("company_type_id", _I)],
            primary_key="id",
            foreign_keys=[ForeignKey("movie_id", "title", "id"),
                          ForeignKey("company_id", "company_name", "id"),
                          ForeignKey("company_type_id", "company_type", "id")],
        ),
        TableSchema(
            "movie_keyword",
            [Column("id", _I), Column("movie_id", _I), Column("keyword_id", _I)],
            primary_key="id",
            foreign_keys=[ForeignKey("movie_id", "title", "id"),
                          ForeignKey("keyword_id", "keyword", "id")],
        ),
        TableSchema(
            "movie_info",
            [Column("id", _I), Column("movie_id", _I), Column("info_type_id", _I),
             Column("info", _S)],
            primary_key="id",
            foreign_keys=[ForeignKey("movie_id", "title", "id"),
                          ForeignKey("info_type_id", "info_type", "id")],
        ),
        TableSchema(
            "movie_info_idx",
            [Column("id", _I), Column("movie_id", _I), Column("info_type_id", _I),
             Column("info", _S)],
            primary_key="id",
            foreign_keys=[ForeignKey("movie_id", "title", "id"),
                          ForeignKey("info_type_id", "info_type", "id")],
        ),
        TableSchema(
            "movie_link",
            [Column("id", _I), Column("movie_id", _I), Column("linked_movie_id", _I),
             Column("link_type_id", _I)],
            primary_key="id",
            foreign_keys=[ForeignKey("movie_id", "title", "id"),
                          ForeignKey("linked_movie_id", "title", "id"),
                          ForeignKey("link_type_id", "link_type", "id")],
        ),
        TableSchema(
            "cast_info",
            [Column("id", _I), Column("movie_id", _I), Column("person_id", _I),
             Column("person_role_id", _I), Column("role_id", _I), Column("nr_order", _I)],
            primary_key="id",
            foreign_keys=[ForeignKey("movie_id", "title", "id"),
                          ForeignKey("person_id", "name", "id"),
                          ForeignKey("person_role_id", "char_name", "id"),
                          ForeignKey("role_id", "role_type", "id")],
        ),
        TableSchema(
            "person_info",
            [Column("id", _I), Column("person_id", _I), Column("info_type_id", _I),
             Column("info", _S)],
            primary_key="id",
            foreign_keys=[ForeignKey("person_id", "name", "id"),
                          ForeignKey("info_type_id", "info_type", "id")],
        ),
        TableSchema(
            "complete_cast",
            [Column("id", _I), Column("movie_id", _I), Column("subject_id", _I),
             Column("status_id", _I)],
            primary_key="id",
            foreign_keys=[ForeignKey("movie_id", "title", "id"),
                          ForeignKey("subject_id", "comp_cast_type", "id"),
                          ForeignKey("status_id", "comp_cast_type", "id")],
        ),
    ]


def _rows(table: str, scale: float) -> int:
    return max(int(IMDB_BASE_ROWS[table] * scale), 2)


def imdb_generators(scale: float = 1.0) -> list[TableGenerator]:
    """Table generators in dependency order (parents before children)."""
    n_title = _rows("title", scale)
    n_keyword = _rows("keyword", scale)
    n_company = _rows("company_name", scale)
    n_name = _rows("name", scale)
    n_char = _rows("char_name", scale)

    def dim(table: str, label_col: str, values: list[str]) -> TableGenerator:
        return TableGenerator(table, _rows(table, scale), {
            "id": SerialKey(),
            label_col: CategoricalString(values),
        })

    return [
        dim("kind_type", "kind", _KIND_NAMES),
        dim("company_type", "kind", _COMPANY_KINDS),
        TableGenerator("info_type", _rows("info_type", scale), {
            "id": SerialKey(),
            "info": CategoricalString(_INFO_WORDS),
        }),
        dim("link_type", "link", ["follows", "followed by", "remake of", "remade as",
                                  "references", "referenced in", "spoofs", "spoofed in"]),
        dim("role_type", "role", ["actor", "actress", "producer", "writer", "director",
                                  "composer", "editor", "cinematographer"]),
        dim("comp_cast_type", "kind", ["cast", "crew", "complete", "complete+verified"]),
        TableGenerator("keyword", n_keyword, {
            "id": SerialKey(),
            "keyword": CategoricalString([f"kw_{i}" for i in range(min(n_keyword, 400))], skew=0.7),
            "phonetic_code": UniformInt(1, 9999),
        }),
        TableGenerator("company_name", n_company, {
            "id": SerialKey(),
            "name": CategoricalString([f"studio_{i}" for i in range(min(n_company, 300))], skew=0.5),
            "country_code": CategoricalString(_COUNTRIES, skew=1.1),
        }),
        TableGenerator("name", n_name, {
            "id": SerialKey(),
            "name": CategoricalString([f"person_{i}" for i in range(min(n_name, 500))]),
            "gender": CategoricalString(["m", "f"], skew=0.3),
            "imdb_index": UniformInt(1, 40, nullable_fraction=0.3),
        }),
        TableGenerator("char_name", n_char, {
            "id": SerialKey(),
            "name": CategoricalString([f"char_{i}" for i in range(min(n_char, 400))]),
        }),
        TableGenerator("title", n_title, {
            "id": SerialKey(),
            "title": CategoricalString(_GENRES),  # proxy labels; real titles irrelevant
            "kind_id": ZipfInt(len(_KIND_NAMES), skew=1.3),
            # production_year correlates with id (newer movies get larger ids),
            # the kind of correlation that breaks independence assumptions.
            "production_year": DerivedInt(
                "id",
                transform=lambda ids: 1900 + 120.0 * (ids / max(ids.max(), 1.0)),
                noise=12.0, low=1880, high=2022,
            ),
            "imdb_index": UniformInt(1, 30, nullable_fraction=0.5),
            "season_nr": UniformInt(1, 30, nullable_fraction=0.8),
            "episode_nr": UniformInt(1, 500, nullable_fraction=0.8),
        }),
        TableGenerator("aka_title", _rows("aka_title", scale), {
            "id": SerialKey(),
            "movie_id": ForeignKeyRef("title", "id", skew=1.0),
            "title": CategoricalString(_GENRES),
            "kind_id": ZipfInt(len(_KIND_NAMES), skew=1.3),
        }),
        TableGenerator("aka_name", _rows("aka_name", scale), {
            "id": SerialKey(),
            "person_id": ForeignKeyRef("name", "id", skew=1.0),
            "name": CategoricalString([f"alias_{i}" for i in range(200)]),
        }),
        TableGenerator("movie_companies", _rows("movie_companies", scale), {
            "id": SerialKey(),
            "movie_id": ForeignKeyRef("title", "id", skew=0.7),
            "company_id": ForeignKeyRef("company_name", "id", skew=1.1),
            "company_type_id": ZipfInt(len(_COMPANY_KINDS), skew=0.9),
        }),
        TableGenerator("movie_keyword", _rows("movie_keyword", scale), {
            "id": SerialKey(),
            "movie_id": ForeignKeyRef("title", "id", skew=0.8),
            "keyword_id": ForeignKeyRef("keyword", "id", skew=1.0),
        }),
        TableGenerator("movie_info", _rows("movie_info", scale), {
            "id": SerialKey(),
            "movie_id": ForeignKeyRef("title", "id", skew=0.6),
            "info_type_id": ZipfInt(max(_rows("info_type", scale), 2), skew=1.0),
            "info": CategoricalString([f"info_{i}" for i in range(300)], skew=0.8),
        }),
        TableGenerator("movie_info_idx", _rows("movie_info_idx", scale), {
            "id": SerialKey(),
            "movie_id": ForeignKeyRef("title", "id", skew=0.5),
            "info_type_id": ZipfInt(max(_rows("info_type", scale), 2), skew=1.2),
            "info": CategoricalString([f"rank_{i}" for i in range(100)]),
        }),
        TableGenerator("movie_link", _rows("movie_link", scale), {
            "id": SerialKey(),
            "movie_id": ForeignKeyRef("title", "id", skew=0.9),
            "linked_movie_id": ForeignKeyRef("title", "id", skew=0.9),
            "link_type_id": UniformInt(1, _rows("link_type", scale)),
        }),
        TableGenerator("cast_info", _rows("cast_info", scale), {
            "id": SerialKey(),
            "movie_id": ForeignKeyRef("title", "id", skew=0.8),
            "person_id": ForeignKeyRef("name", "id", skew=1.0),
            "person_role_id": ForeignKeyRef("char_name", "id", skew=0.9,
                                            nullable_fraction=0.3),
            "role_id": ZipfInt(8, skew=1.0),
            "nr_order": UniformInt(1, 100, nullable_fraction=0.4),
        }),
        TableGenerator("person_info", _rows("person_info", scale), {
            "id": SerialKey(),
            "person_id": ForeignKeyRef("name", "id", skew=1.1),
            "info_type_id": ZipfInt(max(_rows("info_type", scale), 2), skew=1.0),
            "info": CategoricalString([f"bio_{i}" for i in range(150)]),
        }),
        TableGenerator("complete_cast", _rows("complete_cast", scale), {
            "id": SerialKey(),
            "movie_id": ForeignKeyRef("title", "id", skew=0.6),
            "subject_id": UniformInt(1, 4),
            "status_id": UniformInt(1, 4),
        }),
    ]


def build_imdb_catalog(scale: float = 0.1, seed: int = 7) -> Catalog:
    """Build the synthetic IMDB catalog at the given scale.

    ``scale=0.1`` (default) generates ~28k total rows — large enough for
    skew/correlation effects, small enough for fast tests. Benchmarks
    use larger scales.
    """
    return build_catalog("imdb", imdb_schemas(), imdb_generators(scale), seed=seed)
