"""AST node definitions for the GPSJ SQL subset.

The grammar covers the query class the paper evaluates on (and that the
GPSJ baseline is defined for): generalized projection / selection /
join queries with aggregation —

    SELECT <agg | columns> FROM t1 [a1], t2 [a2], ...
    WHERE <conjunctive predicates and equi-joins>
    [GROUP BY cols] [ORDER BY cols] [LIMIT n]
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = [
    "CompareOp",
    "AggregateFunc",
    "ColumnRef",
    "Literal",
    "Comparison",
    "BetweenPredicate",
    "InPredicate",
    "LikePredicate",
    "IsNullPredicate",
    "JoinCondition",
    "AggregateExpr",
    "SelectItem",
    "TableRef",
    "OrderItem",
    "SelectStatement",
]


class CompareOp(enum.Enum):
    """Binary comparison operators."""

    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def flip(self) -> "CompareOp":
        """Operator with swapped operands (``a < b`` ⇔ ``b > a``)."""
        return {
            CompareOp.EQ: CompareOp.EQ,
            CompareOp.NE: CompareOp.NE,
            CompareOp.LT: CompareOp.GT,
            CompareOp.LE: CompareOp.GE,
            CompareOp.GT: CompareOp.LT,
            CompareOp.GE: CompareOp.LE,
        }[self]


class AggregateFunc(enum.Enum):
    """Aggregate functions supported in the SELECT list."""

    COUNT = "count"
    SUM = "sum"
    AVG = "avg"
    MIN = "min"
    MAX = "max"


@dataclass(frozen=True)
class ColumnRef:
    """A (possibly qualified) column reference, e.g. ``t.id`` or ``id``."""

    column: str
    table: str | None = None

    def __str__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class Literal:
    """A numeric or string constant."""

    value: float | str

    @property
    def is_string(self) -> bool:
        """Whether the literal is a string (vs numeric) constant."""
        return isinstance(self.value, str)

    def __str__(self) -> str:
        return f"'{self.value}'" if self.is_string else f"{self.value:g}"


@dataclass(frozen=True)
class Comparison:
    """``column <op> literal`` filter predicate."""

    column: ColumnRef
    op: CompareOp
    value: Literal

    def __str__(self) -> str:
        return f"{self.column} {self.op.value} {self.value}"


@dataclass(frozen=True)
class BetweenPredicate:
    """``column BETWEEN low AND high``."""

    column: ColumnRef
    low: Literal
    high: Literal

    def __str__(self) -> str:
        return f"{self.column} between {self.low} and {self.high}"


@dataclass(frozen=True)
class InPredicate:
    """``column IN (v1, v2, ...)``."""

    column: ColumnRef
    values: tuple[Literal, ...]

    def __str__(self) -> str:
        vals = ", ".join(str(v) for v in self.values)
        return f"{self.column} in ({vals})"


@dataclass(frozen=True)
class LikePredicate:
    """``column LIKE 'pattern'`` with ``%``/``_`` wildcards."""

    column: ColumnRef
    pattern: str
    negated: bool = False

    def __str__(self) -> str:
        neg = "not " if self.negated else ""
        return f"{self.column} {neg}like '{self.pattern}'"


@dataclass(frozen=True)
class IsNullPredicate:
    """``column IS [NOT] NULL``."""

    column: ColumnRef
    negated: bool = False

    def __str__(self) -> str:
        neg = "not " if self.negated else ""
        return f"{self.column} is {neg}null"


@dataclass(frozen=True)
class JoinCondition:
    """Equi-join ``left.col = right.col`` between two tables."""

    left: ColumnRef
    right: ColumnRef

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class AggregateExpr:
    """An aggregate call like ``COUNT(*)`` or ``SUM(t.x)``."""

    func: AggregateFunc
    argument: ColumnRef | None = None  # None means '*' (COUNT(*) only)

    def __str__(self) -> str:
        arg = str(self.argument) if self.argument else "*"
        return f"{self.func.value}({arg})"


@dataclass(frozen=True)
class SelectItem:
    """One item in the SELECT list: a column or an aggregate."""

    expr: ColumnRef | AggregateExpr
    alias: str | None = None

    def __str__(self) -> str:
        base = str(self.expr)
        return f"{base} as {self.alias}" if self.alias else base


@dataclass(frozen=True)
class TableRef:
    """A FROM-list entry: table name with optional alias."""

    table: str
    alias: str | None = None

    @property
    def name(self) -> str:
        """The name other clauses use to refer to this table."""
        return self.alias or self.table

    def __str__(self) -> str:
        return f"{self.table} {self.alias}" if self.alias else self.table


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    column: ColumnRef
    descending: bool = False

    def __str__(self) -> str:
        return f"{self.column} {'desc' if self.descending else 'asc'}"


# Filter predicates that constrain a single table.
FilterPredicate = Comparison | BetweenPredicate | InPredicate | LikePredicate | IsNullPredicate


@dataclass
class SelectStatement:
    """A parsed query.

    ``filters`` and ``joins`` together are the conjunctive WHERE clause,
    already split into single-table filters and equi-join conditions by
    the parser.
    """

    select_items: list[SelectItem]
    tables: list[TableRef]
    filters: list[FilterPredicate] = field(default_factory=list)
    joins: list[JoinCondition] = field(default_factory=list)
    group_by: list[ColumnRef] = field(default_factory=list)
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None

    @property
    def has_aggregates(self) -> bool:
        """Whether any SELECT item is an aggregate call."""
        return any(isinstance(item.expr, AggregateExpr) for item in self.select_items)

    def __str__(self) -> str:
        parts = ["select " + ", ".join(str(s) for s in self.select_items)]
        parts.append("from " + ", ".join(str(t) for t in self.tables))
        preds = [str(p) for p in self.filters] + [str(j) for j in self.joins]
        if preds:
            parts.append("where " + " and ".join(preds))
        if self.group_by:
            parts.append("group by " + ", ".join(str(c) for c in self.group_by))
        if self.order_by:
            parts.append("order by " + ", ".join(str(o) for o in self.order_by))
        if self.limit is not None:
            parts.append(f"limit {self.limit}")
        return " ".join(parts)
