"""SQL front end: tokenizer, AST, parser, and predicate evaluation."""

from repro.sql.ast import (
    AggregateExpr,
    AggregateFunc,
    BetweenPredicate,
    ColumnRef,
    Comparison,
    CompareOp,
    InPredicate,
    IsNullPredicate,
    JoinCondition,
    LikePredicate,
    Literal,
    OrderItem,
    SelectItem,
    SelectStatement,
    TableRef,
)
from repro.sql.expressions import evaluate_predicate, like_to_regex, null_mask
from repro.sql.parser import parse
from repro.sql.tokenizer import Token, TokenType, tokenize

__all__ = [
    "parse",
    "tokenize",
    "Token",
    "TokenType",
    "SelectStatement",
    "SelectItem",
    "TableRef",
    "OrderItem",
    "ColumnRef",
    "Literal",
    "Comparison",
    "CompareOp",
    "BetweenPredicate",
    "InPredicate",
    "LikePredicate",
    "IsNullPredicate",
    "JoinCondition",
    "AggregateExpr",
    "AggregateFunc",
    "evaluate_predicate",
    "like_to_regex",
    "null_mask",
]
