"""Recursive-descent parser for the GPSJ SQL subset.

Grammar (conjunctive WHERE only — the query class both the paper's
workloads and the GPSJ baseline cover):

    query     := SELECT items FROM tables [WHERE conj]
                 [GROUP BY cols] [ORDER BY order_items] [LIMIT n] [;]
    items     := item (',' item)*
    item      := (aggregate | column) [AS ident]
    aggregate := (COUNT|SUM|AVG|MIN|MAX) '(' ('*' | column) ')'
    tables    := table (',' table)*
    table     := ident [[AS] ident]
    conj      := predicate (AND predicate)*
    predicate := column op literal | literal op column
               | column BETWEEN literal AND literal
               | column IN '(' literal (',' literal)* ')'
               | column [NOT] LIKE string
               | column IS [NOT] NULL
               | column '=' column          -- equi-join
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.sql.ast import (
    AggregateExpr,
    AggregateFunc,
    BetweenPredicate,
    ColumnRef,
    Comparison,
    CompareOp,
    InPredicate,
    IsNullPredicate,
    JoinCondition,
    LikePredicate,
    Literal,
    OrderItem,
    SelectItem,
    SelectStatement,
    TableRef,
)
from repro.sql.tokenizer import Token, TokenType, tokenize

__all__ = ["parse"]

_AGG_NAMES = {f.value for f in AggregateFunc}


class _Parser:
    def __init__(self, tokens: list[Token], sql: str) -> None:
        self._tokens = tokens
        self._sql = sql
        self._pos = 0

    # -- token helpers ----------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.type != TokenType.EOF:
            self._pos += 1
        return tok

    def _check(self, ttype: TokenType, value: str | None = None) -> bool:
        tok = self._peek()
        return tok.type == ttype and (value is None or tok.value == value)

    def _match(self, ttype: TokenType, value: str | None = None) -> Token | None:
        if self._check(ttype, value):
            return self._advance()
        return None

    def _expect(self, ttype: TokenType, value: str | None = None) -> Token:
        tok = self._match(ttype, value)
        if tok is None:
            actual = self._peek()
            wanted = value or ttype.value
            raise ParseError(
                f"expected {wanted!r} but found {actual.value or 'end of input'!r} "
                f"at position {actual.position}"
            )
        return tok

    def _keyword(self, word: str) -> bool:
        return self._match(TokenType.KEYWORD, word) is not None

    # -- grammar ----------------------------------------------------------
    def parse(self) -> SelectStatement:
        """Parse the token stream into a complete SELECT statement."""
        self._expect(TokenType.KEYWORD, "select")
        items = self._select_items()
        self._expect(TokenType.KEYWORD, "from")
        tables = self._table_refs()
        filters, joins = [], []
        if self._keyword("where"):
            filters, joins = self._conjunction()
        group_by: list[ColumnRef] = []
        if self._keyword("group"):
            self._expect(TokenType.KEYWORD, "by")
            group_by = self._column_list()
        order_by: list[OrderItem] = []
        if self._keyword("order"):
            self._expect(TokenType.KEYWORD, "by")
            order_by = self._order_items()
        limit = None
        if self._keyword("limit"):
            limit_tok = self._expect(TokenType.NUMBER)
            limit = int(float(limit_tok.value))
        self._match(TokenType.SEMICOLON)
        self._expect(TokenType.EOF)
        return SelectStatement(
            select_items=items, tables=tables, filters=filters, joins=joins,
            group_by=group_by, order_by=order_by, limit=limit,
        )

    def _select_items(self) -> list[SelectItem]:
        items = [self._select_item()]
        while self._match(TokenType.COMMA):
            items.append(self._select_item())
        return items

    def _select_item(self) -> SelectItem:
        tok = self._peek()
        if tok.type == TokenType.KEYWORD and tok.value in _AGG_NAMES:
            self._advance()
            self._expect(TokenType.LPAREN)
            func = AggregateFunc(tok.value)
            if self._match(TokenType.STAR):
                if func != AggregateFunc.COUNT:
                    raise ParseError(f"{func.value}(*) is not supported, only count(*)")
                arg = None
            else:
                arg = self._column_ref()
            self._expect(TokenType.RPAREN)
            expr: ColumnRef | AggregateExpr = AggregateExpr(func, arg)
        elif tok.type == TokenType.STAR:
            raise ParseError("bare '*' select lists are not supported; name columns or use count(*)")
        else:
            expr = self._column_ref()
        alias = None
        if self._keyword("as"):
            alias = self._expect(TokenType.IDENTIFIER).value
        elif self._check(TokenType.IDENTIFIER):
            alias = self._advance().value
        return SelectItem(expr=expr, alias=alias)

    def _table_refs(self) -> list[TableRef]:
        refs = [self._table_ref()]
        while self._match(TokenType.COMMA):
            refs.append(self._table_ref())
        names = [r.name for r in refs]
        if len(names) != len(set(names)):
            raise ParseError(f"duplicate table name/alias in FROM list: {names}")
        return refs

    def _table_ref(self) -> TableRef:
        table = self._expect(TokenType.IDENTIFIER).value
        alias = None
        if self._keyword("as"):
            alias = self._expect(TokenType.IDENTIFIER).value
        elif self._check(TokenType.IDENTIFIER):
            alias = self._advance().value
        return TableRef(table=table, alias=alias)

    def _column_list(self) -> list[ColumnRef]:
        cols = [self._column_ref()]
        while self._match(TokenType.COMMA):
            cols.append(self._column_ref())
        return cols

    def _order_items(self) -> list[OrderItem]:
        items = []
        while True:
            col = self._column_ref()
            descending = False
            if self._keyword("desc"):
                descending = True
            else:
                self._keyword("asc")
            items.append(OrderItem(column=col, descending=descending))
            if not self._match(TokenType.COMMA):
                return items

    def _column_ref(self) -> ColumnRef:
        first = self._expect(TokenType.IDENTIFIER).value
        if self._match(TokenType.DOT):
            second = self._expect(TokenType.IDENTIFIER).value
            return ColumnRef(column=second, table=first)
        return ColumnRef(column=first)

    def _literal(self) -> Literal:
        tok = self._peek()
        if tok.type == TokenType.NUMBER:
            self._advance()
            return Literal(float(tok.value))
        if tok.type == TokenType.STRING:
            self._advance()
            return Literal(tok.value)
        raise ParseError(f"expected a literal at position {tok.position}, found {tok.value!r}")

    def _conjunction(self):
        filters, joins = [], []
        while True:
            pred = self._predicate()
            if isinstance(pred, JoinCondition):
                joins.append(pred)
            else:
                filters.append(pred)
            if not self._keyword("and"):
                return filters, joins

    def _predicate(self):
        # literal <op> column form
        if self._peek().type in (TokenType.NUMBER, TokenType.STRING):
            lit = self._literal()
            op_tok = self._expect(TokenType.OPERATOR)
            col = self._column_ref()
            return Comparison(column=col, op=CompareOp(op_tok.value).flip(), value=lit)

        col = self._column_ref()
        if self._check(TokenType.OPERATOR):
            op = CompareOp(self._advance().value)
            nxt = self._peek()
            if nxt.type == TokenType.IDENTIFIER:
                right = self._column_ref()
                if op != CompareOp.EQ:
                    raise ParseError(
                        f"only equi-joins are supported, found {op.value!r} between columns"
                    )
                return JoinCondition(left=col, right=right)
            return Comparison(column=col, op=op, value=self._literal())
        if self._keyword("between"):
            low = self._literal()
            self._expect(TokenType.KEYWORD, "and")
            high = self._literal()
            return BetweenPredicate(column=col, low=low, high=high)
        if self._keyword("in"):
            self._expect(TokenType.LPAREN)
            values = [self._literal()]
            while self._match(TokenType.COMMA):
                values.append(self._literal())
            self._expect(TokenType.RPAREN)
            return InPredicate(column=col, values=tuple(values))
        negated = False
        if self._keyword("not"):
            negated = True
        if self._keyword("like"):
            pattern = self._expect(TokenType.STRING).value
            return LikePredicate(column=col, pattern=pattern, negated=negated)
        if negated:
            raise ParseError(f"expected LIKE after NOT at position {self._peek().position}")
        if self._keyword("is"):
            neg = self._keyword("not")
            self._expect(TokenType.KEYWORD, "null")
            return IsNullPredicate(column=col, negated=neg)
        tok = self._peek()
        raise ParseError(
            f"expected a predicate operator after {col}, found {tok.value!r} "
            f"at position {tok.position}"
        )


def parse(sql: str) -> SelectStatement:
    """Parse ``sql`` into a :class:`repro.sql.ast.SelectStatement`.

    Raises :class:`repro.errors.ParseError` on invalid syntax and
    :class:`repro.errors.TokenizeError` on invalid characters.
    """
    return _Parser(tokenize(sql), sql).parse()
