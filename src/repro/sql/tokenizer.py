"""SQL tokenizer for the GPSJ query subset.

Produces a flat token stream consumed by the recursive-descent parser
in :mod:`repro.sql.parser`. Keywords are case-insensitive; identifiers
are lower-cased (Spark SQL is case-insensitive by default).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import TokenizeError

__all__ = ["TokenType", "Token", "tokenize", "KEYWORDS"]

KEYWORDS = {
    "select", "from", "where", "and", "or", "not", "as", "group", "by",
    "order", "limit", "count", "sum", "avg", "min", "max", "distinct",
    "in", "like", "between", "is", "null", "asc", "desc",
}


class TokenType(enum.Enum):
    """Lexical token categories."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"     # = <> != < <= > >=
    COMMA = "comma"
    DOT = "dot"
    LPAREN = "lparen"
    RPAREN = "rparen"
    STAR = "star"
    SEMICOLON = "semicolon"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """A single token with its source position (for error messages)."""

    type: TokenType
    value: str
    position: int

    def __repr__(self) -> str:
        return f"Token({self.type.name}, {self.value!r}@{self.position})"


_OPERATOR_STARTS = "=<>!"


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql`` into a list ending with an EOF token."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and i + 1 < n and sql[i + 1] == "-":  # line comment
            while i < n and sql[i] != "\n":
                i += 1
            continue
        if ch == "-" and i + 1 < n and (sql[i + 1].isdigit() or sql[i + 1] == "."):
            # Unary minus on a numeric literal. Valid only where a value
            # can appear (after an operator/keyword/'('/','), so "a-5"
            # stays an error rather than silently parsing as "a (-5)".
            prev = tokens[-1] if tokens else None
            value_position = prev is None or prev.type in (
                TokenType.OPERATOR, TokenType.KEYWORD,
                TokenType.LPAREN, TokenType.COMMA)
            if value_position:
                start = i
                i += 1
                seen_dot = False
                while i < n and (sql[i].isdigit() or (sql[i] == "." and not seen_dot)):
                    if sql[i] == ".":
                        if i + 1 >= n or not sql[i + 1].isdigit():
                            break
                        seen_dot = True
                    i += 1
                tokens.append(Token(TokenType.NUMBER, sql[start:i], start))
                continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            word = sql[start:i].lower()
            kind = TokenType.KEYWORD if word in KEYWORDS else TokenType.IDENTIFIER
            tokens.append(Token(kind, word, start))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            start = i
            seen_dot = False
            while i < n and (sql[i].isdigit() or (sql[i] == "." and not seen_dot)):
                if sql[i] == ".":
                    # Distinguish "1.5" from "t.col" — a dot not followed
                    # by a digit terminates the number.
                    if i + 1 >= n or not sql[i + 1].isdigit():
                        break
                    seen_dot = True
                i += 1
            tokens.append(Token(TokenType.NUMBER, sql[start:i], start))
            continue
        if ch == "'":
            start = i
            i += 1
            chars: list[str] = []
            while i < n:
                if sql[i] == "'":
                    if i + 1 < n and sql[i + 1] == "'":  # escaped quote
                        chars.append("'")
                        i += 2
                        continue
                    break
                chars.append(sql[i])
                i += 1
            if i >= n:
                raise TokenizeError(f"unterminated string literal at position {start}")
            i += 1  # closing quote
            tokens.append(Token(TokenType.STRING, "".join(chars), start))
            continue
        if ch in _OPERATOR_STARTS:
            start = i
            if sql[i : i + 2] in ("<=", ">=", "<>", "!="):
                op = sql[i : i + 2]
                i += 2
            elif ch in "=<>":
                op = ch
                i += 1
            else:
                raise TokenizeError(f"unexpected character {ch!r} at position {i}")
            tokens.append(Token(TokenType.OPERATOR, "<>" if op == "!=" else op, start))
            continue
        simple = {
            ",": TokenType.COMMA,
            ".": TokenType.DOT,
            "(": TokenType.LPAREN,
            ")": TokenType.RPAREN,
            "*": TokenType.STAR,
            ";": TokenType.SEMICOLON,
        }
        if ch in simple:
            tokens.append(Token(simple[ch], ch, i))
            i += 1
            continue
        raise TokenizeError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens
