"""Vectorized predicate evaluation over numpy column arrays.

Used by the execution engine to compute true per-operator cardinalities
(NULL semantics: comparisons with NULL are false, as in SQL).
"""

from __future__ import annotations

import re

import numpy as np

from repro.errors import PlanError
from repro.sql.ast import (
    BetweenPredicate,
    Comparison,
    CompareOp,
    InPredicate,
    IsNullPredicate,
    LikePredicate,
)

__all__ = ["evaluate_predicate", "like_to_regex", "null_mask"]


def null_mask(values: np.ndarray) -> np.ndarray:
    """Boolean mask of NULL entries (nan for numerics, None for strings)."""
    if values.dtype == object:
        return np.array([v is None for v in values], dtype=bool)
    return np.isnan(values)


def like_to_regex(pattern: str) -> re.Pattern:
    """Compile a SQL LIKE pattern (``%``, ``_``) to a regex."""
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$")


def _compare(values: np.ndarray, op: CompareOp, literal) -> np.ndarray:
    if values.dtype == object:
        present = ~null_mask(values)
        result = np.zeros(len(values), dtype=bool)
        target = str(literal)
        strs = values[present].astype(str)
        if op == CompareOp.EQ:
            result[present] = strs == target
        elif op == CompareOp.NE:
            result[present] = strs != target
        elif op == CompareOp.LT:
            result[present] = strs < target
        elif op == CompareOp.LE:
            result[present] = strs <= target
        elif op == CompareOp.GT:
            result[present] = strs > target
        else:
            result[present] = strs >= target
        return result
    numeric = np.asarray(values, dtype=np.float64)
    target = float(literal)
    with np.errstate(invalid="ignore"):
        if op == CompareOp.EQ:
            return numeric == target
        if op == CompareOp.NE:
            return ~np.isnan(numeric) & (numeric != target)
        if op == CompareOp.LT:
            return numeric < target
        if op == CompareOp.LE:
            return numeric <= target
        if op == CompareOp.GT:
            return numeric > target
        return numeric >= target


def evaluate_predicate(pred, values: np.ndarray) -> np.ndarray:
    """Evaluate a single-column filter predicate over ``values``.

    Returns a boolean mask of qualifying rows. The caller resolves the
    predicate's column to the right array.
    """
    if isinstance(pred, Comparison):
        return _compare(values, pred.op, pred.value.value)
    if isinstance(pred, BetweenPredicate):
        lo = _compare(values, CompareOp.GE, pred.low.value)
        hi = _compare(values, CompareOp.LE, pred.high.value)
        return lo & hi
    if isinstance(pred, InPredicate):
        mask = np.zeros(len(values), dtype=bool)
        for lit in pred.values:
            mask |= _compare(values, CompareOp.EQ, lit.value)
        return mask
    if isinstance(pred, LikePredicate):
        regex = like_to_regex(pred.pattern)
        present = ~null_mask(values)
        result = np.zeros(len(values), dtype=bool)
        result[present] = np.array(
            [regex.match(str(v)) is not None for v in values[present]], dtype=bool
        )
        return ~result & present if pred.negated else result
    if isinstance(pred, IsNullPredicate):
        nulls = null_mask(values)
        return ~nulls if pred.negated else nulls
    raise PlanError(f"cannot evaluate predicate of type {type(pred).__name__}")
