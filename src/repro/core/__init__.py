"""The paper's contribution: the RAAL deep cost model and its tooling."""

from repro.core.advisor import (
    AllocationPrice,
    Recommendation,
    ResourceAdvisor,
    default_profile_grid,
)
from repro.core.persistence import (
    CheckpointReport,
    load_predictor,
    save_predictor,
    verify_checkpoint,
)
from repro.core.predictor import CostPredictor
from repro.core.raal import RAAL, RAALBatch, RAALConfig
from repro.core.selector import PlanSelector, SelectionResult
from repro.core.trainer import (
    RecoveryEvent,
    Trainer,
    TrainerConfig,
    TrainingSample,
    TrainResult,
    collate,
)
from repro.core.variants import VARIANTS, VariantSpec, make_model, variant

__all__ = [
    "RAAL",
    "RAALConfig",
    "RAALBatch",
    "Trainer",
    "TrainerConfig",
    "TrainingSample",
    "TrainResult",
    "collate",
    "CostPredictor",
    "RecoveryEvent",
    "save_predictor",
    "load_predictor",
    "verify_checkpoint",
    "CheckpointReport",
    "PlanSelector",
    "SelectionResult",
    "VariantSpec",
    "VARIANTS",
    "variant",
    "make_model",
    "ResourceAdvisor",
    "AllocationPrice",
    "Recommendation",
    "default_profile_grid",
]
