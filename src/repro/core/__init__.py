"""The paper's contribution: the RAAL deep cost model and its tooling."""

from repro.core.advisor import (
    AllocationPrice,
    Recommendation,
    ResourceAdvisor,
    default_profile_grid,
)
from repro.core.persistence import load_predictor, save_predictor
from repro.core.predictor import CostPredictor
from repro.core.raal import RAAL, RAALBatch, RAALConfig
from repro.core.selector import PlanSelector, SelectionResult
from repro.core.trainer import (
    Trainer,
    TrainerConfig,
    TrainingSample,
    TrainResult,
    collate,
)
from repro.core.variants import VARIANTS, VariantSpec, make_model, variant

__all__ = [
    "RAAL",
    "RAALConfig",
    "RAALBatch",
    "Trainer",
    "TrainerConfig",
    "TrainingSample",
    "TrainResult",
    "collate",
    "CostPredictor",
    "save_predictor",
    "load_predictor",
    "PlanSelector",
    "SelectionResult",
    "VariantSpec",
    "VARIANTS",
    "variant",
    "make_model",
    "ResourceAdvisor",
    "AllocationPrice",
    "Recommendation",
    "default_profile_grid",
]
