"""Training loop for the deep cost models.

Targets are trained in log space (``log1p(seconds)``) — the standard
practice for cost models, whose labels span orders of magnitude — and
converted back for metric reporting in original space where needed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro import obs
from repro.core.raal import RAAL, RAALBatch
from repro.encoding.plan_encoder import EncodedPlan
from repro.errors import TrainingError
from repro.nn import Adam, StepLR, clip_grad_norm, mse_loss, no_grad, Tensor

__all__ = ["TrainingSample", "TrainerConfig", "TrainResult", "RecoveryEvent",
           "Trainer", "collate"]


@dataclass
class TrainingSample:
    """One (encoded plan, observed cost) training record."""

    encoded: EncodedPlan
    cost_seconds: float

    @property
    def log_cost(self) -> float:
        """Training-space target."""
        return float(np.log1p(max(self.cost_seconds, 0.0)))


def collate(samples: list[TrainingSample], max_nodes: int | None = None) -> RAALBatch:
    """Zero-pad a list of samples into one :class:`RAALBatch`."""
    if not samples:
        raise TrainingError("cannot collate an empty batch")
    node_dims = {s.encoded.node_features.shape[1] for s in samples}
    if len(node_dims) > 1:
        raise TrainingError(
            f"inconsistent node feature dims in batch: {sorted(node_dims)} — "
            "all samples must come from the same encoder configuration "
            "(mixing one-hot and word2vec encodings produces different widths)")
    for name, dims in (("resources", {s.encoded.resources.shape for s in samples}),
                       ("extras", {s.encoded.extras.shape for s in samples})):
        if len(dims) > 1:
            raise TrainingError(
                f"inconsistent {name} shapes in batch: {sorted(dims)}")
    n = max(s.encoded.num_nodes for s in samples)
    if max_nodes is not None:
        n = max(n, max_nodes)
    batch_size = len(samples)
    node_dim = samples[0].encoded.node_features.shape[1]
    feats = np.zeros((batch_size, n, node_dim))
    child = np.zeros((batch_size, n, n), dtype=bool)
    mask = np.zeros((batch_size, n), dtype=bool)
    resources = np.stack([s.encoded.resources for s in samples])
    extras = np.stack([s.encoded.extras for s in samples])
    targets = np.array([s.log_cost for s in samples])
    for i, sample in enumerate(samples):
        k = sample.encoded.num_nodes
        feats[i, :k] = sample.encoded.node_features
        child[i, :k, :k] = sample.encoded.child_mask
        mask[i, :k] = True
    return RAALBatch(
        node_features=feats, child_mask=child, node_mask=mask,
        resources=resources, extras=extras, targets=targets,
    )


@dataclass(frozen=True)
class TrainerConfig:
    """Knobs for :class:`Trainer`."""

    epochs: int = 30
    batch_size: int = 32
    learning_rate: float = 2e-3
    weight_decay: float = 1e-5
    grad_clip: float = 5.0
    validation_fraction: float = 0.1
    early_stopping_patience: int = 8
    # When set, the learning rate decays by ``lr_decay_gamma`` every
    # ``lr_decay_epochs`` epochs (StepLR).
    lr_decay_epochs: int | None = None
    lr_decay_gamma: float = 0.5
    # Upper clamp on log-space predictions before ``expm1`` — bounds
    # ``predict_seconds`` output at ``expm1(log_clamp_max)``. Clamped
    # (saturated) predictions are counted in ``Trainer.last_saturated``.
    log_clamp_max: float = 25.0
    # Divergence guard: an epoch whose loss is non-finite, or spikes
    # above ``divergence_spike_factor`` × the best train loss so far,
    # triggers a rollback to the best state with a halved learning
    # rate; after ``divergence_max_recoveries`` such events fit()
    # raises TrainingError instead of returning a poisoned model.
    divergence_max_recoveries: int = 3
    divergence_spike_factor: float = 50.0
    # Fused training step: gradients computed in closed form over
    # contiguous numpy buffers (``RAAL.forward_backward``) instead of
    # the per-timestep autograd graph, and validation evaluated through
    # the graph-free ``forward_inference``. Equivalent to the legacy
    # autograd path to ≤ 1e-8 per parameter; set False to train through
    # autograd (``repro train --no-fast-path``).
    fast_path: bool = True
    seed: int = 0
    verbose: bool = False


@dataclass(frozen=True)
class RecoveryEvent:
    """One divergence recovery during :meth:`Trainer.fit`."""

    epoch: int
    reason: str
    learning_rate: float  # the halved LR training resumed with


@dataclass
class TrainResult:
    """Loss history and timing of one training run.

    ``epoch_seconds`` is measured with the trainer's injectable clock
    and *includes* divergence-recovery epochs, so training-efficiency
    numbers see recovery overhead instead of re-timing externally.
    """

    train_losses: list[float] = field(default_factory=list)
    val_losses: list[float] = field(default_factory=list)
    best_epoch: int = 0
    train_seconds: float = 0.0
    recoveries: list[RecoveryEvent] = field(default_factory=list)
    epoch_seconds: list[float] = field(default_factory=list)
    samples_per_sec: list[float] = field(default_factory=list)

    @property
    def final_train_loss(self) -> float:
        """Training loss of the last epoch."""
        if not self.train_losses:
            raise TrainingError("no epochs were run")
        return self.train_losses[-1]


class Trainer:
    """Minibatch trainer with early stopping on a validation split."""

    def __init__(self, model: RAAL, config: TrainerConfig | None = None,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.model = model
        self.config = config or TrainerConfig()
        #: Monotonic time source for epoch/total wall-clock accounting;
        #: injectable so tests assert exact timings without sleeping.
        self.clock = clock
        #: Count of predictions clamped at ``log_clamp_max`` in the most
        #: recent :meth:`predict_seconds` call (saturation indicator).
        self.last_saturated = 0
        # Default (f64, single-thread) execution engine, built lazily;
        # CostPredictor passes its own configured engine instead.
        self._executor = None

    def fit(self, samples: list[TrainingSample]) -> TrainResult:
        """Train the model in place; returns the loss history.

        Divergence guard: a non-finite or spiking epoch loss rolls the
        model back to the best state seen so far and restarts the
        optimizer at half the learning rate (fresh Adam moments — the
        stale ones were computed from the diverged trajectory). Each
        recovery is recorded in :attr:`TrainResult.recoveries`; after
        ``divergence_max_recoveries`` events :class:`TrainingError` is
        raised with the model restored to its best finite state, so a
        silently-NaN fitted model can never escape this method.
        """
        cfg = self.config
        if len(samples) < 4:
            raise TrainingError(f"need at least 4 samples, got {len(samples)}")
        rng = np.random.default_rng(cfg.seed)
        order = rng.permutation(len(samples))
        n_val = max(1, int(len(samples) * cfg.validation_fraction))
        val_samples = [samples[i] for i in order[:n_val]]
        train_samples = [samples[i] for i in order[n_val:]]

        # Epoch-persistent collation: length-bucketed batches are padded
        # exactly once, before the epoch loop; epochs only reshuffle the
        # batch *order* (one rng draw per epoch, identical on the fast
        # and legacy paths). Validation batches are likewise collated
        # once and reused by every evaluation.
        train_batches = self._collate_bucketed(train_samples)
        val_batches = self._collate_bucketed(val_samples)
        use_fast = cfg.fast_path and hasattr(self.model, "forward_backward")

        current_lr = cfg.learning_rate

        def make_optimizer(lr: float):
            opt = Adam(self.model.parameters(), lr=lr,
                       weight_decay=cfg.weight_decay)
            sched = (StepLR(opt, cfg.lr_decay_epochs, cfg.lr_decay_gamma)
                     if cfg.lr_decay_epochs else None)
            return opt, sched

        optimizer, scheduler = make_optimizer(current_lr)
        result = TrainResult()
        best_val = np.inf
        best_train = np.inf
        best_state = self.model.state_dict()
        patience_left = cfg.early_stopping_patience
        start = self.clock()

        for epoch in range(cfg.epochs):
            epoch_start = self.clock()
            self.model.train()
            perm = rng.permutation(len(train_batches))
            epoch_loss = 0.0
            batches = 0
            samples_seen = 0
            for bi in perm:
                batch = train_batches[bi]
                optimizer.zero_grad()
                if use_fast:
                    # Analytic gradients straight into .grad; the loss
                    # value is still computed through the module-level
                    # mse_loss so fault injection and monkeypatching
                    # see the same call sites as the legacy path.
                    _, pred_np = self.model.forward_backward(batch)
                    loss = mse_loss(Tensor(pred_np), Tensor(batch.targets))
                else:
                    pred = self.model(batch)
                    loss = mse_loss(pred, Tensor(batch.targets))
                    loss.backward()
                clip_grad_norm(optimizer.parameters, cfg.grad_clip)
                optimizer.step()
                epoch_loss += loss.item()
                batches += 1
                samples_seen += batch.size
            train_loss = epoch_loss / max(batches, 1)
            val_loss = self._evaluate_batches(val_batches)
            result.train_losses.append(train_loss)
            result.val_losses.append(val_loss)
            epoch_seconds = self.clock() - epoch_start
            result.epoch_seconds.append(epoch_seconds)
            throughput = samples_seen / epoch_seconds if epoch_seconds > 0 else 0.0
            result.samples_per_sec.append(throughput)
            obs.observe("train.epoch_seconds", epoch_seconds,
                        help="Wall-clock per training epoch")
            obs.observe("train.samples_per_sec", throughput,
                        help="Training throughput per epoch")
            obs.inc("train.batches", batches,
                    help="Training batches processed")
            obs.emit_event("trainer", "epoch", epoch=epoch,
                           train_loss=train_loss, val_loss=val_loss,
                           learning_rate=getattr(optimizer, "lr", current_lr),
                           seconds=epoch_seconds, throughput=throughput)

            divergence = self._divergence_reason(train_loss, val_loss, best_train)
            if divergence is not None:
                self.model.load_state_dict(best_state)
                current_lr *= 0.5
                event = RecoveryEvent(epoch=epoch, reason=divergence,
                                      learning_rate=current_lr)
                result.recoveries.append(event)
                obs.inc("train.recoveries",
                        help="Divergence recoveries during fit()")
                obs.emit_event("trainer", "recovery", epoch=epoch,
                               reason=divergence, learning_rate=current_lr)
                if cfg.verbose:
                    print(f"epoch {epoch:3d}  DIVERGED ({divergence}); "
                          f"rolled back, lr -> {current_lr:g}")
                if len(result.recoveries) > cfg.divergence_max_recoveries:
                    self.model.eval()
                    result.train_seconds = self.clock() - start
                    raise TrainingError(
                        f"training diverged {len(result.recoveries)} times "
                        f"(last: {divergence} at epoch {epoch}); model rolled "
                        "back to its best finite state")
                optimizer, scheduler = make_optimizer(current_lr)
                patience_left = cfg.early_stopping_patience
                continue

            if scheduler is not None:
                scheduler.step()
            if cfg.verbose:
                print(f"epoch {epoch:3d}  train={train_loss:.4f}  val={val_loss:.4f}")
            best_train = min(best_train, train_loss)
            if val_loss < best_val - 1e-6:
                best_val = val_loss
                best_state = self.model.state_dict()
                result.best_epoch = epoch
                patience_left = cfg.early_stopping_patience
            else:
                patience_left -= 1
                if patience_left <= 0:
                    break
        self.model.load_state_dict(best_state)
        self.model.eval()
        self._require_finite_parameters()
        result.train_seconds = self.clock() - start
        obs.set_gauge("train.epochs_run", len(result.train_losses))
        obs.set_gauge("train.best_epoch", result.best_epoch)
        obs.emit_event("trainer", "fit_complete",
                       epochs=len(result.train_losses),
                       best_epoch=result.best_epoch,
                       recoveries=len(result.recoveries),
                       train_seconds=result.train_seconds)
        return result

    def _divergence_reason(self, train_loss: float, val_loss: float,
                           best_train: float) -> str | None:
        """Why this epoch counts as diverged, or ``None`` when healthy."""
        if not (np.isfinite(train_loss) and np.isfinite(val_loss)):
            return f"non-finite loss (train={train_loss}, val={val_loss})"
        factor = self.config.divergence_spike_factor
        if np.isfinite(best_train) and train_loss > factor * max(best_train, 1e-12):
            return (f"loss spike (train={train_loss:.4g} > "
                    f"{factor:g} x best {best_train:.4g})")
        return None

    def _require_finite_parameters(self) -> None:
        """Refuse to hand back a model with NaN/Inf parameters."""
        for name, param in self.model.named_parameters():
            if not np.all(np.isfinite(param.data)):
                raise TrainingError(
                    f"fitted model parameter {name!r} contains non-finite "
                    "values — training never produced a finite state")

    def _collate_bucketed(self, samples: list[TrainingSample]) -> list[RAALBatch]:
        """Collate samples into length-bucketed, padded batches — once.

        Samples are stably sorted by node count so a batch of short
        plans is not padded to the longest plan in the split; the
        resulting batches are reused across every epoch (only their
        order is reshuffled), removing per-epoch re-padding.
        """
        if not samples:
            return []
        order = np.argsort([s.encoded.num_nodes for s in samples], kind="stable")
        bs = self.config.batch_size
        return [collate([samples[i] for i in order[lo : lo + bs]])
                for lo in range(0, len(samples), bs)]

    def _evaluate_batches(self, batches: list[RAALBatch]) -> float:
        """Mean MSE (log space) over pre-collated batches, in eval mode.

        With ``fast_path`` the forward runs through the fused graph-free
        :meth:`RAAL.forward_inference`; the loss value itself always
        goes through the module-level :func:`mse_loss` (same call sites
        as the legacy path, so fault injection keeps working).
        """
        if not batches:
            raise TrainingError("cannot evaluate on an empty sample list")
        self.model.eval()
        use_fast = (self.config.fast_path
                    and hasattr(self.model, "forward_inference"))
        total = 0.0
        count = 0
        with no_grad():
            for batch in batches:
                if use_fast:
                    pred = Tensor(self.model.forward_inference(batch))
                else:
                    pred = self.model(batch)
                total += mse_loss(pred, Tensor(batch.targets)).item() * batch.size
                count += batch.size
        return total / count

    def evaluate_loss(self, samples: list[TrainingSample]) -> float:
        """Mean MSE (log space) over samples, in eval mode."""
        if not samples:
            raise TrainingError("cannot evaluate on an empty sample list")
        return self._evaluate_batches(self._collate_bucketed(samples))

    def bucket_executor(self):
        """The default (f64, single-thread) execution engine."""
        if self._executor is None:
            from repro.core.execution import BucketExecutor
            self._executor = BucketExecutor(
                self.model, self.config.batch_size)
        return self._executor

    def predict_log(self, encoded: list[EncodedPlan], fast: bool = True,
                    bucket: bool = True, executor=None,
                    deadline=None) -> np.ndarray:
        """Log-space predictions for encoded plans.

        The entire path runs under :func:`no_grad` — no autograd graph
        is built or retained. Two inference optimizations are on by
        default:

        * ``fast`` — use the graph-free fused forward
          (:meth:`RAAL.forward_inference`) instead of the
          Tensor/autograd forward; numerically equivalent to ≤ 1e-8.
        * ``bucket`` — sort plans by node count before batching, so a
          batch of short plans is not padded to the longest plan in the
          workload. Output order always matches the input order.

        ``executor`` optionally supplies a configured
        :class:`~repro.core.execution.BucketExecutor` (precision tier,
        bucket-level threading); the default engine runs float64 on the
        calling thread and is bit-identical to the pre-engine path.
        ``deadline`` bounds the forward — expiry raises
        :class:`~repro.errors.DeadlineExceeded` instead of returning a
        late answer.
        """
        if not encoded:
            return np.zeros(0)
        engine = executor if executor is not None else self.bucket_executor()
        with obs.span("forward", plans=len(encoded), fast=fast,
                      bucket=bucket, precision=engine.precision) as sp:
            start = self.clock()
            preds, batches = engine.predict_log(encoded, fast=fast,
                                                bucket=bucket,
                                                deadline=deadline)
            sp.annotate(batches=batches)
            obs.observe("predict.forward_seconds", self.clock() - start,
                        help="Model forward latency per predict call")
        return preds

    def _seconds_from_log(self, log_preds: np.ndarray) -> np.ndarray:
        """Clamp + ``expm1`` with saturation accounting (shared logic)."""
        hi = self.config.log_clamp_max
        self.last_saturated = int(np.count_nonzero(log_preds > hi))
        if self.last_saturated:
            obs.inc("predict.saturated_total", self.last_saturated,
                    help="Predictions clamped at log_clamp_max")
        return np.expm1(np.clip(log_preds, 0.0, hi))

    def predict_seconds(self, encoded: list[EncodedPlan], fast: bool = True,
                        bucket: bool = True, executor=None,
                        deadline=None) -> np.ndarray:
        """Predicted costs in seconds (inverse of the log transform).

        Log-space predictions are clamped to ``[0, log_clamp_max]``
        before ``expm1``. Predictions that hit the upper clamp are
        *saturated* — the model asked for a cost beyond its trained
        range — and their count is surfaced in :attr:`last_saturated`
        rather than silently hidden (the guarded predictor treats a
        saturated batch as a degradation trigger).
        """
        log_preds = self.predict_log(encoded, fast=fast, bucket=bucket,
                                     executor=executor, deadline=deadline)
        return self._seconds_from_log(log_preds)
