"""High-level cost prediction API (the "cost prediction" phase, Fig. 3)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.cluster.resources import ResourceProfile
from repro.core.execution import BucketExecutor
from repro.core.trainer import Trainer
from repro.encoding.plan_encoder import EncodedPlan, PlanEncoder
from repro.nn.precision import DEFAULT_PRECISION, resolve_dtype
from repro.plan.physical import PhysicalPlan

__all__ = ["CostPredictor", "PredictorConfig"]


@dataclass(frozen=True)
class PredictorConfig:
    """Serving-side execution policy for a :class:`CostPredictor`.

    The default configuration is **bit-identical** to the historical
    predictor: float64 weights, single-threaded bucket execution, grids
    evaluated pairwise.
    """

    #: Precision tier: ``"f64"`` (exact legacy behavior), ``"f32"``
    #: (reduced-precision kernels), or ``"int8"`` (per-channel weight
    #: quantization, float32 execution over the dequantized cache).
    precision: str = DEFAULT_PRECISION
    #: Bucket-level parallelism inside predict calls. ``1`` stays on
    #: the calling thread; ``0``/``None`` means one worker per core.
    threads: int | None = 1
    #: Evaluate ``predict_grid`` through the factored plan-side/
    #: resource-side kernel (one plan-side pass per *plan* instead of
    #: per *pair*). Off by default: the pairwise path is the
    #: bit-for-bit legacy behavior; the factored kernel is numerically
    #: equivalent only to float rounding.
    factor_grids: bool = False


class CostPredictor:
    """Predicts execution costs for (plan, resources) pairs.

    Bundles a fitted :class:`~repro.encoding.plan_encoder.PlanEncoder`
    and a trained model so downstream code (the plan selector, the
    benchmarks) can ask for costs directly.

    Prediction runs on the inference fast path by default: plan-side
    features are served from the encoder's LRU cache, the model forward
    is graph-free (no autograd), and batches are length-bucketed. Pass
    ``fast=False`` to force the Tensor/autograd forward (still under
    ``no_grad``); predictions agree to ≤ 1e-8.

    A :class:`PredictorConfig` selects the execution policy — precision
    tier (f64 / f32 / int8), bucket-parallel threading, and factored
    grid evaluation. The default config reproduces the historical
    float64 single-threaded behavior bit for bit.

    This class is the *unguarded* path: encoding or forward failures
    propagate to the caller. Serving code that must never crash plan
    selection should wrap it in
    :class:`repro.reliability.guard.GuardedCostPredictor`, which adds
    input validation and the RAAL → GPSJ → heuristic fallback chain.
    """

    def __init__(self, encoder: PlanEncoder, trainer: Trainer,
                 config: PredictorConfig | None = None,
                 quality=None) -> None:
        self.encoder = encoder
        self.trainer = trainer
        self.config = config or PredictorConfig()
        resolve_dtype(self.config.precision)  # validate eagerly
        # Optional repro.obs.quality.AccuracyTracker; built lazily on
        # first record_observation when the caller didn't supply one.
        self.quality = quality
        self._executor: BucketExecutor | None = None

    def configured(self, config: PredictorConfig) -> "CostPredictor":
        """A predictor sharing this one's encoder/model under ``config``.

        The quality tracker is shared too: ladder-degraded tier
        predictors report into the same feedback accounting as the base
        tier, distinguished by the ``tier`` scope of each sample.
        """
        return CostPredictor(self.encoder, self.trainer, config,
                             quality=self.quality)

    def record_observation(self, prediction_seconds: float,
                           observed_seconds: float, *,
                           tier: str | None = None,
                           workload: str | None = None) -> float:
        """Feed one (prediction, observed runtime) pair back.

        The direct feedback API for callers that track their own
        request identity (the guarded predictor offers the audit-ring
        variant keyed by request id). Folds the pair into the
        predictor's :class:`~repro.obs.quality.AccuracyTracker`
        (created on first use when not injected), under the configured
        precision tier unless ``tier`` overrides it. Returns the
        sample's q-error (``nan`` for unusable ground truth).
        """
        if self.quality is None:
            # Imported lazily: repro.obs.quality is cheap, but the
            # predictor core should not force the quality layer on
            # programs that never feed observations back.
            from repro.obs.quality import AccuracyTracker

            self.quality = AccuracyTracker()
        return self.quality.record(prediction_seconds, observed_seconds,
                                   tier=tier or self.config.precision,
                                   workload=workload)

    @property
    def executor(self) -> BucketExecutor:
        """The lazily-built execution engine for this config."""
        if self._executor is None:
            self._executor = BucketExecutor(
                self.trainer.model, self.trainer.config.batch_size,
                precision=self.config.precision, threads=self.config.threads)
        return self._executor

    def close(self) -> None:
        """Release the engine's worker pool (idempotent)."""
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    def predict(self, plan: PhysicalPlan, resources: ResourceProfile,
                deadline=None) -> float:
        """Predicted cost (seconds) of running ``plan`` under ``resources``."""
        return float(self.predict_many([(plan, resources)],
                                       deadline=deadline)[0])

    def predict_encoded(self, encoded: list[EncodedPlan],
                        fast: bool = True, deadline=None) -> np.ndarray:
        """Predicted costs (seconds) for already-encoded pairs.

        The execution entry point shared by :meth:`predict_many` and
        the guarded predictor's RAAL stage — both route through the
        configured engine, so precision, threading, and deadline policy
        apply under the fallback chain too.
        """
        return self.trainer.predict_seconds(encoded, fast=fast,
                                            executor=self.executor,
                                            deadline=deadline)

    def predict_many(self, pairs: list[tuple[PhysicalPlan, ResourceProfile]],
                     fast: bool = True, deadline=None) -> np.ndarray:
        """Vector of predicted costs for many (plan, resources) pairs.

        Repeated plans across pairs are encoded once (the encoder
        dedups within the call and memoizes across calls). ``deadline``
        (a :class:`~repro.reliability.deadline.Deadline`) bounds the
        call; expiry raises :class:`~repro.errors.DeadlineExceeded`.
        """
        with obs.span("predict", pairs=len(pairs), fast=fast):
            start = self.trainer.clock()
            obs.inc("predict.requests_total",
                    help="CostPredictor batch prediction calls")
            obs.inc("predict.pairs_total", len(pairs),
                    help="(plan, resources) pairs predicted")
            encoded = self.encoder.encode_many(pairs)
            if deadline is not None:
                deadline.check("after encode")
            costs = self.predict_encoded(encoded, fast=fast, deadline=deadline)
            obs.observe("predict.latency_seconds", self.trainer.clock() - start,
                        help="End-to-end predict_many latency")
            return costs

    def predict_grid(self, plans: list[PhysicalPlan],
                     profiles: list[ResourceProfile],
                     fast: bool = True, deadline=None) -> np.ndarray:
        """Cost matrix ``(len(profiles), len(plans))`` for a full grid.

        The plan-selection / resource-recommendation workload: every
        plan scored under every resource profile. Each plan is encoded
        exactly once regardless of the number of profiles.

        With ``config.factor_grids`` (and ``fast=True``) the grid runs
        through the factored kernel: the plan-side network (embedding,
        LSTM, node attention) executes once per *plan*, and the
        resource side scores all profiles in batched GEMMs — the same
        math regrouped, equivalent to the pairwise path to float
        rounding at the configured precision.
        """
        factored = bool(self.config.factor_grids and fast and plans and profiles)
        annotations = {"plans": len(plans), "profiles": len(profiles)}
        if factored:
            annotations["factored"] = True
        with obs.span("predict_grid", **annotations):
            obs.inc("predict.grids_total",
                    help="CostPredictor grid prediction calls")
            if factored:
                return self._predict_grid_factored(plans, profiles,
                                                   deadline=deadline)
            pairs = [(plan, profile) for profile in profiles for plan in plans]
            costs = self.predict_many(pairs, fast=fast, deadline=deadline)
            return costs.reshape(len(profiles), len(plans))

    def _predict_grid_factored(self, plans: list[PhysicalPlan],
                               profiles: list[ResourceProfile],
                               deadline=None) -> np.ndarray:
        start = self.trainer.clock()
        # One encode per plan; the attached resource vector is a
        # placeholder — the factored kernel takes the profile matrix
        # separately.
        encoded = self.encoder.encode_many([(p, profiles[0]) for p in plans])
        if deadline is not None:
            deadline.check("after encode")
        profile_features = np.stack([p.as_features() for p in profiles])
        log_grid, _ = self.executor.predict_log_grid(encoded, profile_features,
                                                     deadline=deadline)
        costs = self.trainer._seconds_from_log(log_grid.ravel())
        obs.observe("predict.latency_seconds", self.trainer.clock() - start,
                    help="End-to-end predict_many latency")
        return costs.reshape(len(profiles), len(plans))
