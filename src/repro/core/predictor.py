"""High-level cost prediction API (the "cost prediction" phase, Fig. 3)."""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.cluster.resources import ResourceProfile
from repro.core.trainer import Trainer
from repro.encoding.plan_encoder import PlanEncoder
from repro.plan.physical import PhysicalPlan

__all__ = ["CostPredictor"]


class CostPredictor:
    """Predicts execution costs for (plan, resources) pairs.

    Bundles a fitted :class:`~repro.encoding.plan_encoder.PlanEncoder`
    and a trained model so downstream code (the plan selector, the
    benchmarks) can ask for costs directly.

    Prediction runs on the inference fast path by default: plan-side
    features are served from the encoder's LRU cache, the model forward
    is graph-free (no autograd), and batches are length-bucketed. Pass
    ``fast=False`` to force the Tensor/autograd forward (still under
    ``no_grad``); predictions agree to ≤ 1e-8.

    This class is the *unguarded* path: encoding or forward failures
    propagate to the caller. Serving code that must never crash plan
    selection should wrap it in
    :class:`repro.reliability.guard.GuardedCostPredictor`, which adds
    input validation and the RAAL → GPSJ → heuristic fallback chain.
    """

    def __init__(self, encoder: PlanEncoder, trainer: Trainer) -> None:
        self.encoder = encoder
        self.trainer = trainer

    def predict(self, plan: PhysicalPlan, resources: ResourceProfile) -> float:
        """Predicted cost (seconds) of running ``plan`` under ``resources``."""
        return float(self.predict_many([(plan, resources)])[0])

    def predict_many(self, pairs: list[tuple[PhysicalPlan, ResourceProfile]],
                     fast: bool = True) -> np.ndarray:
        """Vector of predicted costs for many (plan, resources) pairs.

        Repeated plans across pairs are encoded once (the encoder
        dedups within the call and memoizes across calls).
        """
        with obs.span("predict", pairs=len(pairs), fast=fast):
            start = self.trainer.clock()
            obs.inc("predict.requests_total",
                    help="CostPredictor batch prediction calls")
            obs.inc("predict.pairs_total", len(pairs),
                    help="(plan, resources) pairs predicted")
            encoded = self.encoder.encode_many(pairs)
            costs = self.trainer.predict_seconds(encoded, fast=fast)
            obs.observe("predict.latency_seconds", self.trainer.clock() - start,
                        help="End-to-end predict_many latency")
            return costs

    def predict_grid(self, plans: list[PhysicalPlan],
                     profiles: list[ResourceProfile],
                     fast: bool = True) -> np.ndarray:
        """Cost matrix ``(len(profiles), len(plans))`` for a full grid.

        The plan-selection / resource-recommendation workload: every
        plan scored under every resource profile. Each plan is encoded
        exactly once regardless of the number of profiles.
        """
        with obs.span("predict_grid", plans=len(plans),
                      profiles=len(profiles)):
            obs.inc("predict.grids_total",
                    help="CostPredictor grid prediction calls")
            pairs = [(plan, profile) for profile in profiles for plan in plans]
            costs = self.predict_many(pairs, fast=fast)
            return costs.reshape(len(profiles), len(plans))
