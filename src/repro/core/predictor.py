"""High-level cost prediction API (the "cost prediction" phase, Fig. 3)."""

from __future__ import annotations

import numpy as np

from repro.cluster.resources import ResourceProfile
from repro.core.trainer import Trainer
from repro.encoding.plan_encoder import PlanEncoder
from repro.plan.physical import PhysicalPlan

__all__ = ["CostPredictor"]


class CostPredictor:
    """Predicts execution costs for (plan, resources) pairs.

    Bundles a fitted :class:`~repro.encoding.plan_encoder.PlanEncoder`
    and a trained model so downstream code (the plan selector, the
    benchmarks) can ask for costs directly.
    """

    def __init__(self, encoder: PlanEncoder, trainer: Trainer) -> None:
        self.encoder = encoder
        self.trainer = trainer

    def predict(self, plan: PhysicalPlan, resources: ResourceProfile) -> float:
        """Predicted cost (seconds) of running ``plan`` under ``resources``."""
        return float(self.predict_many([(plan, resources)])[0])

    def predict_many(self, pairs: list[tuple[PhysicalPlan, ResourceProfile]]) -> np.ndarray:
        """Vector of predicted costs for many (plan, resources) pairs."""
        encoded = self.encoder.encode_many(pairs)
        return self.trainer.predict_seconds(encoded)
