"""Plan selection: use the learned cost model to pick execution plans.

This is the end use of the paper's model (its Fig. 1): for each query,
enumerate Catalyst's candidate physical plans and execute the one the
cost model predicts to be fastest given the *current* resources —
versus the rule-based Catalyst default choice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.resources import ResourceProfile
from repro.core.predictor import CostPredictor
from repro.data.catalog import Catalog
from repro.errors import PlanError
from repro.plan.builder import AnalyzedQuery
from repro.plan.enumerator import EnumeratorConfig, enumerate_plans
from repro.plan.physical import PhysicalPlan

__all__ = ["SelectionResult", "PlanSelector"]


@dataclass
class SelectionResult:
    """Outcome of selecting a plan for one query."""

    chosen: PhysicalPlan
    default: PhysicalPlan
    candidates: list[PhysicalPlan]
    predicted_costs: np.ndarray

    @property
    def chose_default(self) -> bool:
        """Whether the model picked the same plan as the rule-based default."""
        return self.chosen.signature() == self.default.signature()


class PlanSelector:
    """Selects the predicted-cheapest plan for a query under resources."""

    def __init__(self, predictor: CostPredictor, catalog: Catalog,
                 config: EnumeratorConfig | None = None) -> None:
        self.predictor = predictor
        self.catalog = catalog
        self.config = config or EnumeratorConfig()

    def select(self, query: AnalyzedQuery, resources: ResourceProfile,
               candidates: list[PhysicalPlan] | None = None,
               fast: bool = True) -> SelectionResult:
        """Pick the best plan for ``query`` given ``resources``.

        ``candidates`` may be supplied when the caller already
        enumerated (and possibly executed) the plans; otherwise they
        are enumerated here. The first candidate is always the
        Catalyst-style default plan.

        Selection runs on the inference fast path; re-selecting the
        same candidates under different resource states (the Fig. 1
        loop) reuses the encoder's cached plan-side features, so only
        the resource vector and the model forward are recomputed.
        """
        plans = candidates or enumerate_plans(query, self.catalog, self.config)
        if not plans:
            raise PlanError("no candidate plans to select from")
        costs = self.predictor.predict_many(
            [(p, resources) for p in plans], fast=fast)
        best = int(np.argmin(costs))
        return SelectionResult(
            chosen=plans[best],
            default=plans[0],
            candidates=list(plans),
            predicted_costs=costs,
        )
