"""Plan selection: use the learned cost model to pick execution plans.

This is the end use of the paper's model (its Fig. 1): for each query,
enumerate Catalyst's candidate physical plans and execute the one the
cost model predicts to be fastest given the *current* resources —
versus the rule-based Catalyst default choice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.cluster.resources import ResourceProfile
from repro.core.predictor import CostPredictor
from repro.data.catalog import Catalog
from repro.errors import PlanError
from repro.plan.builder import AnalyzedQuery
from repro.plan.enumerator import EnumeratorConfig, enumerate_plans
from repro.plan.physical import PhysicalPlan

__all__ = ["SelectionResult", "PlanSelector"]


@dataclass
class SelectionResult:
    """Outcome of selecting a plan for one query.

    ``cost_source`` / ``degradation_reason`` carry provenance when the
    predictor is a
    :class:`~repro.reliability.guard.GuardedCostPredictor`: which model
    in the fallback chain produced the costs, and why the chain
    degraded (``None`` when the learned model answered).
    """

    chosen: PhysicalPlan
    default: PhysicalPlan
    candidates: list[PhysicalPlan]
    predicted_costs: np.ndarray
    cost_source: str = "raal"
    degradation_reason: str | None = None

    @property
    def chose_default(self) -> bool:
        """Whether the model picked the same plan as the rule-based default."""
        return self.chosen.signature() == self.default.signature()

    @property
    def degraded(self) -> bool:
        """Whether the costs came from a fallback stage, not the learned model."""
        return self.cost_source != "raal"


class PlanSelector:
    """Selects the predicted-cheapest plan for a query under resources."""

    def __init__(self, predictor: CostPredictor, catalog: Catalog,
                 config: EnumeratorConfig | None = None) -> None:
        self.predictor = predictor
        self.catalog = catalog
        self.config = config or EnumeratorConfig()

    def select(self, query: AnalyzedQuery, resources: ResourceProfile,
               candidates: list[PhysicalPlan] | None = None,
               fast: bool = True) -> SelectionResult:
        """Pick the best plan for ``query`` given ``resources``.

        ``candidates`` may be supplied when the caller already
        enumerated (and possibly executed) the plans; otherwise they
        are enumerated here. The first candidate is always the
        Catalyst-style default plan.

        Selection runs on the inference fast path; re-selecting the
        same candidates under different resource states (the Fig. 1
        loop) reuses the encoder's cached plan-side features, so only
        the resource vector and the model forward are recomputed.
        """
        plans = candidates or enumerate_plans(query, self.catalog, self.config)
        if not plans:
            raise PlanError("no candidate plans to select from")
        with obs.span("select", candidates=len(plans)) as sp:
            obs.inc("selector.selections_total", help="Plan selections")
            pairs = [(p, resources) for p in plans]
            source, reason = "raal", None
            if hasattr(self.predictor, "predict_many_explained"):
                # Guarded predictor: run the fallback chain and keep the
                # provenance it reports.
                explained = self.predictor.predict_many_explained(pairs, fast=fast)
                costs, source, reason = explained.costs, explained.source, explained.reason
            else:
                costs = self.predictor.predict_many(pairs, fast=fast)
            if source != "raal":
                obs.inc("selector.degraded_total",
                        help="Selections served by a fallback cost source")
            sp.annotate(source=source)
            best = int(np.argmin(costs))
        return SelectionResult(
            chosen=plans[best],
            default=plans[0],
            candidates=list(plans),
            predicted_costs=costs,
            cost_source=source,
            degradation_reason=reason,
        )
