"""Precision-tiered, bucket-parallel execution engine for inference.

:class:`BucketExecutor` owns the prediction hot loop that used to live
inline in :meth:`Trainer.predict_log`:

* **Length bucketing** — plans are stable-sorted by node count before
  batching, so a batch of short plans is never padded to the longest
  plan in the workload. Same order and batch composition as before, so
  the default configuration is bit-identical to the pre-engine path.
* **Precision tiers** — the forward runs over an
  :class:`~repro.nn.precision.InferenceWeights` bundle (f64 / f32 /
  int8); collation pads directly into the execution dtype.
* **Bucket parallelism** — with ``threads > 1`` the independent
  per-bucket forwards run on a thread pool. numpy releases the GIL
  inside BLAS and the large elementwise sweeps, so buckets genuinely
  overlap on multi-core hosts. Workers write disjoint slices of the
  output array; each worker collates into its own thread-local
  :class:`~repro.nn.arena.ScratchArena`.
* **Arena collation** — inference does not need the training collate's
  Tensor targets or fresh allocations; pads are written into grow-only
  per-thread scratch buffers, so a steady-state request stream performs
  no collation allocations at all.
* **Factored grids** — :meth:`predict_log_grid` evaluates a
  ``plans × profiles`` grid through
  :func:`~repro.nn.inference.raal_grid_inference`, running the
  plan-side network once per *plan* instead of once per *pair*.
* **Deadlines** — both predict paths accept a
  :class:`~repro.reliability.deadline.Deadline`. The serial path
  checks it cooperatively before every bucket; the threaded path adds
  a watchdog wait over the bucket futures that abandons late work
  (queued buckets are cancelled, running buckets finish into the
  abandoned output array) and raises the typed
  :class:`~repro.errors.DeadlineExceeded` promptly. A hung worker can
  therefore never block the caller past its budget.
* **Prompt error propagation** — a fault in any bucket worker cancels
  every not-yet-started bucket and re-raises on the caller's thread
  immediately; the pool itself stays healthy for subsequent requests.

The autograd fallback (``fast=False``) stays float64-only: it exists to
cross-check the fused kernels against the training graph, which is a
float64 artifact.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait

import numpy as np

from repro import obs
from repro.core.raal import RAALBatch
from repro.errors import DeadlineExceeded, PredictionError
from repro.nn.arena import ScratchArena, thread_local_arena
from repro.nn.precision import (
    DEFAULT_PRECISION,
    InferenceWeights,
    inference_weights,
)
from repro.nn.inference import raal_grid_inference
from repro.nn.tensor import no_grad

__all__ = ["BucketExecutor", "collate_inference", "resolve_threads"]


def resolve_threads(threads: int | None) -> int:
    """Effective worker count: ``None``/``0`` means one per CPU core."""
    if threads is None or threads <= 0:
        return os.cpu_count() or 1
    return int(threads)


def collate_inference(encoded: list, dtype: np.dtype,
                      arena: ScratchArena | None = None) -> RAALBatch:
    """Zero-pad encoded plans into an inference-only :class:`RAALBatch`.

    The inference twin of :func:`repro.core.trainer.collate`: identical
    padding and batch layout (so bucketed predictions are bit-identical
    to the training collate at float64), but it skips TrainingSample
    wrapping and targets, casts directly into the execution ``dtype``,
    and — when given an ``arena`` — writes into reusable scratch
    buffers instead of fresh allocations. Arena-backed batches are only
    valid until the same thread's next collate call.
    """
    if not encoded:
        raise PredictionError("cannot collate an empty batch")
    n = max(e.num_nodes for e in encoded)
    batch = len(encoded)
    node_dim = encoded[0].node_features.shape[1]

    def zeros(key, shape, dt):
        if arena is None:
            return np.zeros(shape, dtype=dt)
        return arena.zeros(key, shape, dt)

    def empty(key, shape, dt):
        if arena is None:
            return np.empty(shape, dtype=dt)
        return arena.empty(key, shape, dt)

    feats = zeros("collate.feats", (batch, n, node_dim), dtype)
    child = zeros("collate.child", (batch, n, n), np.bool_)
    mask = zeros("collate.mask", (batch, n), np.bool_)
    resources = empty("collate.resources", (batch, len(encoded[0].resources)), dtype)
    extras = empty("collate.extras", (batch, len(encoded[0].extras)), dtype)
    for i, e in enumerate(encoded):
        k = e.num_nodes
        feats[i, :k] = e.node_features
        child[i, :k, :k] = e.child_mask
        mask[i, :k] = True
        resources[i] = e.resources
        extras[i] = e.extras
    return RAALBatch(node_features=feats, child_mask=child, node_mask=mask,
                     resources=resources, extras=extras)


class BucketExecutor:
    """Runs length-bucketed model forwards at a fixed precision tier.

    Parameters
    ----------
    model:
        A RAAL-family model (must expose the staged inference kernels).
    batch_size:
        Max plans per bucket (usually ``TrainerConfig.batch_size``).
    precision:
        ``"f64"`` (default, bit-identical to the legacy path), ``"f32"``,
        or ``"int8"``.
    threads:
        Bucket-level parallelism. ``1`` (default) stays single-threaded
        on the caller's thread; ``None``/``0`` means one worker per CPU
        core. The pool is created lazily and kept for the executor's
        lifetime.
    """

    def __init__(self, model, batch_size: int,
                 precision: str = DEFAULT_PRECISION,
                 threads: int | None = 1) -> None:
        self.model = model
        self.batch_size = int(batch_size)
        self.precision = precision
        self.threads = resolve_threads(threads)
        self._pool: ThreadPoolExecutor | None = None

    # -- lifecycle -----------------------------------------------------------
    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.threads,
                thread_name_prefix="repro-bucket")
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent, safe to call twice).

        Queued-but-unstarted work is cancelled so an executor poisoned
        by abandoned (deadline-expired) buckets still closes promptly;
        buckets already running are allowed to finish. A closed
        executor remains usable — the next predict call lazily builds a
        fresh pool.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "BucketExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- execution -----------------------------------------------------------
    def weights(self) -> InferenceWeights:
        """The current weight bundle (cached per model version)."""
        return inference_weights(self.model, self.precision)

    def _bucket_order(self, lengths: list[int], bucket: bool) -> np.ndarray:
        if bucket:
            return np.argsort(lengths, kind="stable")
        return np.arange(len(lengths))

    def _run_buckets(self, slices: list[np.ndarray], run, parallel: bool,
                     deadline) -> None:
        """Execute ``run`` over every bucket, honouring the deadline.

        Serial path: cooperative — the deadline is checked before each
        bucket (``run`` itself re-checks at bucket start, so the
        threaded workers share the same guard).

        Threaded path: the buckets are submitted to the pool and the
        caller becomes a *watchdog*: it waits on the futures with the
        deadline's remaining budget as timeout. On expiry, queued
        buckets are cancelled, running ones are abandoned (they finish
        writing into the output array nobody will read — disjoint
        slices, so this is safe), and :class:`DeadlineExceeded` is
        raised promptly. On a worker fault, pending buckets are
        cancelled and the fault re-raises immediately — the pool is
        never poisoned and the caller never deadlocks on its siblings.
        """
        if not parallel:
            for idx in slices:
                if deadline is not None:
                    deadline.check("between buckets")
                run(idx)
            if deadline is not None:
                deadline.check("after final bucket")
            return
        pool = self._ensure_pool()
        pending = set(pool.submit(run, idx) for idx in slices)
        try:
            while pending:
                timeout = None
                if deadline is not None:
                    timeout = max(deadline.remaining(), 0.0)
                done, pending = wait(pending, timeout=timeout,
                                     return_when=FIRST_COMPLETED)
                for future in done:
                    exc = future.exception()
                    if exc is not None:
                        raise exc
                if deadline is not None and pending and deadline.expired():
                    raise DeadlineExceeded(
                        f"{len(pending)} of {len(slices)} buckets abandoned "
                        f"past the deadline "
                        f"(overrun {-deadline.remaining() * 1e3:.1f}ms)")
        except BaseException:
            for future in pending:
                future.cancel()
            raise
        if deadline is not None:
            deadline.check("after final bucket")

    def predict_log(self, encoded: list, fast: bool = True,
                    bucket: bool = True, deadline=None) -> tuple[np.ndarray, int]:
        """Log-space predictions for encoded plans.

        Returns ``(predictions, n_batches)`` with predictions in input
        order. ``fast=False`` forces the Tensor/autograd forward
        (float64 tier only — it cross-checks against the training
        graph, which is a float64 artifact). ``deadline`` bounds the
        call: expiry raises :class:`~repro.errors.DeadlineExceeded`
        instead of returning a late answer.
        """
        if not encoded:
            return np.zeros(0), 0
        if not fast and self.precision != "f64":
            raise PredictionError(
                f"the autograd fallback (fast=False) only supports the f64 "
                f"tier, not {self.precision!r}")
        if deadline is not None:
            deadline.check("before predict")
        self.model.eval()
        weights = self.weights() if fast else None
        order = self._bucket_order([e.num_nodes for e in encoded], bucket)
        preds = np.empty(len(encoded))
        slices = [order[lo : lo + self.batch_size]
                  for lo in range(0, len(order), self.batch_size)]

        def run(idx: np.ndarray) -> None:
            if deadline is not None:
                deadline.check("at bucket start")
            batch = collate_inference(
                [encoded[i] for i in idx],
                weights.dtype if weights is not None else np.float64,
                arena=thread_local_arena())
            with no_grad():
                if fast:
                    out = self.model.forward_inference(batch, weights)
                else:
                    out = self.model(batch).numpy()
            # Disjoint index sets per bucket: concurrent writes are safe.
            preds[idx] = out

        try:
            # A deadline forces the watchdog even for a single bucket:
            # the serial path can only cancel *between* buckets, so a
            # lone hung bucket would overrun the budget by its full
            # runtime instead of being abandoned at expiry.
            self._run_buckets(
                slices, run,
                parallel=(self.threads > 1 and fast
                          and (len(slices) > 1 or deadline is not None)),
                deadline=deadline)
        except DeadlineExceeded:
            obs.inc("predict.deadline_exceeded_total",
                    help="Predict calls abandoned past their deadline")
            raise
        return preds, len(slices)

    def predict_log_grid(self, encoded_plans: list,
                         profile_features: np.ndarray,
                         deadline=None) -> tuple[np.ndarray, int]:
        """Factored log-space grid: ``(profiles, plans)`` predictions.

        ``encoded_plans`` holds each distinct plan **once** (any
        resource vector — it is ignored); ``profile_features`` is the
        ``(P, R)`` profile matrix. Plans are length-bucketed and each
        bucket runs the plan-side network once, then scores every
        profile in a handful of flat GEMMs
        (:func:`~repro.nn.inference.raal_grid_inference`). Returns
        ``(matrix, n_batches)``.
        """
        n_profiles = profile_features.shape[0]
        if not encoded_plans:
            return np.zeros((n_profiles, 0)), 0
        if deadline is not None:
            deadline.check("before grid predict")
        self.model.eval()
        weights = self.weights()
        order = self._bucket_order([e.num_nodes for e in encoded_plans], True)
        out = np.empty((n_profiles, len(encoded_plans)))
        profiles = np.ascontiguousarray(profile_features, dtype=weights.dtype)
        slices = [order[lo : lo + self.batch_size]
                  for lo in range(0, len(order), self.batch_size)]

        def run(idx: np.ndarray) -> None:
            if deadline is not None:
                deadline.check("at bucket start")
            batch = collate_inference(
                [encoded_plans[i] for i in idx], weights.dtype,
                arena=thread_local_arena())
            with no_grad():
                grid = raal_grid_inference(
                    weights, batch.node_features, batch.child_mask,
                    batch.node_mask, batch.extras, profiles)
            out[:, idx] = grid

        try:
            self._run_buckets(
                slices, run,
                parallel=(self.threads > 1
                          and (len(slices) > 1 or deadline is not None)),
                deadline=deadline)
        except DeadlineExceeded:
            obs.inc("predict.deadline_exceeded_total",
                    help="Predict calls abandoned past their deadline")
            raise
        return out, len(slices)
