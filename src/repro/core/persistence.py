"""Save/load a trained cost predictor (model + encoder) to a directory.

A persisted predictor is a directory of three files:

* ``meta.json`` — model config, trainer config, encoder switches;
* ``model.npz`` — the RAAL parameter state dict;
* ``word2vec.npz`` — the node-semantic embedding model (absent when the
  encoder uses one-hot node semantics).

This is what a deployment stores after the (re)training phase and loads
into the query optimizer.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import asdict

from repro.core.predictor import CostPredictor
from repro.core.raal import RAAL, RAALConfig
from repro.core.trainer import Trainer, TrainerConfig
from repro.encoding.node_semantic import NodeSemanticEncoder
from repro.encoding.plan_encoder import PlanEncoder
from repro.encoding.structure import StructureEncoder
from repro.errors import TrainingError
from repro.nn.serialization import load_model, save_model
from repro.text.word2vec import Word2Vec

__all__ = ["save_predictor", "load_predictor"]

_META_FILE = "meta.json"
_MODEL_FILE = "model.npz"
_W2V_FILE = "word2vec.npz"


def save_predictor(predictor: CostPredictor, directory: str | os.PathLike) -> None:
    """Persist a trained predictor under ``directory`` (created if needed)."""
    model = predictor.trainer.model
    if not isinstance(model, RAAL):
        raise TrainingError(
            f"only RAAL-family predictors can be persisted, got {type(model).__name__}")
    path = pathlib.Path(directory)
    path.mkdir(parents=True, exist_ok=True)

    encoder = predictor.encoder
    meta = {
        "model_config": _jsonable(asdict(model.config)),
        "trainer_config": _jsonable(asdict(predictor.trainer.config)),
        "encoder": {
            "use_structure": encoder.use_structure,
            "use_onehot": encoder.use_onehot,
            "max_nodes": encoder.structure.max_nodes if encoder.structure else 48,
            "include_cardinality": (
                encoder.semantic.include_cardinality
                if encoder.semantic is not None else True),
        },
    }
    (path / _META_FILE).write_text(json.dumps(meta, indent=2))
    save_model(model, path / _MODEL_FILE)
    if encoder.semantic is not None:
        encoder.semantic.word2vec.save(path / _W2V_FILE)


def load_predictor(directory: str | os.PathLike) -> CostPredictor:
    """Restore a predictor saved by :func:`save_predictor`."""
    path = pathlib.Path(directory)
    meta_path = path / _META_FILE
    if not meta_path.exists():
        raise TrainingError(f"no persisted predictor at {path}")
    meta = json.loads(meta_path.read_text())

    model_cfg = dict(meta["model_config"])
    model_cfg["dense_sizes"] = tuple(model_cfg["dense_sizes"])
    model = RAAL(RAALConfig(**model_cfg))
    load_model(model, path / _MODEL_FILE)
    model.eval()

    enc_meta = meta["encoder"]
    semantic = None
    if not enc_meta["use_onehot"]:
        word2vec = Word2Vec.load(path / _W2V_FILE)
        semantic = NodeSemanticEncoder(
            word2vec, include_cardinality=enc_meta["include_cardinality"])
    encoder = PlanEncoder(
        semantic=semantic,
        structure=StructureEncoder(max_nodes=enc_meta["max_nodes"]),
        use_structure=enc_meta["use_structure"],
        use_onehot=enc_meta["use_onehot"],
    )
    trainer = Trainer(model, TrainerConfig(**meta["trainer_config"]))
    return CostPredictor(encoder, trainer)


def _jsonable(mapping: dict) -> dict:
    out = {}
    for key, value in mapping.items():
        if isinstance(value, tuple):
            value = list(value)
        out[key] = value
    return out
