"""Save/load a trained cost predictor (model + encoder) to a directory.

A persisted predictor is a directory of up to four files:

* ``meta.json`` — model config, trainer config, encoder switches;
* ``model.npz`` — the RAAL parameter state dict;
* ``word2vec.npz`` — the node-semantic embedding model (absent when the
  encoder uses one-hot node semantics);
* ``manifest.json`` — schema version plus the SHA-256 of every other
  file, written *last* so a torn save is always detectable.

Writes are atomic (temp file + ``os.replace``) so a crash mid-save
leaves either the previous file or the new one, never a torn hybrid.
On load the manifest is verified; :class:`~repro.errors.CheckpointError`
names exactly which files are missing or corrupt. ``strict=False``
downgrades manifest/schema problems to warnings and attempts a
best-effort load of whatever is intact — the recovery path for
operators with a damaged but salvageable checkpoint.

This is what a deployment stores after the (re)training phase and loads
into the query optimizer.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import warnings
from dataclasses import asdict, dataclass, field

from repro.core.predictor import CostPredictor
from repro.core.raal import RAAL, RAALConfig
from repro.core.trainer import Trainer, TrainerConfig
from repro.encoding.node_semantic import NodeSemanticEncoder
from repro.encoding.plan_encoder import PlanEncoder
from repro.encoding.structure import DEFAULT_MAX_NODES, StructureEncoder
from repro.errors import CheckpointError, TrainingError
from repro.nn.serialization import load_model, save_model
from repro.text.word2vec import Word2Vec

__all__ = [
    "save_predictor",
    "load_predictor",
    "verify_checkpoint",
    "checkpoint_fingerprint",
    "CheckpointReport",
    "CHECKPOINT_SCHEMA_VERSION",
]

_META_FILE = "meta.json"
_MODEL_FILE = "model.npz"
_W2V_FILE = "word2vec.npz"
_MANIFEST_FILE = "manifest.json"

#: Bump when the checkpoint layout changes incompatibly.
CHECKPOINT_SCHEMA_VERSION = 2


def _sha256(path: pathlib.Path) -> str:
    hasher = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            hasher.update(chunk)
    return hasher.hexdigest()


def _atomic_replace(tmp: pathlib.Path, final: pathlib.Path) -> None:
    os.replace(tmp, final)


def _write_text_atomic(path: pathlib.Path, text: str) -> None:
    tmp = path.parent / f".tmp-{path.name}"
    tmp.write_text(text)
    _atomic_replace(tmp, path)


@dataclass
class CheckpointReport:
    """Outcome of verifying one checkpoint directory."""

    directory: str
    schema_version: int | None = None
    missing: list[str] = field(default_factory=list)
    corrupt: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def stale_schema(self) -> bool:
        """Whether the manifest declares an unsupported schema version."""
        return (self.schema_version is not None
                and self.schema_version != CHECKPOINT_SCHEMA_VERSION)

    @property
    def ok(self) -> bool:
        """Whether the checkpoint verified clean."""
        return not (self.missing or self.corrupt or self.stale_schema)

    def summary(self) -> str:
        """One-line human-readable verdict."""
        if self.ok:
            return f"checkpoint {self.directory} OK (schema v{self.schema_version})"
        problems = []
        if self.missing:
            problems.append(f"missing: {', '.join(self.missing)}")
        if self.corrupt:
            problems.append(f"corrupt: {', '.join(self.corrupt)}")
        if self.stale_schema:
            problems.append(
                f"schema v{self.schema_version} != supported "
                f"v{CHECKPOINT_SCHEMA_VERSION}")
        problems.extend(self.notes)
        return f"checkpoint {self.directory} FAILED — " + "; ".join(problems)


def save_predictor(predictor: CostPredictor, directory: str | os.PathLike) -> None:
    """Persist a trained predictor under ``directory`` (created if needed).

    Every file is written atomically and the manifest (schema version +
    per-file SHA-256) goes last, so an interrupted save never leaves a
    directory that passes verification.
    """
    model = predictor.trainer.model
    if not isinstance(model, RAAL):
        raise TrainingError(
            f"only RAAL-family predictors can be persisted, got {type(model).__name__}")
    path = pathlib.Path(directory)
    path.mkdir(parents=True, exist_ok=True)

    encoder = predictor.encoder
    meta = {
        "schema_version": CHECKPOINT_SCHEMA_VERSION,
        "model_config": _jsonable(asdict(model.config)),
        "trainer_config": _jsonable(asdict(predictor.trainer.config)),
        "encoder": {
            "use_structure": encoder.use_structure,
            "use_onehot": encoder.use_onehot,
            # Persisted even when the encoder carries no structure /
            # semantic component, so a restored predictor agrees with
            # the saved one on plan capacity and feature widths.
            "max_nodes": (encoder.structure.max_nodes
                          if encoder.structure is not None else DEFAULT_MAX_NODES),
            "include_cardinality": (
                encoder.semantic.include_cardinality
                if encoder.semantic is not None else True),
        },
    }
    _write_text_atomic(path / _META_FILE, json.dumps(meta, indent=2))

    # np.savez appends ".npz" to extension-less names, so temp files
    # must already end in .npz for os.replace to target the right path.
    model_tmp = path / f".tmp-{_MODEL_FILE}"
    save_model(model, model_tmp)
    _atomic_replace(model_tmp, path / _MODEL_FILE)

    files = [_META_FILE, _MODEL_FILE]
    if encoder.semantic is not None:
        w2v_tmp = path / f".tmp-{_W2V_FILE}"
        encoder.semantic.word2vec.save(w2v_tmp)
        _atomic_replace(w2v_tmp, path / _W2V_FILE)
        files.append(_W2V_FILE)
    else:
        # A stale embedding file from a previous save under the same
        # directory would fail verification; drop it.
        (path / _W2V_FILE).unlink(missing_ok=True)

    manifest = {
        "schema_version": CHECKPOINT_SCHEMA_VERSION,
        "files": {name: _sha256(path / name) for name in files},
    }
    _write_text_atomic(path / _MANIFEST_FILE, json.dumps(manifest, indent=2))


def verify_checkpoint(directory: str | os.PathLike) -> CheckpointReport:
    """Check a checkpoint directory against its manifest.

    Reports missing files, SHA-256 mismatches (bit-rot, torn writes),
    and schema-version drift. Never raises for content problems — the
    report carries them; used by :func:`load_predictor` and the
    ``repro doctor`` CLI command.
    """
    path = pathlib.Path(directory)
    report = CheckpointReport(directory=str(path))
    if not path.is_dir():
        report.missing.append(str(path))
        report.notes.append("directory does not exist")
        return report
    manifest_path = path / _MANIFEST_FILE
    if not manifest_path.exists():
        report.missing.append(_MANIFEST_FILE)
        report.notes.append("no manifest — legacy checkpoint or torn save")
        return report
    try:
        manifest = json.loads(manifest_path.read_text())
        declared = dict(manifest["files"])
        report.schema_version = int(manifest["schema_version"])
    except (ValueError, KeyError, TypeError) as exc:
        report.corrupt.append(_MANIFEST_FILE)
        report.notes.append(f"manifest unreadable: {exc}")
        return report
    for name, expected_sha in declared.items():
        file_path = path / name
        if not file_path.exists():
            report.missing.append(name)
            continue
        if _sha256(file_path) != expected_sha:
            report.corrupt.append(name)
    return report


def checkpoint_fingerprint(directory: str | os.PathLike) -> str:
    """SHA-256 identity of a checkpoint (hash of its manifest).

    The manifest already pins every artifact's digest, so hashing the
    manifest alone identifies the whole checkpoint's content. The
    serving layer embeds a prefix of this in model version strings
    (``g3-1f2e3d4c5b6a``) so provenance in responses and audit records
    maps back to exact bytes on disk. Raises
    :class:`~repro.errors.CheckpointError` when there is no manifest.
    """
    manifest_path = pathlib.Path(directory) / _MANIFEST_FILE
    if not manifest_path.exists():
        raise CheckpointError(
            f"cannot fingerprint {directory}: no {_MANIFEST_FILE}")
    return _sha256(manifest_path)


def load_predictor(directory: str | os.PathLike,
                   strict: bool = True) -> CostPredictor:
    """Restore a predictor saved by :func:`save_predictor`.

    ``strict=True`` (the default, the serving path) verifies the
    manifest first and raises :class:`~repro.errors.CheckpointError`
    naming every missing/corrupt file before touching any of them.
    ``strict=False`` (the recovery path) downgrades manifest and
    schema-version problems to warnings and loads whatever is intact;
    it still raises :class:`CheckpointError` — naming the file — when
    an essential artifact cannot actually be parsed.
    """
    path = pathlib.Path(directory)
    meta_path = path / _META_FILE
    if not meta_path.exists():
        raise CheckpointError(f"no persisted predictor at {path}")

    report = verify_checkpoint(path)
    if not report.ok:
        if strict:
            raise CheckpointError(report.summary())
        warnings.warn(f"loading despite verification failure: {report.summary()}",
                      stacklevel=2)

    try:
        meta = json.loads(meta_path.read_text())
        model_cfg = dict(meta["model_config"])
        model_cfg["dense_sizes"] = tuple(model_cfg["dense_sizes"])
        enc_meta = dict(meta["encoder"])
        trainer_cfg = dict(meta["trainer_config"])
    except (ValueError, KeyError, TypeError) as exc:
        raise CheckpointError(f"{_META_FILE} is corrupt: {exc}") from exc

    model = RAAL(RAALConfig(**model_cfg))
    try:
        load_model(model, path / _MODEL_FILE)
    except FileNotFoundError as exc:
        raise CheckpointError(f"{_MODEL_FILE} is missing") from exc
    except Exception as exc:
        # Truncated/garbled archives surface as zipfile/numpy errors,
        # shape mismatches as ShapeError — all mean the same thing here.
        raise CheckpointError(f"{_MODEL_FILE} is corrupt: {exc}") from exc
    model.eval()

    semantic = None
    if not enc_meta["use_onehot"]:
        try:
            word2vec = Word2Vec.load(path / _W2V_FILE)
        except FileNotFoundError as exc:
            raise CheckpointError(
                f"{_W2V_FILE} is missing but the encoder needs word2vec "
                "node semantics") from exc
        except Exception as exc:
            raise CheckpointError(f"{_W2V_FILE} is corrupt: {exc}") from exc
        semantic = NodeSemanticEncoder(
            word2vec, include_cardinality=enc_meta["include_cardinality"])
    encoder = PlanEncoder(
        semantic=semantic,
        structure=StructureEncoder(max_nodes=enc_meta["max_nodes"]),
        use_structure=enc_meta["use_structure"],
        use_onehot=enc_meta["use_onehot"],
    )
    trainer = Trainer(model, TrainerConfig(**trainer_cfg))
    return CostPredictor(encoder, trainer)


def _jsonable(mapping: dict) -> dict:
    out = {}
    for key, value in mapping.items():
        if isinstance(value, tuple):
            value = list(value)
        out[key] = value
    return out
