"""The RAAL model: Resource-Aware Attentional LSTM (paper Sec. IV-D).

Architecture (paper Fig. 5)::

    node embeddings ─ Embedding layer (dense projection)
                    ─ Plan feature layer (LSTM; CNN in the RAAC ablation)
                    ─ Node-aware attention ──┐
                    ─ Resource-aware attention ┤ concat → H*
    resources + statistical extras ──────────┘
                    ─ dense prediction layers → cost

Every piece is switchable so the paper's ablations (NA-LSTM: no
node-aware attention; RAAC: CNN feature layer; the "without
resource-aware attention" variants of Table VII) are configurations of
the same class. The NE-LSTM ablation (no structure embedding) lives in
the *encoder*, not here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError, TrainingError
from repro.nn import (
    LSTM,
    Conv1d,
    Dropout,
    Linear,
    Module,
    NodeAwareAttention,
    ReLU,
    ResourceAwareAttention,
    Sequential,
    Tensor,
)
from repro.nn.functional import masked_mean

__all__ = ["RAALConfig", "RAALBatch", "RAAL"]


@dataclass(frozen=True)
class RAALConfig:
    """Hyperparameters and ablation switches for :class:`RAAL`.

    ``latent_dim`` is the attention latent dimension K, fixed to 32 in
    the paper's experiments.
    """

    node_dim: int = 60
    resource_dim: int = 7
    extras_dim: int = 5
    embedding_dim: int = 48
    hidden_size: int = 48
    latent_dim: int = 32
    dense_sizes: tuple[int, ...] = (64, 32)
    dropout: float = 0.1
    feature_layer: str = "lstm"          # "lstm" | "cnn" (RAAC)
    cnn_kernel: int = 3
    use_node_attention: bool = True      # False → NA-LSTM
    use_resource_attention: bool = True  # False → Table VII left columns
    seed: int = 0


@dataclass
class RAALBatch:
    """A padded minibatch of encoded plans.

    Attributes
    ----------
    node_features:
        ``(B, N, node_dim)`` float array, zero-padded.
    child_mask:
        ``(B, N, N)`` boolean child adjacency.
    node_mask:
        ``(B, N)`` boolean; True on real nodes.
    resources:
        ``(B, resource_dim)`` normalized resource vectors.
    extras:
        ``(B, extras_dim)`` plan-level statistics.
    targets:
        Optional ``(B,)`` regression targets (log-cost).
    """

    node_features: np.ndarray
    child_mask: np.ndarray
    node_mask: np.ndarray
    resources: np.ndarray
    extras: np.ndarray
    targets: np.ndarray | None = None

    @property
    def size(self) -> int:
        """Number of samples in the batch."""
        return self.node_features.shape[0]


class RAAL(Module):
    """Resource-Aware Attentional LSTM cost model."""

    def __init__(self, config: RAALConfig) -> None:
        super().__init__()
        self.config = config
        rng = np.random.default_rng(config.seed)
        if config.feature_layer not in ("lstm", "cnn"):
            raise TrainingError(f"unknown feature layer {config.feature_layer!r}")

        self.embedding = Linear(config.node_dim, config.embedding_dim, rng)
        if config.feature_layer == "lstm":
            self.plan_feature = LSTM(config.embedding_dim, config.hidden_size, rng)
            self.cnn = None
        else:
            self.cnn = Conv1d(config.embedding_dim, config.hidden_size,
                              config.cnn_kernel, rng)
            self.plan_feature = None

        if config.use_node_attention:
            self.node_attention = NodeAwareAttention(
                config.hidden_size, config.latent_dim, rng)
        else:
            self.node_attention = None
        if config.use_resource_attention:
            self.resource_attention = ResourceAwareAttention(
                config.hidden_size, config.resource_dim, config.latent_dim, rng)
        else:
            self.resource_attention = None

        # Without resource-aware attention the model is fully resource-
        # blind (raw resource features are withheld too), matching the
        # paper's Table VII reading: the left columns are models without
        # resource information.
        joined = config.hidden_size  # P (or pooled hidden)
        if config.use_resource_attention:
            joined += config.hidden_size + config.resource_dim  # M + raw
        joined += config.extras_dim

        layers: list[Module] = []
        in_dim = joined
        for size in config.dense_sizes:
            layers.append(Linear(in_dim, size, rng))
            layers.append(ReLU())
            layers.append(Dropout(config.dropout, rng))
            in_dim = size
        layers.append(Linear(in_dim, 1, rng))
        self.dense = Sequential(*layers)

    # -- forward ---------------------------------------------------------
    def _hidden_states(self, batch: RAALBatch) -> Tensor:
        x = Tensor(batch.node_features)
        emb = self.embedding(x).tanh()
        if self.plan_feature is not None:
            hidden, _ = self.plan_feature(emb, mask=batch.node_mask)
            return hidden
        # CNN path (RAAC): left-pad so output length matches input.
        pad_len = self.config.cnn_kernel - 1
        if pad_len:
            batch_size, _, dim = emb.shape
            pad = Tensor(np.zeros((batch_size, pad_len, dim)))
            emb = Tensor.concat([pad, emb], axis=1)
        return self.cnn(emb).relu()

    def forward(self, batch: RAALBatch) -> Tensor:
        """Predict (log-)costs for a batch; returns shape ``(B,)``."""
        if batch.node_features.shape[2] != self.config.node_dim:
            raise ShapeError(
                f"batch node_dim {batch.node_features.shape[2]} != "
                f"model node_dim {self.config.node_dim}")
        hidden = self._hidden_states(batch)

        if self.node_attention is not None:
            plan_vec = self.node_attention(hidden, batch.child_mask, batch.node_mask)
        else:
            plan_vec = masked_mean(hidden, batch.node_mask)

        parts = [plan_vec]
        if self.resource_attention is not None:
            resource_vec = self.resource_attention(
                hidden, Tensor(batch.resources), batch.node_mask)
            parts.append(resource_vec)
            parts.append(Tensor(batch.resources))
        parts.append(Tensor(batch.extras))
        joined = Tensor.concat(parts, axis=1)
        return self.dense(joined).squeeze(-1)

    def forward_inference(self, batch: RAALBatch,
                          weights=None) -> np.ndarray:
        """Graph-free eval-mode forward; returns a ``(B,)`` numpy array.

        Numerically equivalent to ``forward`` in eval mode (≤ 1e-8) but
        builds no autograd graph and fuses the LSTM input projections
        into one GEMM — the inference fast path used by
        :meth:`repro.core.trainer.Trainer.predict_seconds`. ``weights``
        optionally supplies a precision-tier bundle
        (:func:`repro.nn.precision.inference_weights`); the default is
        a float64 view of the live parameters.
        """
        from repro import obs
        from repro.nn.inference import raal_forward_inference

        with obs.span("forward_inference", batch=batch.size):
            return raal_forward_inference(self, batch, weights)

    def forward_backward(self, batch: RAALBatch) -> tuple[float, np.ndarray]:
        """Fused training step: graph-free forward + analytic backward.

        Computes the MSE loss against ``batch.targets`` and accumulates
        closed-form gradients into every parameter's ``.grad`` —
        numerically equivalent (≤ 1e-8 per parameter) to ``forward``
        followed by ``mse_loss(...).backward()``, without building the
        autograd graph. Returns ``(loss, predictions)``. The training
        fast path used by :meth:`repro.core.trainer.Trainer.fit`.
        """
        from repro import obs
        from repro.nn.training import raal_forward_backward

        with obs.span("forward_backward", batch=batch.size):
            return raal_forward_backward(self, batch)
