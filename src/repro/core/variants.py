"""Model variants for the paper's ablation studies.

Each :class:`VariantSpec` bundles the *encoder* switches (structure
embedding on/off, word2vec vs. one-hot) with the *model* switches
(node-aware attention, LSTM vs. CNN, resource-aware attention), because
the paper's ablations cut across both:

========  =========  ==============  =============  ====================
variant   structure  node attention  feature layer  resource attention
========  =========  ==============  =============  ====================
RAAL      yes        yes             LSTM           yes (Table VII: ±)
NE-LSTM   no         yes             LSTM           ±
NA-LSTM   yes        no              LSTM           ±
RAAC      yes        yes             CNN            ±
OH-LSTM*  yes        yes             LSTM           ±
========  =========  ==============  =============  ====================

``OH-LSTM`` (one-hot node semantics instead of word2vec) is an extra
ablation motivated by Sec. IV-C's discussion.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.raal import RAAL, RAALConfig

__all__ = ["VariantSpec", "VARIANTS", "make_model", "variant"]


@dataclass(frozen=True)
class VariantSpec:
    """Encoder + model switches defining one ablation variant."""

    name: str
    use_structure: bool = True
    use_onehot: bool = False
    use_node_attention: bool = True
    feature_layer: str = "lstm"

    def model_config(self, base: RAALConfig,
                     use_resource_attention: bool = True) -> RAALConfig:
        """Derive the :class:`RAALConfig` for this variant."""
        return replace(
            base,
            use_node_attention=self.use_node_attention,
            feature_layer=self.feature_layer,
            use_resource_attention=use_resource_attention,
        )


VARIANTS: dict[str, VariantSpec] = {
    "RAAL": VariantSpec(name="RAAL"),
    "NE-LSTM": VariantSpec(name="NE-LSTM", use_structure=False),
    "NA-LSTM": VariantSpec(name="NA-LSTM", use_node_attention=False),
    "RAAC": VariantSpec(name="RAAC", feature_layer="cnn"),
    "OH-LSTM": VariantSpec(name="OH-LSTM", use_onehot=True),
}


def variant(name: str) -> VariantSpec:
    """Look up a variant spec by name (case-insensitive)."""
    key = name.upper()
    if key not in VARIANTS:
        raise KeyError(f"unknown variant {name!r}; known: {sorted(VARIANTS)}")
    return VARIANTS[key]


def make_model(spec: VariantSpec, base: RAALConfig,
               use_resource_attention: bool = True) -> RAAL:
    """Instantiate the model side of a variant."""
    return RAAL(spec.model_config(base, use_resource_attention))
