"""Resource recommendation: the cost model run in reverse.

The paper contrasts itself with systems that "match the best resources
for a given query execution plan" [31, 32] — with a resource-aware cost
model both directions come for free. Given a query's candidate plans,
:class:`ResourceAdvisor` searches a grid of resource profiles for:

* the cheapest allocation whose predicted runtime meets an SLA, or
* the allocation minimizing predicted runtime subject to a budget.

Allocation "price" is a simple core·GB-weighted sum, configurable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.cluster.resources import ResourceProfile
from repro.core.predictor import CostPredictor
from repro.errors import PlanError
from repro.plan.physical import PhysicalPlan

__all__ = ["AllocationPrice", "Recommendation", "ResourceAdvisor", "default_profile_grid"]


@dataclass(frozen=True)
class AllocationPrice:
    """Linear pricing of an allocation (cloud-style)."""

    per_core_hour: float = 0.05
    per_gb_hour: float = 0.01

    def hourly(self, profile: ResourceProfile) -> float:
        """Price per hour of holding the allocation."""
        cores = profile.executors * profile.executor_cores
        memory = profile.executors * profile.executor_memory_gb
        return cores * self.per_core_hour + memory * self.per_gb_hour


@dataclass
class Recommendation:
    """Outcome of a resource search.

    ``cost_source`` records which model produced the runtime estimates
    when the predictor is guarded (``"raal"`` for the learned model,
    ``"gpsj"``/``"heuristic"`` when the fallback chain degraded).
    """

    profile: ResourceProfile
    plan: PhysicalPlan
    predicted_seconds: float
    hourly_price: float
    candidates_evaluated: int
    cost_source: str = "raal"

    @property
    def predicted_cost_dollars(self) -> float:
        """Price of the run itself (runtime × hourly price)."""
        return self.hourly_price * self.predicted_seconds / 3600.0


def default_profile_grid(base: ResourceProfile | None = None) -> list[ResourceProfile]:
    """A modest grid over executors × cores × memory."""
    base = base or ResourceProfile()
    grid = []
    for executors in (1, 2, 3, 4):
        for cores in (1, 2, 4):
            for memory in (1.0, 2.0, 4.0, 6.0):
                grid.append(ResourceProfile(
                    nodes=base.nodes, cores_per_node=base.cores_per_node,
                    executors=executors, executor_cores=cores,
                    executor_memory_gb=memory,
                    network_throughput_mbps=base.network_throughput_mbps,
                    disk_throughput_mbps=base.disk_throughput_mbps))
    return grid


class ResourceAdvisor:
    """Searches resource profiles with a trained cost predictor."""

    def __init__(self, predictor: CostPredictor,
                 price: AllocationPrice | None = None) -> None:
        self.predictor = predictor
        self.price = price or AllocationPrice()

    def _best_plan_per_profile(self, plans: list[PhysicalPlan],
                               profiles: list[ResourceProfile]):
        """For each profile, the predicted-best plan, runtime, and source."""
        if not plans:
            raise PlanError("advisor needs at least one candidate plan")
        if not profiles:
            raise PlanError("advisor needs at least one resource profile")
        # Grid prediction: each plan is encoded once (not once per
        # profile) thanks to the encoder's plan-side cache.
        with obs.span("advise", plans=len(plans),
                      profiles=len(profiles)) as sp:
            obs.inc("advisor.grids_total",
                    help="Resource-advisor grid searches")
            source = "raal"
            if hasattr(self.predictor, "predict_grid_explained"):
                explained = self.predictor.predict_grid_explained(plans, profiles)
                per_profile, source = explained.costs, explained.source
            else:
                per_profile = self.predictor.predict_grid(plans, profiles)
            if source != "raal":
                obs.inc("advisor.degraded_total",
                        help="Grid searches served by a fallback cost source")
            sp.annotate(source=source)
            best_idx = per_profile.argmin(axis=1)
            best_costs = per_profile.min(axis=1)
            return best_idx, best_costs, source

    def cheapest_meeting_sla(self, plans: list[PhysicalPlan],
                             sla_seconds: float,
                             profiles: list[ResourceProfile] | None = None) -> Recommendation | None:
        """Cheapest allocation predicted to finish within the SLA.

        Returns ``None`` when no profile in the grid meets the SLA.
        """
        profiles = profiles if profiles is not None else default_profile_grid()
        best_idx, best_costs, source = self._best_plan_per_profile(plans, profiles)
        feasible = [i for i in range(len(profiles)) if best_costs[i] <= sla_seconds]
        if not feasible:
            return None
        cheapest = min(feasible, key=lambda i: self.price.hourly(profiles[i]))
        return Recommendation(
            profile=profiles[cheapest],
            plan=plans[int(best_idx[cheapest])],
            predicted_seconds=float(best_costs[cheapest]),
            hourly_price=self.price.hourly(profiles[cheapest]),
            candidates_evaluated=len(profiles) * len(plans),
            cost_source=source,
        )

    def fastest_within_budget(self, plans: list[PhysicalPlan],
                              max_hourly_price: float,
                              profiles: list[ResourceProfile] | None = None) -> Recommendation | None:
        """Fastest allocation whose hourly price fits the budget."""
        profiles = profiles if profiles is not None else default_profile_grid()
        affordable = [p for p in profiles
                      if self.price.hourly(p) <= max_hourly_price]
        if not affordable:
            return None
        best_idx, best_costs, source = self._best_plan_per_profile(plans, affordable)
        winner = int(np.argmin(best_costs))
        return Recommendation(
            profile=affordable[winner],
            plan=plans[int(best_idx[winner])],
            predicted_seconds=float(best_costs[winner]),
            hourly_price=self.price.hourly(affordable[winner]),
            candidates_evaluated=len(affordable) * len(plans),
            cost_source=source,
        )
