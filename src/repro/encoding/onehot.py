"""One-hot operator encoding (paper Table II).

The paper discusses — and rejects — one-hot encoding for node
semantics; we implement it both as the fallback the paper compares
against (an extra ablation bench) and as a component of the operator
vocabulary.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EncodingError
from repro.plan.physical import PhysicalNode

__all__ = ["OPERATOR_VOCABULARY", "OneHotOperatorEncoder"]

#: Canonical operator order (superset of the paper's Table II).
OPERATOR_VOCABULARY = [
    "FileScan",
    "Filter",
    "Project",
    "Sort",
    "SortMergeJoin",
    "BroadcastHashJoin",
    "BroadcastNestedLoopJoin",
    "HashAggregate",
    "SortAggregate",
    "ExchangeSinglePartition",
    "ExchangeHashPartition",
    "BroadcastExchange",
    "Limit",
]


class OneHotOperatorEncoder:
    """Encodes a physical operator as a one-hot vector over op names."""

    def __init__(self, vocabulary: list[str] | None = None) -> None:
        self.vocabulary = list(vocabulary or OPERATOR_VOCABULARY)
        self._index = {name: i for i, name in enumerate(self.vocabulary)}
        if len(self._index) != len(self.vocabulary):
            raise EncodingError("duplicate operator names in vocabulary")

    @property
    def dim(self) -> int:
        """Length of the one-hot vectors."""
        return len(self.vocabulary)

    def encode_name(self, op_name: str) -> np.ndarray:
        """One-hot vector for an operator name."""
        if op_name not in self._index:
            raise EncodingError(
                f"unknown operator {op_name!r}; known: {self.vocabulary}")
        vec = np.zeros(self.dim)
        vec[self._index[op_name]] = 1.0
        return vec

    def encode_node(self, node: PhysicalNode) -> np.ndarray:
        """One-hot vector for a physical plan node."""
        return self.encode_name(node.op_name)
