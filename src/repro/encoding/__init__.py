"""Feature encoding: node semantics, plan structure, resources."""

from repro.encoding.node_semantic import NodeSemanticEncoder, build_statement_corpus
from repro.encoding.onehot import OPERATOR_VOCABULARY, OneHotOperatorEncoder
from repro.encoding.plan_encoder import (
    EXTRA_FEATURE_NAMES,
    EncodedPlan,
    EncoderCacheInfo,
    PlanEncoder,
    plan_fingerprint,
)
from repro.encoding.structure import StructureEncoder

__all__ = [
    "NodeSemanticEncoder",
    "build_statement_corpus",
    "OneHotOperatorEncoder",
    "OPERATOR_VOCABULARY",
    "StructureEncoder",
    "PlanEncoder",
    "EncodedPlan",
    "EncoderCacheInfo",
    "plan_fingerprint",
    "EXTRA_FEATURE_NAMES",
]
