"""Node-semantic embedding via word2vec (paper Sec. IV-C).

Each plan node's execution statements are tokenized and embedded with a
word2vec model trained on the *corpus of all plan statements* in the
workload; the node vector is the mean of its statement-token vectors,
optionally augmented with per-node normalized cardinality features.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import EncodingError
from repro.plan.physical import PhysicalNode, PhysicalPlan
from repro.text.tokenize import tokenize_statements
from repro.text.word2vec import Word2Vec, Word2VecConfig

__all__ = ["build_statement_corpus", "NodeSemanticEncoder"]

_LOG_ROWS_CAP = math.log1p(1e9)
_LOG_BYTES_CAP = math.log1p(1e12)


def build_statement_corpus(plans: list[PhysicalPlan]) -> list[list[str]]:
    """Token sequences (one per plan node) for word2vec training."""
    corpus: list[list[str]] = []
    for plan in plans:
        for node in plan.nodes():
            tokens = tokenize_statements(node.statements())
            if tokens:
                corpus.append(tokens)
    return corpus


class NodeSemanticEncoder:
    """Word2vec-based node encoder.

    Parameters
    ----------
    word2vec:
        A trained :class:`~repro.text.word2vec.Word2Vec`; use
        :meth:`fit` to train one from plans directly.
    include_cardinality:
        Append ``[log-normalized est_rows, est_bytes]`` per node (the
        paper feeds statistics like cardinality into the model).
    """

    def __init__(self, word2vec: Word2Vec | None = None,
                 include_cardinality: bool = True) -> None:
        self.word2vec = word2vec
        self.include_cardinality = include_cardinality

    @classmethod
    def fit(cls, plans: list[PhysicalPlan],
            config: Word2VecConfig | None = None,
            include_cardinality: bool = True) -> "NodeSemanticEncoder":
        """Train a word2vec model on the plans' statements."""
        corpus = build_statement_corpus(plans)
        if not corpus:
            raise EncodingError("no statements to fit the semantic encoder on")
        model = Word2Vec(config or Word2VecConfig())
        model.train(corpus)
        return cls(word2vec=model, include_cardinality=include_cardinality)

    @property
    def dim(self) -> int:
        """Per-node feature length."""
        if self.word2vec is None:
            raise EncodingError("encoder has no trained word2vec model")
        return self.word2vec.dim + (2 if self.include_cardinality else 0)

    def encode_node(self, node: PhysicalNode) -> np.ndarray:
        """Semantic vector of one plan node."""
        if self.word2vec is None:
            raise EncodingError("encoder has no trained word2vec model")
        tokens = tokenize_statements(node.statements())
        vec = self.word2vec.encode_tokens(tokens)
        if not self.include_cardinality:
            return vec
        rows = math.log1p(max(node.est_rows, 0.0)) / _LOG_ROWS_CAP
        size = math.log1p(max(node.est_bytes, 0.0)) / _LOG_BYTES_CAP
        return np.concatenate([vec, [rows, size]])

    def encode_plan_nodes(self, plan: PhysicalPlan) -> np.ndarray:
        """Matrix ``(n_nodes, dim)`` of node vectors in execution order."""
        return np.stack([self.encode_node(node) for node in plan.nodes()])
