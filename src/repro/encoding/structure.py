"""Plan-structure (edge) embedding (paper Sec. IV-C, Fig. 4).

Nodes are sorted in execution order; node ``v_i``'s structure vector
has ``+1`` at the positions of its children and ``-1`` at the position
of its parent ("disposing of v3 and v6 as 1 and v8 as -1 is the
structure vector of node v7"). The resulting edge-embedding matrix
captures the out-degree/in-degree relationships of the plan DAG.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EncodingError
from repro.plan.physical import PhysicalPlan

__all__ = ["StructureEncoder", "DEFAULT_MAX_NODES"]

#: Default width of the structure vectors — the padded node-slot count
#: shared by every component that must agree on plan capacity (the
#: encoder, persistence metadata, and the prediction input guard).
DEFAULT_MAX_NODES = 48


class StructureEncoder:
    """Encodes plan-tree connectivity as per-node ±1 vectors.

    Parameters
    ----------
    max_nodes:
        Fixed width of the structure vectors (plans are padded to this
        many node slots; larger plans are rejected).
    """

    def __init__(self, max_nodes: int = DEFAULT_MAX_NODES) -> None:
        if max_nodes < 1:
            raise EncodingError("max_nodes must be positive")
        self.max_nodes = max_nodes

    @property
    def dim(self) -> int:
        """Per-node structure vector length."""
        return self.max_nodes

    def encode_plan(self, plan: PhysicalPlan) -> np.ndarray:
        """Edge embedding matrix ``(n_nodes, max_nodes)``."""
        nodes = plan.nodes()
        n = len(nodes)
        if n > self.max_nodes:
            raise EncodingError(
                f"plan has {n} nodes, exceeding max_nodes={self.max_nodes}")
        matrix = np.zeros((n, self.max_nodes))
        for child_idx, parent_idx in plan.edges():
            matrix[parent_idx, child_idx] = 1.0    # my children: +1
            matrix[child_idx, parent_idx] = -1.0   # my parent:  -1
        return matrix

    def child_mask(self, plan: PhysicalPlan) -> np.ndarray:
        """Boolean ``(n, n)``: ``mask[i, j]`` = node j is a child of i.

        Consumed by the node-aware attention layer (eq. 8).
        """
        n = plan.num_nodes
        mask = np.zeros((n, n), dtype=bool)
        for child_idx, parent_idx in plan.edges():
            mask[parent_idx, child_idx] = True
        return mask
