"""End-to-end plan encoding: (plan, resources) → model-ready arrays.

Combines the node-semantic embedding, the structure embedding, the
normalized resource vector (eq. 1), and plan-level statistical extras
into one :class:`EncodedPlan`. This is the feature-encoding phase of
the paper's Fig. 3 pipeline.

Encoding splits into a *plan-side* part (semantic matrix, structure
embedding, child mask, statistical extras — everything derived from the
plan alone) and a *resource-side* part (the normalized resource
vector). The plan-side features are memoized in a bounded LRU keyed by
a plan fingerprint, so grid workloads (``plans × profiles`` in the
advisor and selector) encode each plan once instead of once per
resource profile.
"""

from __future__ import annotations

import hashlib
import math
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.cluster.resources import ResourceProfile
from repro.encoding.node_semantic import NodeSemanticEncoder
from repro.encoding.onehot import OneHotOperatorEncoder
from repro.encoding.structure import DEFAULT_MAX_NODES, StructureEncoder
from repro.errors import EncodingError
from repro.plan.physical import PhysicalPlan
from repro.text.word2vec import Word2VecConfig

__all__ = [
    "EncodedPlan",
    "PlanEncoder",
    "EXTRA_FEATURE_NAMES",
    "plan_fingerprint",
    "EncoderCacheInfo",
]

EXTRA_FEATURE_NAMES = [
    "log_est_result_rows",
    "log_est_total_bytes",
    "num_nodes_frac",
    "num_joins_frac",
    "plan_depth_frac",
]

_LOG_ROWS_CAP = math.log1p(1e9)
_LOG_BYTES_CAP = math.log1p(1e12)
_JOIN_OPS = {"SortMergeJoin", "BroadcastHashJoin", "BroadcastNestedLoopJoin"}


def plan_fingerprint(plan: PhysicalPlan) -> str:
    """Stable digest of everything the plan-side features depend on.

    Covers the per-node execution statements (semantic features), the
    tree edges (structure embedding / child mask), and the per-node
    cardinality estimates (cardinality features and extras). Two plans
    with equal fingerprints encode to identical plan-side features.
    """
    hasher = hashlib.blake2b(digest_size=16)
    for node in plan.nodes():
        hasher.update(";".join(node.statements()).encode())
        hasher.update(f"|{node.est_rows:.17g}|{node.est_bytes:.17g}\n".encode())
    for child_idx, parent_idx in plan.edges():
        hasher.update(f"{child_idx}>{parent_idx},".encode())
    return hasher.hexdigest()


@dataclass(frozen=True)
class EncoderCacheInfo:
    """Hit/miss statistics of a :class:`PlanEncoder`'s plan-side cache."""

    hits: int
    misses: int
    size: int
    capacity: int
    evictions: int = 0


@dataclass
class _PlanFeatures:
    """Cached plan-side features (everything except the resource vector)."""

    node_features: np.ndarray
    child_mask: np.ndarray
    extras: np.ndarray


@dataclass
class EncodedPlan:
    """Model-ready representation of one (plan, resources) sample.

    Attributes
    ----------
    node_features:
        ``(n_nodes, feature_dim)``: semantic ‖ structure vectors, in
        execution order.
    child_mask:
        Boolean ``(n_nodes, n_nodes)`` child adjacency for node-aware
        attention.
    resources:
        Normalized resource vector (eq. 1).
    extras:
        Plan-level statistical features (cardinality etc.).
    """

    node_features: np.ndarray
    child_mask: np.ndarray
    resources: np.ndarray
    extras: np.ndarray

    @property
    def num_nodes(self) -> int:
        """Number of plan operators encoded."""
        return self.node_features.shape[0]


class PlanEncoder:
    """Encodes physical plans for the deep cost models.

    Parameters
    ----------
    semantic:
        Trained node-semantic encoder (word2vec based). When ``None``
        together with ``use_onehot=True``, nodes are encoded with the
        Table II one-hot scheme instead (for the ablation).
    structure:
        Structure encoder; pass ``None`` with ``use_structure=False``
        to drop structure features (the NE-LSTM ablation).
    cache_size:
        Capacity of the plan-side LRU cache (entries). ``0`` disables
        caching entirely.
    """

    def __init__(
        self,
        semantic: NodeSemanticEncoder | None = None,
        structure: StructureEncoder | None = None,
        use_structure: bool = True,
        use_onehot: bool = False,
        cache_size: int = 256,
    ) -> None:
        if semantic is None and not use_onehot:
            raise EncodingError("need a semantic encoder or use_onehot=True")
        if cache_size < 0:
            raise EncodingError("cache_size must be >= 0")
        self.semantic = semantic
        self.cache_size = cache_size
        self._cache: OrderedDict[str, _PlanFeatures] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        # The LRU dict and its counters are mutated on every lookup
        # (move_to_end / popitem), so concurrent predict calls — e.g.
        # request threads sharing one predictor — must serialize on this
        # lock; OrderedDict mutation is not atomic under free-threaded
        # interleavings. RLock because cache_clear() is called from
        # locked paths (the config setters).
        self._lock = threading.RLock()
        self._dtype = np.dtype(np.float64)
        # The switches below go through properties so that flipping one
        # after construction invalidates cached plan-side features.
        self._use_onehot = bool(use_onehot)
        self._onehot = OneHotOperatorEncoder() if use_onehot else None
        self._use_structure = bool(use_structure)
        self.structure = structure or (StructureEncoder() if use_structure else None)

    @classmethod
    def fit(cls, plans: list[PhysicalPlan],
            word2vec_config: Word2VecConfig | None = None,
            max_nodes: int = DEFAULT_MAX_NODES,
            use_structure: bool = True,
            use_onehot: bool = False,
            cache_size: int = 256) -> "PlanEncoder":
        """Fit the word2vec semantic encoder on a workload's plans."""
        semantic = None
        if not use_onehot:
            semantic = NodeSemanticEncoder.fit(plans, config=word2vec_config)
        return cls(
            semantic=semantic,
            structure=StructureEncoder(max_nodes=max_nodes),
            use_structure=use_structure,
            use_onehot=use_onehot,
            cache_size=cache_size,
        )

    # -- config switches (cache-invalidating) --------------------------------
    @property
    def use_onehot(self) -> bool:
        """Whether nodes use the Table II one-hot scheme (vs word2vec)."""
        return self._use_onehot

    @use_onehot.setter
    def use_onehot(self, value: bool) -> None:
        value = bool(value)
        if value == self._use_onehot:
            return
        if value and self._onehot is None:
            self._onehot = OneHotOperatorEncoder()
        if not value and self.semantic is None:
            raise EncodingError("cannot disable one-hot without a semantic encoder")
        self._use_onehot = value
        self.cache_clear()

    @property
    def use_structure(self) -> bool:
        """Whether structure (edge) features are appended per node."""
        return self._use_structure

    @use_structure.setter
    def use_structure(self, value: bool) -> None:
        value = bool(value)
        if value != self._use_structure:
            if value and self.structure is None:
                self.structure = StructureEncoder()
            self._use_structure = value
            self.cache_clear()

    @property
    def dtype(self) -> np.dtype:
        """Dtype of emitted feature arrays (default float64).

        A serving-memory knob for the reduced-precision inference tiers:
        switching to float32 halves the cache and per-request encode
        footprint. Training should keep the float64 default — the
        analytic backward and its equivalence tolerances assume it.
        Changing the dtype invalidates the plan-side cache.
        """
        return self._dtype

    @dtype.setter
    def dtype(self, value) -> None:
        dtype = np.dtype(value)
        if dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise EncodingError(
                f"encoder dtype must be float64 or float32, got {dtype}")
        if dtype != self._dtype:
            self._dtype = dtype
            self.cache_clear()

    @property
    def node_dim(self) -> int:
        """Per-node feature length after concatenation."""
        base = self._onehot.dim if self.use_onehot else self.semantic.dim
        if self.use_structure:
            base += self.structure.dim
        return base

    @property
    def extras_dim(self) -> int:
        """Number of plan-level extra features."""
        return len(EXTRA_FEATURE_NAMES)

    # -- cache ---------------------------------------------------------------
    def cache_info(self) -> EncoderCacheInfo:
        """Current hit/miss statistics of the plan-side cache."""
        with self._lock:
            return EncoderCacheInfo(hits=self._hits, misses=self._misses,
                                    size=len(self._cache), capacity=self.cache_size,
                                    evictions=self._evictions)

    def cache_clear(self) -> None:
        """Drop all cached plan-side features and reset the counters."""
        with self._lock:
            self._cache.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0

    def _plan_features(self, plan: PhysicalPlan,
                       fingerprint: str | None = None) -> _PlanFeatures:
        """Plan-side features, served from the LRU cache when possible.

        Thread-safe: lookup, insertion, and eviction all run under the
        encoder lock. A miss computes the features inside the lock —
        simpler than a per-key guard, and it also prevents two threads
        from redundantly encoding the same plan at the same time.
        """
        if self.cache_size == 0:
            return self._compute_plan_features(plan)
        key = fingerprint if fingerprint is not None else plan_fingerprint(plan)
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._hits += 1
                obs.inc("encoder.cache.hits")
                self._cache.move_to_end(key)
                return cached
            self._misses += 1
            obs.inc("encoder.cache.misses")
            features = self._compute_plan_features(plan)
            # Cached arrays are shared between EncodedPlan instances; mark
            # them read-only so an accidental in-place write cannot corrupt
            # later cache hits.
            for array in (features.node_features, features.child_mask, features.extras):
                array.setflags(write=False)
            self._cache[key] = features
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
                self._evictions += 1
                obs.inc("encoder.cache.evictions")
                obs.emit_event("encoder", "cache_evict",
                               size=len(self._cache), capacity=self.cache_size)
            return features

    def _compute_plan_features(self, plan: PhysicalPlan) -> _PlanFeatures:
        """Cold (uncached) computation of the plan-side features.

        Without structure features (the NE-LSTM ablation) the model must
        not receive edge information through any channel, so the
        attention child mask degrades to "every other node" — plain
        self-attention with no tree knowledge.
        """
        semantic = self._semantic_matrix(plan)
        if self.use_structure:
            structure = self.structure.encode_plan(plan)
            node_features = np.concatenate([semantic, structure], axis=1)
            child_mask = self.structure.child_mask(plan)
        else:
            node_features = semantic
            n = plan.num_nodes
            child_mask = ~np.eye(n, dtype=bool)
        return _PlanFeatures(
            node_features=np.ascontiguousarray(node_features, dtype=self._dtype),
            child_mask=child_mask,
            extras=self._plan_extras(plan).astype(self._dtype, copy=False),
        )

    # -- encoding ------------------------------------------------------------
    def _semantic_matrix(self, plan: PhysicalPlan) -> np.ndarray:
        if self.use_onehot:
            return np.stack([self._onehot.encode_node(n) for n in plan.nodes()])
        return self.semantic.encode_plan_nodes(plan)

    def _plan_extras(self, plan: PhysicalPlan) -> np.ndarray:
        nodes = plan.nodes()
        est_result = max(plan.root.est_rows, 0.0)
        est_bytes = sum(max(n.est_bytes, 0.0) for n in nodes)
        num_joins = sum(1 for n in nodes if n.op_name in _JOIN_OPS)

        # Depth via one iterative pass over the post-order node list:
        # children precede parents, so each node's depth is ready when
        # the node is reached. (The old recursive version recomputed
        # child depths exponentially on deep/shared trees.)
        depths: dict[int, int] = {}
        for node in nodes:
            children = node.children
            if children:
                depths[id(node)] = 1 + max(depths[id(c)] for c in children)
            else:
                depths[id(node)] = 1
        plan_depth = depths[id(plan.root)]

        max_nodes = self.structure.max_nodes if self.structure else DEFAULT_MAX_NODES
        return np.array([
            math.log1p(est_result) / _LOG_ROWS_CAP,
            math.log1p(est_bytes) / _LOG_BYTES_CAP,
            len(nodes) / max_nodes,
            num_joins / 8.0,
            plan_depth / max_nodes,
        ])

    def encode(self, plan: PhysicalPlan, resources: ResourceProfile) -> EncodedPlan:
        """Encode one (plan, resource state) pair.

        The plan-side features come from the LRU cache when the plan
        was seen before; only the (cheap) resource vector is computed
        per call.
        """
        with obs.span("encode", nodes=plan.num_nodes) as sp:
            hits_before = self._hits
            features = self._plan_features(plan)
            sp.annotate(cache_hit=self._hits > hits_before)
            return EncodedPlan(
                node_features=features.node_features,
                child_mask=features.child_mask,
                resources=np.asarray(resources.as_features(), dtype=self._dtype),
                extras=features.extras,
            )

    def encode_many(self, pairs: list[tuple[PhysicalPlan, ResourceProfile]]) -> list[EncodedPlan]:
        """Encode a list of (plan, resources) pairs.

        Repeated plans within one call are deduplicated: each distinct
        plan object is fingerprinted and encoded once, then shared
        across all its (plan, profile) pairs — the advisor/selector grid
        shape (``plans × profiles``) hits this path.
        """
        with obs.span("encode", pairs=len(pairs)) as sp:
            hits_before = self._hits
            fingerprints: dict[int, str] = {}
            out: list[EncodedPlan] = []
            for plan, resources in pairs:
                key = fingerprints.get(id(plan))
                if key is None and self.cache_size > 0:
                    key = plan_fingerprint(plan)
                    fingerprints[id(plan)] = key
                features = self._plan_features(plan, fingerprint=key)
                out.append(EncodedPlan(
                    node_features=features.node_features,
                    child_mask=features.child_mask,
                    resources=np.asarray(resources.as_features(), dtype=self._dtype),
                    extras=features.extras,
                ))
            sp.annotate(cache_hits=self._hits - hits_before)
            return out
