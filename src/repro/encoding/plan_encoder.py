"""End-to-end plan encoding: (plan, resources) → model-ready arrays.

Combines the node-semantic embedding, the structure embedding, the
normalized resource vector (eq. 1), and plan-level statistical extras
into one :class:`EncodedPlan`. This is the feature-encoding phase of
the paper's Fig. 3 pipeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cluster.resources import ResourceProfile
from repro.encoding.node_semantic import NodeSemanticEncoder
from repro.encoding.onehot import OneHotOperatorEncoder
from repro.encoding.structure import StructureEncoder
from repro.errors import EncodingError
from repro.plan.physical import PhysicalPlan
from repro.text.word2vec import Word2VecConfig

__all__ = ["EncodedPlan", "PlanEncoder", "EXTRA_FEATURE_NAMES"]

EXTRA_FEATURE_NAMES = [
    "log_est_result_rows",
    "log_est_total_bytes",
    "num_nodes_frac",
    "num_joins_frac",
    "plan_depth_frac",
]

_LOG_ROWS_CAP = math.log1p(1e9)
_LOG_BYTES_CAP = math.log1p(1e12)
_JOIN_OPS = {"SortMergeJoin", "BroadcastHashJoin", "BroadcastNestedLoopJoin"}


@dataclass
class EncodedPlan:
    """Model-ready representation of one (plan, resources) sample.

    Attributes
    ----------
    node_features:
        ``(n_nodes, feature_dim)``: semantic ‖ structure vectors, in
        execution order.
    child_mask:
        Boolean ``(n_nodes, n_nodes)`` child adjacency for node-aware
        attention.
    resources:
        Normalized resource vector (eq. 1).
    extras:
        Plan-level statistical features (cardinality etc.).
    """

    node_features: np.ndarray
    child_mask: np.ndarray
    resources: np.ndarray
    extras: np.ndarray

    @property
    def num_nodes(self) -> int:
        """Number of plan operators encoded."""
        return self.node_features.shape[0]


class PlanEncoder:
    """Encodes physical plans for the deep cost models.

    Parameters
    ----------
    semantic:
        Trained node-semantic encoder (word2vec based). When ``None``
        together with ``use_onehot=True``, nodes are encoded with the
        Table II one-hot scheme instead (for the ablation).
    structure:
        Structure encoder; pass ``None`` with ``use_structure=False``
        to drop structure features (the NE-LSTM ablation).
    """

    def __init__(
        self,
        semantic: NodeSemanticEncoder | None = None,
        structure: StructureEncoder | None = None,
        use_structure: bool = True,
        use_onehot: bool = False,
    ) -> None:
        if semantic is None and not use_onehot:
            raise EncodingError("need a semantic encoder or use_onehot=True")
        self.semantic = semantic
        self.use_onehot = use_onehot
        self._onehot = OneHotOperatorEncoder() if use_onehot else None
        self.use_structure = use_structure
        self.structure = structure or (StructureEncoder() if use_structure else None)

    @classmethod
    def fit(cls, plans: list[PhysicalPlan],
            word2vec_config: Word2VecConfig | None = None,
            max_nodes: int = 48,
            use_structure: bool = True,
            use_onehot: bool = False) -> "PlanEncoder":
        """Fit the word2vec semantic encoder on a workload's plans."""
        semantic = None
        if not use_onehot:
            semantic = NodeSemanticEncoder.fit(plans, config=word2vec_config)
        return cls(
            semantic=semantic,
            structure=StructureEncoder(max_nodes=max_nodes),
            use_structure=use_structure,
            use_onehot=use_onehot,
        )

    @property
    def node_dim(self) -> int:
        """Per-node feature length after concatenation."""
        base = self._onehot.dim if self.use_onehot else self.semantic.dim
        if self.use_structure:
            base += self.structure.dim
        return base

    @property
    def extras_dim(self) -> int:
        """Number of plan-level extra features."""
        return len(EXTRA_FEATURE_NAMES)

    # -- encoding ------------------------------------------------------------
    def _semantic_matrix(self, plan: PhysicalPlan) -> np.ndarray:
        if self.use_onehot:
            return np.stack([self._onehot.encode_node(n) for n in plan.nodes()])
        return self.semantic.encode_plan_nodes(plan)

    def _plan_extras(self, plan: PhysicalPlan) -> np.ndarray:
        nodes = plan.nodes()
        est_result = max(plan.root.est_rows, 0.0)
        est_bytes = sum(max(n.est_bytes, 0.0) for n in nodes)
        num_joins = sum(1 for n in nodes if n.op_name in _JOIN_OPS)

        def depth(node) -> int:
            if not node.children:
                return 1
            return 1 + max(depth(c) for c in node.children)

        max_nodes = self.structure.max_nodes if self.structure else 48
        return np.array([
            math.log1p(est_result) / _LOG_ROWS_CAP,
            math.log1p(est_bytes) / _LOG_BYTES_CAP,
            len(nodes) / max_nodes,
            num_joins / 8.0,
            depth(plan.root) / max_nodes,
        ])

    def encode(self, plan: PhysicalPlan, resources: ResourceProfile) -> EncodedPlan:
        """Encode one (plan, resource state) pair.

        Without structure features (the NE-LSTM ablation) the model must
        not receive edge information through any channel, so the
        attention child mask degrades to "every other node" — plain
        self-attention with no tree knowledge.
        """
        semantic = self._semantic_matrix(plan)
        if self.use_structure:
            structure = self.structure.encode_plan(plan)
            node_features = np.concatenate([semantic, structure], axis=1)
            child_mask = self.structure.child_mask(plan)
        else:
            node_features = semantic
            n = plan.num_nodes
            child_mask = ~np.eye(n, dtype=bool)
        return EncodedPlan(
            node_features=node_features,
            child_mask=child_mask,
            resources=resources.as_features(),
            extras=self._plan_extras(plan),
        )

    def encode_many(self, pairs: list[tuple[PhysicalPlan, ResourceProfile]]) -> list[EncodedPlan]:
        """Encode a list of (plan, resources) pairs."""
        return [self.encode(plan, res) for plan, res in pairs]
