"""Micro-batching request queue: coalesce concurrent predicts.

A prediction service receives many small requests — one query's
candidate plans under one resource profile — from many concurrent
clients. Scoring each request alone wastes the engine: every call pays
the guard/telemetry overhead and runs small, padding-heavy GEMMs.
:class:`MicroBatcher` turns that stream into fused forwards:

* the first request of a lull opens a **batching window** (a few
  milliseconds); every request arriving inside the window joins it;
* the window closes early when the batch reaches ``max_pairs``
  (plan, resources) pairs, so a burst never waits out the full window;
* the fused batch runs through one ``execute`` call — which feeds the
  guarded predictor's length-bucketed
  :class:`~repro.core.execution.BucketExecutor` as a single forward —
  and the result vector is scattered back to the waiting callers.

Deadlines are honoured per request: an expired request is answered
with :class:`~repro.errors.DeadlineExceeded` without occupying the
batch, and a fused batch executes under the *tightest* member deadline
— under the guarded chain an expiry degrades the whole batch to the
analytic fallback (cheap and well within any budget) rather than
returning late learned answers. Admission-control sheds surface per
the guard's ``shed_mode`` exactly as they do for direct calls: the
batch degrades (``fallback``) or every member sees
:class:`~repro.errors.Overloaded` (``reject``).

With ``window_ms=0`` the batcher degenerates to per-request dispatch
on the caller's thread — the comparison arm of the serving benchmark
and the right mode for single-client deployments.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro import obs
from repro.errors import PredictionError, ReproError
from repro.reliability.deadline import Deadline

__all__ = ["BatchItem", "MicroBatcher"]


class BatchItem:
    """One caller's slot in a fused batch (a tiny one-shot future)."""

    __slots__ = ("pairs", "deadline", "event", "result", "offset",
                 "batch_size", "error")

    def __init__(self, pairs, deadline: Deadline | None) -> None:
        self.pairs = pairs
        self.deadline = deadline
        self.event = threading.Event()
        self.result = None          # ExplainedPredictions of the fused batch
        self.offset = 0             # this caller's slice start in the batch
        self.batch_size = 0         # fused pairs (for telemetry/responses)
        self.error: BaseException | None = None

    def resolve(self, result, offset: int, batch_size: int) -> None:
        self.result = result
        self.offset = offset
        self.batch_size = batch_size
        self.event.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self.event.set()


class MicroBatcher:
    """Window-based request coalescer in front of one serving model.

    Parameters
    ----------
    execute:
        ``execute(pairs, deadline)`` scoring a fused pair list in one
        call — typically a closure over the model shard's current
        :class:`~repro.reliability.guard.GuardedCostPredictor` so the
        whole batch is served by exactly one model version.
    window_ms:
        Batching window opened by the first request of a lull. ``0``
        disables batching: submits execute inline on the caller's
        thread.
    max_pairs:
        Close the window early once the batch holds this many pairs.
    name:
        Telemetry label (``serve.batch.*`` metrics are shared; the
        ``shard`` annotation distinguishes shards).
    """

    def __init__(self, execute: Callable, window_ms: float = 2.0,
                 max_pairs: int = 64, name: str = "default",
                 clock: Callable[[], float] = time.monotonic) -> None:
        if window_ms < 0:
            raise ReproError(f"window_ms must be >= 0, got {window_ms}")
        if max_pairs < 1:
            raise ReproError(f"max_pairs must be >= 1, got {max_pairs}")
        self.execute = execute
        self.window = window_ms / 1e3
        self.max_pairs = int(max_pairs)
        self.name = name
        self._clock = clock
        self._cv = threading.Condition(threading.Lock())
        self._queue: list[BatchItem] = []
        self._closed = False
        self._thread: threading.Thread | None = None
        # Cumulative accounting (also exported as serve.batch.* metrics).
        self.batches = 0
        self.batched_pairs = 0
        self.coalesced_requests = 0

    @property
    def enabled(self) -> bool:
        """Whether requests are coalesced (``window_ms > 0``)."""
        return self.window > 0

    # -- lifecycle ---------------------------------------------------------
    def _ensure_thread(self) -> None:
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._loop, name=f"repro-batcher-{self.name}",
                daemon=True)
            self._thread.start()

    def close(self) -> None:
        """Stop the dispatcher; queued requests fail with a typed error."""
        with self._cv:
            self._closed = True
            pending, self._queue = self._queue, []
            self._cv.notify_all()
        for item in pending:
            item.fail(PredictionError("batcher closed while request queued"))
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # -- submission --------------------------------------------------------
    def submit(self, pairs, deadline: Deadline | None = None,
               timeout: float | None = 30.0) -> BatchItem:
        """Score ``pairs``, coalescing with concurrent submissions.

        Returns the resolved :class:`BatchItem`; raises the batch's
        error when the fused call failed (``Overloaded`` under
        ``shed_mode="reject"``, :class:`PredictionError` when the
        guard's whole chain failed).
        """
        if not pairs:
            raise PredictionError("cannot submit an empty pair list")
        if deadline is not None and deadline.expired():
            # Fail fast without occupying a batch slot: queueing work
            # that is already late only steals window time from
            # requests that can still make their budget.
            deadline.check("at batch submit")
        item = BatchItem(pairs, deadline)
        if not self.enabled or self._closed:
            self._run_batch([item])
        else:
            with self._cv:
                if self._closed:
                    raise PredictionError("batcher is closed")
                self._queue.append(item)
                self._ensure_thread()
                self._cv.notify()
            if not item.event.wait(timeout):
                raise PredictionError(
                    f"batched request timed out after {timeout}s "
                    f"(dispatcher stalled?)")
        if item.error is not None:
            raise item.error
        return item

    # -- the dispatcher ----------------------------------------------------
    def _collect(self) -> list[BatchItem]:
        """Block for the first request, then drain one window's worth."""
        with self._cv:
            while not self._queue and not self._closed:
                self._cv.wait()
            if self._closed:
                return []
            window_ends = self._clock() + self.window
            pairs = sum(len(i.pairs) for i in self._queue)
            while pairs < self.max_pairs:
                left = window_ends - self._clock()
                if left <= 0:
                    break
                self._cv.wait(left)
                if self._closed:
                    break
                pairs = sum(len(i.pairs) for i in self._queue)
            batch, self._queue = self._queue, []
            return batch

    def _loop(self) -> None:
        while True:
            batch = self._collect()
            if not batch:
                return
            self._run_batch(batch)

    def _run_batch(self, batch: list[BatchItem]) -> None:
        """Execute one fused batch and scatter the results."""
        fused: list = []
        offsets: list[int] = []
        deadline: Deadline | None = None
        for item in batch:
            offsets.append(len(fused))
            fused.extend(item.pairs)
            if item.deadline is not None and (
                    deadline is None
                    or item.deadline.expires_at < deadline.expires_at):
                deadline = item.deadline
        try:
            result = self.execute(fused, deadline)
        except BaseException as exc:  # scatter the failure, keep dispatching
            for item in batch:
                item.fail(exc)
            return
        self.batches += 1
        self.batched_pairs += len(fused)
        self.coalesced_requests += len(batch)
        obs.inc("serve.batch.batches_total",
                help="Fused micro-batches executed")
        obs.inc("serve.batch.requests_total", len(batch),
                help="Requests served through fused micro-batches")
        obs.observe("serve.batch.pairs", float(len(fused)),
                    help="Pairs per fused micro-batch",
                    buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
                             256.0))
        for item, offset in zip(batch, offsets):
            item.resolve(result, offset, len(fused))

    def snapshot(self) -> dict:
        """Point-in-time accounting for health endpoints and tests."""
        with self._cv:
            queued = len(self._queue)
        return {
            "enabled": self.enabled,
            "window_ms": self.window * 1e3,
            "max_pairs": self.max_pairs,
            "queued": queued,
            "batches": self.batches,
            "batched_pairs": self.batched_pairs,
            "coalesced_requests": self.coalesced_requests,
        }
