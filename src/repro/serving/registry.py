"""Model registry: shards by model id, hot swap by shadow + promote.

The serving layer holds one :class:`ModelShard` per model id (tenant).
Each shard owns its own micro-batcher and guarded predictor, so two
tenants never contend on a lock, a batch window, or a breaker — the
"worker pool sharded by model id".

A shard's current model is replaced with **zero downtime**:

1. ``deploy`` loads a candidate checkpoint — after
   :func:`~repro.core.persistence.verify_checkpoint` proves the
   SHA-256 manifest intact — next to the incumbent;
2. the candidate **shadow-scores live traffic**: every fused batch the
   incumbent serves is re-scored on the candidate (off the response
   path, inside the shard's dispatcher thread) and the divergence is
   folded into an :class:`~repro.obs.quality.AccuracyTracker` as the
   q-error of candidate-vs-incumbent predictions;
3. ``promote`` — manual or automatic once ``shadow_requests`` batches
   accrue — atomically swaps the shard's model reference when the
   candidate's mean divergence is inside ``max_qerror`` (or is forced);
   ``rollback`` swaps the previous incumbent back.

The swap itself is one attribute store under the shard's swap lock;
readers resolve ``shard.current`` exactly once per fused batch, so an
in-flight batch is always served end-to-end by one model version —
old or new, never a torn mixture. Retired models are kept referenced
(rollback needs the previous one anyway) and their executors are only
closed when the shard shuts down, so late batches on the old version
finish safely.

Every loaded model gets a version string ``g<generation>-<sha12>``:
a monotonically increasing generation plus the first 12 hex chars of
the checkpoint's manifest hash
(:func:`~repro.core.persistence.checkpoint_fingerprint`), so responses
carry provenance that survives identical-weight redeploys.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro import obs
from repro.baselines.gpsj import GPSJCostModel
from repro.core.persistence import (
    checkpoint_fingerprint,
    load_predictor,
    verify_checkpoint,
)
from repro.core.predictor import CostPredictor, PredictorConfig
from repro.errors import (CheckpointError, DeployConflict, ModelNotFound,
                          PredictionError)
from repro.obs.audit import AuditTrail
from repro.obs.quality import AccuracyTracker, DriftDetector
from repro.obs.slo import SLO, SLOTracker
from repro.reliability.admission import AdmissionController
from repro.reliability.canary import AccuracyCanary
from repro.reliability.deadline import Deadline
from repro.reliability.guard import GuardedCostPredictor
from repro.reliability.ladder import DegradationLadder
from repro.serving.batcher import BatchItem, MicroBatcher

__all__ = ["ServingModel", "CandidateState", "ModelShard", "ModelRegistry"]


@dataclass(frozen=True)
class ServingModel:
    """One loaded model version behind a shard (immutable record)."""

    version: str
    guard: GuardedCostPredictor
    checkpoint: str | None = None
    loaded_at: float = 0.0


@dataclass
class CandidateState:
    """A deployed-but-not-promoted model shadowing live traffic."""

    model: ServingModel
    shadow_requests: int
    max_qerror: float
    auto_promote: bool
    tracker: AccuracyTracker = field(default_factory=AccuracyTracker)
    shadow_batches: int = 0
    shadow_errors: int = 0

    def snapshot(self) -> dict:
        overall = self.tracker.snapshot()["overall"]
        return {
            "version": self.model.version,
            "checkpoint": self.model.checkpoint,
            "shadow_batches": self.shadow_batches,
            "shadow_target": self.shadow_requests,
            "shadow_errors": self.shadow_errors,
            "divergence_mean": overall.get("mean"),
            "divergence_p95": overall.get("p95"),
            "samples": overall.get("count", 0),
            "max_qerror": self.max_qerror,
            "auto_promote": self.auto_promote,
        }


class ModelShard:
    """One model id's serving lane: batcher + swap lock + history.

    The shard's :class:`MicroBatcher` dispatcher thread is its worker;
    shards never share queues, breakers, or swap locks. The per-shard
    :class:`~repro.obs.audit.AuditTrail` and
    :class:`~repro.obs.slo.SLOTracker` are shared across the shard's
    model *versions* (a swap must not reset request-id minting or the
    SLO burn history), while quality tracking and the degradation
    ladder are per-version — they measure one model.
    """

    def __init__(self, model_id: str, build_guard: Callable,
                 window_ms: float = 2.0, max_pairs: int = 64,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.model_id = model_id
        self._build_guard = build_guard
        self._clock = clock
        self._swap_lock = threading.Lock()
        self._generation = 0
        self.current: ServingModel | None = None
        self.candidate: CandidateState | None = None
        self._previous: ServingModel | None = None
        self._retired: list[ServingModel] = []
        self.batcher = MicroBatcher(self._execute, window_ms=window_ms,
                                    max_pairs=max_pairs, name=model_id,
                                    clock=clock)

    # -- serving -----------------------------------------------------------
    def predict(self, pairs, deadline: Deadline | None = None) -> BatchItem:
        """Score pairs through the micro-batcher; see :class:`BatchItem`."""
        if self.current is None:
            raise PredictionError(
                f"model {self.model_id!r} has no promoted version yet")
        return self.batcher.submit(pairs, deadline=deadline)

    def _execute(self, pairs, deadline: Deadline | None):
        """One fused batch: resolve the model once, serve, shadow-score.

        ``self.current`` is read exactly once; the whole batch — and
        its provenance — belongs to that version even if a promote
        lands mid-flight.
        """
        model = self.current
        if model is None:
            raise PredictionError(
                f"model {self.model_id!r} has no promoted version yet")
        explained = model.guard.predict_many_explained(pairs,
                                                       deadline=deadline)
        self._shadow(pairs, explained)
        # Version travels with the result via an attribute rather than
        # the dataclass (ExplainedPredictions stays serving-agnostic).
        object.__setattr__(explained, "_model_version", model.version)
        return explained

    # -- hot swap ----------------------------------------------------------
    def _next_version(self, checkpoint: str | None) -> str:
        self._generation += 1
        sha = "unversioned"
        if checkpoint is not None:
            try:
                sha = checkpoint_fingerprint(checkpoint)[:12]
            except CheckpointError:
                sha = "unverified"
        return f"g{self._generation}-{sha}"

    def install(self, predictor: CostPredictor,
                checkpoint: str | None = None) -> ServingModel:
        """Install an initial (or forced) incumbent without shadowing."""
        model = ServingModel(
            version=self._next_version(checkpoint),
            guard=self._build_guard(predictor),
            checkpoint=checkpoint, loaded_at=self._clock())
        with self._swap_lock:
            if self.current is not None:
                self._retire(self.current)
            self.current = model
        obs.emit_event("serve", "model_installed", model=self.model_id,
                       version=model.version)
        return model

    def deploy(self, checkpoint: str, shadow_requests: int = 32,
               max_qerror: float = 1.5,
               auto_promote: bool = True) -> dict:
        """Verify + load a candidate checkpoint and start shadowing.

        Raises :class:`CheckpointError` when the manifest does not
        verify, and :class:`DeployConflict` when a candidate is
        already in flight (reject or promote it first). A shard with
        no incumbent promotes the candidate immediately — there is no
        traffic to shadow.
        """
        report = verify_checkpoint(checkpoint)
        if not report.ok:
            raise CheckpointError(f"refusing to deploy: {report.summary()}")
        with self._swap_lock:
            if self.candidate is not None:
                raise DeployConflict(
                    f"model {self.model_id!r} already has candidate "
                    f"{self.candidate.model.version}; promote or roll it "
                    f"back first")
        predictor = load_predictor(checkpoint)
        model = ServingModel(
            version=self._next_version(checkpoint),
            guard=self._build_guard(predictor),
            checkpoint=checkpoint, loaded_at=self._clock())
        state = CandidateState(
            model=model, shadow_requests=max(int(shadow_requests), 0),
            max_qerror=float(max_qerror), auto_promote=auto_promote)
        with self._swap_lock:
            if self.current is None:
                self.current = model
                obs.emit_event("serve", "model_installed",
                               model=self.model_id, version=model.version)
                return {"state": "promoted", "version": model.version}
            self.candidate = state
        obs.inc("serve.deploys_total", help="Candidate checkpoints deployed")
        obs.emit_event("serve", "candidate_deployed", model=self.model_id,
                       version=model.version, checkpoint=checkpoint,
                       shadow_requests=state.shadow_requests)
        if state.shadow_requests == 0 and auto_promote:
            return {"state": "promoted", "version": self.promote(force=True)}
        return {"state": "shadowing", "version": model.version}

    def _shadow(self, pairs, explained) -> None:
        """Score one live batch on the candidate (off the response path)."""
        state = self.candidate
        if state is None:
            return
        try:
            shadow = state.model.guard.predictor.predict_many(pairs)
            for cand, live in zip(shadow, explained.costs):
                state.tracker.record(float(cand), float(live))
            state.shadow_batches += 1
            obs.inc("serve.shadow_batches_total",
                    help="Live batches re-scored on a candidate model")
        except Exception as exc:  # candidate faults must not hurt serving
            state.shadow_errors += 1
            obs.inc("serve.shadow_errors_total",
                    help="Candidate shadow scoring failures")
            obs.emit_event("serve", "shadow_error", model=self.model_id,
                           version=state.model.version, error=str(exc))
            return
        if (state.auto_promote
                and state.shadow_batches >= state.shadow_requests):
            try:
                self.promote()
            except DeployConflict as exc:
                # Gate failed: reject the candidate so traffic stops
                # paying the shadow tax for a model that lost.
                obs.emit_event("serve", "candidate_rejected",
                               model=self.model_id,
                               version=state.model.version, reason=str(exc))
                with self._swap_lock:
                    if self.candidate is state:
                        self.candidate = None
                        self._retire(state.model)

    def _gate(self, state: CandidateState) -> str | None:
        """Reason the candidate may not be promoted (None = clear)."""
        overall = state.tracker.snapshot()["overall"]
        if state.shadow_errors and not overall.get("count"):
            return (f"candidate failed all {state.shadow_errors} shadow "
                    f"batches")
        if not overall.get("count"):
            return "candidate has no shadow samples yet"
        mean = overall.get("mean", float("inf"))
        if mean > state.max_qerror:
            return (f"candidate diverges from the incumbent: mean shadow "
                    f"q-error {mean:.3f} > budget {state.max_qerror:.3f}")
        return None

    def promote(self, force: bool = False) -> str:
        """Atomically make the candidate the incumbent; returns version.

        Without ``force`` the shadow gate must pass: at least one
        shadow sample, mean candidate-vs-incumbent q-error within the
        deploy's ``max_qerror``.
        """
        with self._swap_lock:
            state = self.candidate
            if state is None:
                raise DeployConflict(
                    f"model {self.model_id!r} has no candidate to promote")
            if not force:
                reason = self._gate(state)
                if reason is not None:
                    raise DeployConflict(f"promotion gate failed: {reason}")
            old, self.current = self.current, state.model
            self.candidate = None
            if self._previous is not None:
                self._retired.append(self._previous)
            self._previous = old
        obs.inc("serve.promotions_total", help="Candidate models promoted")
        obs.emit_event("serve", "model_promoted", model=self.model_id,
                       version=state.model.version,
                       previous=old.version if old else None,
                       forced=force,
                       shadow_batches=state.shadow_batches)
        return state.model.version

    def rollback(self) -> str:
        """Swap the previous incumbent back; returns its version."""
        with self._swap_lock:
            if self._previous is None:
                raise DeployConflict(
                    f"model {self.model_id!r} has no previous version to "
                    f"roll back to")
            demoted, self.current = self.current, self._previous
            self._previous = None
            if demoted is not None:
                self._retired.append(demoted)
        obs.inc("serve.rollbacks_total", help="Model rollbacks")
        obs.emit_event("serve", "model_rolled_back", model=self.model_id,
                       version=self.current.version,
                       demoted=demoted.version if demoted else None)
        return self.current.version

    def _retire(self, model: ServingModel) -> None:
        """Park a replaced model; executors close at shard shutdown."""
        self._retired.append(model)

    # -- lifecycle / introspection ----------------------------------------
    def close(self) -> None:
        """Stop the dispatcher and release every version's executor."""
        self.batcher.close()
        for model in self._retired:
            model.guard.close()
        self._retired = []
        for slot in (self._previous, self.current,
                     self.candidate.model if self.candidate else None):
            if slot is not None:
                slot.guard.close()

    def snapshot(self) -> dict:
        """JSON-friendly shard state for ``/v1/models`` and health."""
        current = self.current
        return {
            "model": self.model_id,
            "version": current.version if current else None,
            "checkpoint": current.checkpoint if current else None,
            "previous": (self._previous.version
                         if self._previous is not None else None),
            "candidate": (self.candidate.snapshot()
                          if self.candidate is not None else None),
            "batcher": self.batcher.snapshot(),
        }


class ModelRegistry:
    """All shards of one serving process, keyed by model id.

    ``build_guard`` is supplied by the service so every shard's guard
    shares the serving policy (precision config, deadlines, shed mode)
    while owning its own reliability state.
    """

    def __init__(self, build_guard_factory: Callable[[str], Callable],
                 window_ms: float = 2.0, max_pairs: int = 64,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self._factory = build_guard_factory
        self._window_ms = window_ms
        self._max_pairs = max_pairs
        self._clock = clock
        self._lock = threading.Lock()
        self._shards: dict[str, ModelShard] = {}

    def shard(self, model_id: str, create: bool = False) -> ModelShard:
        """Look up (or lazily create) the shard for ``model_id``."""
        with self._lock:
            existing = self._shards.get(model_id)
            if existing is not None:
                return existing
            if not create:
                raise ModelNotFound(f"unknown model {model_id!r}")
            shard = ModelShard(model_id, self._factory(model_id),
                               window_ms=self._window_ms,
                               max_pairs=self._max_pairs, clock=self._clock)
            self._shards[model_id] = shard
            return shard

    def ids(self) -> list[str]:
        with self._lock:
            return sorted(self._shards)

    def snapshot(self) -> dict:
        return {model_id: self.shard(model_id).snapshot()
                for model_id in self.ids()}

    def close(self) -> None:
        with self._lock:
            shards, self._shards = list(self._shards.values()), {}
        for shard in shards:
            shard.close()


def default_guard_builder(catalog, workload: str | None = None,
                          exec_config: PredictorConfig | None = None,
                          default_deadline_ms: float | None = None,
                          shed_mode: str = "fallback",
                          admission_config=None) -> Callable[[str], Callable]:
    """Standard serving guard wiring shared by CLI and tests.

    Returns a ``build_guard_factory`` for :class:`ModelRegistry`: per
    shard it creates one shared audit trail and SLO tracker, and per
    model version a fully armed guard (GPSJ fallback, admission
    control, degradation ladder, accuracy canary, quality tracking).
    """
    def factory(model_id: str) -> Callable:
        audit = AuditTrail()
        slo = SLOTracker([
            SLO(name="latency", threshold=0.25, objective=0.999),
            SLO(name="qerror", threshold=2.0, objective=0.95),
        ])

        def build(predictor: CostPredictor) -> GuardedCostPredictor:
            if exec_config is not None and exec_config != predictor.config:
                predictor = predictor.configured(exec_config)
            return GuardedCostPredictor(
                predictor,
                gpsj=GPSJCostModel(catalog) if catalog is not None else None,
                admission=AdmissionController(admission_config),
                ladder=DegradationLadder(),
                canary=AccuracyCanary(),
                quality=AccuracyTracker(drift=DriftDetector()),
                audit=audit,
                slo=slo,
                workload=workload or model_id,
                default_deadline_ms=default_deadline_ms,
                shed_mode=shed_mode,
            )
        return build
    return factory
