"""The prediction service: request handling behind the HTTP front-end.

:class:`PredictionService` is the transport-agnostic core of
``repro serve``: it owns the catalog, the per-model shards
(:class:`~repro.serving.registry.ModelRegistry`), a candidate-plan
cache, and the telemetry bundle, and exposes each endpoint as a plain
``dict in → dict out`` method. The HTTP layer
(:mod:`repro.serving.http`) only parses bodies, maps typed errors to
status codes, and serializes responses — so the whole surface is unit
testable without sockets.

Request flow for ``predict``:

1. the SQL is parsed/analyzed once and its candidate plans come from a
   bounded LRU keyed by the statement (steady-state request cost is a
   cache hit plus the model forward);
2. the (plan, profile) pairs are submitted to the model's shard, whose
   micro-batcher coalesces them with concurrent requests into one
   fused forward through the guarded predictor;
3. the response carries costs, the chosen plan, chain provenance
   (``source``/``reason``), the serving ``model_version``, and the
   audit ``request_id`` + per-plan feedback indexes that close the
   quality loop via the ``feedback`` endpoint.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.cluster.resources import PAPER_CLUSTER, ResourceProfile
from repro.core.persistence import load_predictor
from repro.core.predictor import CostPredictor, PredictorConfig
from repro.errors import ReproError, ServingError
from repro.plan.builder import analyze
from repro.plan.enumerator import enumerate_plans
from repro.reliability.admission import AdmissionConfig
from repro.reliability.deadline import Deadline
from repro.serving.registry import ModelRegistry, default_guard_builder
from repro.sql.parser import parse as parse_sql

__all__ = ["ServingConfig", "PredictionService", "DEFAULT_MODEL_ID"]

DEFAULT_MODEL_ID = "default"

#: Resource keys accepted in request bodies (``memory_gb`` is an alias
#: for ``executor_memory_gb``; everything else defaults to the paper
#: cluster shape).
_PROFILE_KEYS = ("nodes", "cores_per_node", "executors", "executor_cores",
                 "executor_memory_gb", "network_throughput_mbps",
                 "disk_throughput_mbps")


@dataclass(frozen=True)
class ServingConfig:
    """Boot-time policy of one serving process (CLI flags mirror this)."""

    dataset: str = "imdb"
    catalog_scale: float = 0.15
    #: Micro-batching window; ``0`` disables coalescing entirely.
    batch_window_ms: float = 2.0
    #: Close a batching window early at this many fused pairs.
    max_batch_pairs: int = 64
    #: Serving execution policy applied to every loaded model.
    precision: str = "f64"
    threads: int = 1
    #: Synthesized per request when the body carries no ``deadline_ms``.
    default_deadline_ms: float | None = None
    #: ``fallback`` serves shed/blown-deadline requests analytically;
    #: ``reject`` surfaces 429/504 to the client instead.
    shed_mode: str = "fallback"
    #: Learned-stage concurrency bound (admission control).
    max_in_flight: int = 4
    max_queue_depth: int = 8
    #: Candidate-plan LRU entries (distinct SQL statements).
    plan_cache_size: int = 256


class PredictionService:
    """Transport-agnostic serving core (see module docstring).

    Parameters
    ----------
    config:
        Boot policy; :class:`ServingConfig` defaults match the CLI.
    catalog:
        Injectable for tests; built from ``config.dataset`` otherwise.
    telemetry:
        Optional bundle. When omitted, an already-attached process
        bundle is reused, else the service creates and attaches its
        own (and detaches it again on :meth:`close`).
    clock:
        Injectable monotonic clock shared with shards and batchers.
    """

    def __init__(self, config: ServingConfig | None = None,
                 catalog=None, telemetry=None,
                 clock=time.monotonic) -> None:
        self.config = config or ServingConfig()
        self._clock = clock
        self._started = clock()
        self._owns_telemetry = False
        if telemetry is None:
            telemetry = obs.active()
        if telemetry is None:
            telemetry = obs.Telemetry.create()
            obs.attach(telemetry)
            self._owns_telemetry = True
        self.telemetry = telemetry
        if catalog is None:
            catalog = self._build_catalog()
        self.catalog = catalog
        exec_config = PredictorConfig(
            precision=self.config.precision, threads=self.config.threads,
            factor_grids=self.config.precision != "f64")
        self.registry = ModelRegistry(
            default_guard_builder(
                catalog,
                exec_config=exec_config,
                default_deadline_ms=self.config.default_deadline_ms,
                shed_mode=self.config.shed_mode,
                admission_config=AdmissionConfig(
                    max_in_flight=self.config.max_in_flight,
                    max_queue_depth=self.config.max_queue_depth)),
            window_ms=self.config.batch_window_ms,
            max_pairs=self.config.max_batch_pairs, clock=clock)
        self._plan_lock = threading.Lock()
        self._plan_cache: OrderedDict[str, list] = OrderedDict()
        self.draining = False

    def _build_catalog(self):
        from repro.data.imdb import build_imdb_catalog
        from repro.data.tpch import build_tpch_catalog

        builders = {"imdb": build_imdb_catalog, "tpch": build_tpch_catalog}
        if self.config.dataset not in builders:
            raise ServingError(f"unknown dataset {self.config.dataset!r}")
        return builders[self.config.dataset](scale=self.config.catalog_scale)

    # -- model lifecycle ---------------------------------------------------
    def install_model(self, predictor: CostPredictor,
                      model_id: str = DEFAULT_MODEL_ID,
                      checkpoint: str | None = None) -> str:
        """Install a boot-time incumbent; returns its version."""
        shard = self.registry.shard(model_id, create=True)
        return shard.install(predictor, checkpoint=checkpoint).version

    def load_model(self, checkpoint: str,
                   model_id: str = DEFAULT_MODEL_ID) -> str:
        """Load + install a checkpoint directory as the incumbent."""
        predictor = load_predictor(checkpoint)
        return self.install_model(predictor, model_id=model_id,
                                  checkpoint=checkpoint)

    def close(self) -> None:
        """Drain: stop dispatchers, close executors, release telemetry."""
        self.draining = True
        self.registry.close()
        if self._owns_telemetry and obs.active() is self.telemetry:
            obs.detach()

    # -- request plumbing --------------------------------------------------
    def _plans_for(self, sql: str) -> list:
        if not sql or not isinstance(sql, str):
            raise ServingError("request body needs a non-empty 'sql' string")
        key = " ".join(sql.split())
        with self._plan_lock:
            cached = self._plan_cache.get(key)
            if cached is not None:
                self._plan_cache.move_to_end(key)
                obs.inc("serve.plan_cache.hits_total",
                        help="Candidate-plan cache hits")
                return cached
        obs.inc("serve.plan_cache.misses_total",
                help="Candidate-plan cache misses")
        query = analyze(parse_sql(sql), self.catalog)
        plans = enumerate_plans(query, self.catalog)
        if not plans:
            raise ServingError(f"no candidate plans for statement: {sql!r}")
        with self._plan_lock:
            self._plan_cache[key] = plans
            self._plan_cache.move_to_end(key)
            while len(self._plan_cache) > self.config.plan_cache_size:
                self._plan_cache.popitem(last=False)
        return plans

    def _profile(self, resources: dict | None) -> ResourceProfile:
        if resources is None:
            resources = {}
        if not isinstance(resources, dict):
            raise ServingError("'resources' must be a JSON object")
        fields = {key: getattr(PAPER_CLUSTER, key) for key in _PROFILE_KEYS}
        resources = dict(resources)
        if "memory_gb" in resources:
            resources["executor_memory_gb"] = resources.pop("memory_gb")
        unknown = set(resources) - set(_PROFILE_KEYS)
        if unknown:
            raise ServingError(
                f"unknown resource fields {sorted(unknown)}; expected "
                f"{list(_PROFILE_KEYS)} (or 'memory_gb')")
        fields.update(resources)
        try:
            return ResourceProfile(
                nodes=int(fields["nodes"]),
                cores_per_node=int(fields["cores_per_node"]),
                executors=int(fields["executors"]),
                executor_cores=int(fields["executor_cores"]),
                executor_memory_gb=float(fields["executor_memory_gb"]),
                network_throughput_mbps=float(
                    fields["network_throughput_mbps"]),
                disk_throughput_mbps=float(fields["disk_throughput_mbps"]))
        except (TypeError, ValueError) as exc:
            raise ServingError(f"invalid resource profile: {exc}") from exc

    def _deadline(self, body: dict) -> Deadline | None:
        deadline_ms = body.get("deadline_ms")
        if deadline_ms is None:
            deadline_ms = self.config.default_deadline_ms
        if deadline_ms is None:
            return None
        try:
            deadline_ms = float(deadline_ms)
        except (TypeError, ValueError) as exc:
            raise ServingError(
                f"'deadline_ms' must be a number, got {deadline_ms!r}"
            ) from exc
        if deadline_ms <= 0:
            raise ServingError(f"'deadline_ms' must be > 0, got {deadline_ms}")
        # Created before queueing so batch-window wait counts against
        # the request's budget, not on top of it.
        return Deadline.from_ms(deadline_ms, clock=self._clock)

    def _shard(self, body: dict):
        model_id = body.get("model", DEFAULT_MODEL_ID)
        if not isinstance(model_id, str) or not model_id:
            raise ServingError("'model' must be a non-empty string")
        return self.registry.shard(model_id)

    @staticmethod
    def _observe_endpoint(endpoint: str, seconds: float) -> None:
        obs.inc(f"serve.{endpoint}.requests_total",
                help="Requests handled by this endpoint")
        obs.observe(f"serve.{endpoint}.latency_seconds", seconds,
                    help="End-to-end endpoint latency")

    # -- endpoints ---------------------------------------------------------
    def predict(self, body: dict) -> dict:
        """Score one statement's candidate plans under one profile."""
        start = self._clock()
        shard = self._shard(body)
        plans = self._plans_for(body.get("sql"))
        profile = self._profile(body.get("resources"))
        deadline = self._deadline(body)
        pairs = [(plan, profile) for plan in plans]
        item = shard.predict(pairs, deadline=deadline)
        explained = item.result
        costs = np.asarray(
            explained.costs[item.offset:item.offset + len(pairs)])
        best = int(np.argmin(costs))
        latency = self._clock() - start
        self._observe_endpoint("predict", latency)
        return {
            "model": shard.model_id,
            "model_version": getattr(explained, "_model_version", None),
            "request_id": explained.request_id,
            "source": explained.source,
            "reason": explained.reason,
            "chosen": plans[best].label or plans[best].signature(),
            "plans": [
                {"plan": plan.label or plan.signature(),
                 "seconds": float(cost),
                 "feedback_index": item.offset + i}
                for i, (plan, cost) in enumerate(zip(plans, costs))
            ],
            "latency_ms": latency * 1e3,
            "batched": item.batch_size > len(pairs),
            "batch_pairs": item.batch_size,
        }

    def predict_grid(self, body: dict) -> dict:
        """Score candidate plans under many profiles (one fused call)."""
        start = self._clock()
        shard = self._shard(body)
        plans = self._plans_for(body.get("sql"))
        profiles_body = body.get("profiles")
        if not isinstance(profiles_body, list) or not profiles_body:
            raise ServingError(
                "request body needs a non-empty 'profiles' array")
        profiles = [self._profile(p) for p in profiles_body]
        deadline = self._deadline(body)
        pairs = [(plan, profile) for profile in profiles for plan in plans]
        item = shard.predict(pairs, deadline=deadline)
        explained = item.result
        costs = np.asarray(
            explained.costs[item.offset:item.offset + len(pairs)])
        grid = costs.reshape(len(profiles), len(plans))
        latency = self._clock() - start
        self._observe_endpoint("predict_grid", latency)
        return {
            "model": shard.model_id,
            "model_version": getattr(explained, "_model_version", None),
            "request_id": explained.request_id,
            "source": explained.source,
            "reason": explained.reason,
            "plans": [plan.label or plan.signature() for plan in plans],
            "profiles": len(profiles),
            "costs": [[float(c) for c in row] for row in grid],
            "feedback_index": item.offset,
            "latency_ms": latency * 1e3,
            "batched": item.batch_size > len(pairs),
            "batch_pairs": item.batch_size,
        }

    def feedback(self, body: dict) -> dict:
        """Attach an observed runtime to a served prediction."""
        start = self._clock()
        shard = self._shard(body)
        request_id = body.get("request_id")
        if not isinstance(request_id, str) or not request_id:
            raise ServingError("'request_id' must be a non-empty string")
        observed = body.get("observed_seconds")
        try:
            observed = float(observed)
        except (TypeError, ValueError) as exc:
            raise ServingError(
                f"'observed_seconds' must be a number, got {observed!r}"
            ) from exc
        index = body.get("index", 0)
        if not isinstance(index, int) or index < 0:
            raise ServingError(f"'index' must be a non-negative integer, "
                               f"got {index!r}")
        model = shard.current
        if model is None:
            raise ServingError(f"model {shard.model_id!r} is not serving")
        q_error = model.guard.record_observation(request_id, observed,
                                                index=index)
        self._observe_endpoint("feedback", self._clock() - start)
        return {
            "model": shard.model_id,
            "request_id": request_id,
            "index": index,
            "recorded": q_error is not None,
            "q_error": q_error,
        }

    def deploy(self, body: dict) -> dict:
        """Verify + load a candidate checkpoint for shadow scoring."""
        checkpoint = body.get("checkpoint")
        if not isinstance(checkpoint, str) or not checkpoint:
            raise ServingError("'checkpoint' must be a checkpoint directory")
        model_id = body.get("model", DEFAULT_MODEL_ID)
        shard = self.registry.shard(model_id, create=True)
        outcome = shard.deploy(
            checkpoint,
            shadow_requests=int(body.get("shadow_requests", 32)),
            max_qerror=float(body.get("max_qerror", 1.5)),
            auto_promote=bool(body.get("auto_promote", True)))
        self._observe_endpoint("deploy", 0.0)
        return {"model": model_id, **outcome}

    def promote(self, body: dict) -> dict:
        """Promote the shadowing candidate (``force`` skips the gate)."""
        shard = self._shard(body)
        version = shard.promote(force=bool(body.get("force", False)))
        return {"model": shard.model_id, "state": "promoted",
                "version": version}

    def rollback(self, body: dict) -> dict:
        """Swap the previous incumbent back in."""
        shard = self._shard(body)
        version = shard.rollback()
        return {"model": shard.model_id, "state": "rolled_back",
                "version": version}

    def models(self) -> dict:
        """Registry listing for ``GET /v1/models``."""
        return {"models": self.registry.snapshot()}

    def health(self) -> dict:
        """Liveness + posture for ``GET /healthz``.

        ``status`` is ``ok`` when every shard's ladder sits on its
        healthy rung, ``degraded`` when any shard is degraded or
        fallen back, and ``draining`` during shutdown.
        """
        models: dict[str, dict] = {}
        worst = "ok"
        for model_id in self.registry.ids():
            shard = self.registry.shard(model_id)
            current = shard.current
            if current is None:
                models[model_id] = {"version": None, "state": "empty"}
                continue
            state = current.guard.health_state()
            models[model_id] = {
                "version": current.version,
                "ladder": state["ladder"],
                "precision": state["precision"],
                "breakers": state["breakers"],
                "shed_mode": state["shed_mode"],
                "admission": state.get("admission"),
                "candidate": (shard.candidate.snapshot()
                              if shard.candidate is not None else None),
                "batcher": shard.batcher.snapshot(),
            }
            if state["ladder"] != "healthy":
                worst = "degraded"
        status = "draining" if self.draining else worst
        return {
            "status": status,
            "uptime_seconds": self._clock() - self._started,
            "dataset": self.config.dataset,
            "batching": self.config.batch_window_ms > 0,
            "models": models,
        }

    def metrics_text(self) -> str:
        """Prometheus exposition of the service's registry."""
        return self.telemetry.registry.to_prometheus()
