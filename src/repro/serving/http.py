"""Stdlib HTTP front-end for :class:`~repro.serving.service.PredictionService`.

The transport layer is deliberately thin: parse the JSON body, look the
path up in the declarative :data:`ROUTES` table, call the matching
service method, serialize the result, and map typed errors onto HTTP
status codes. All request semantics (batching, deadlines, hot swap)
live in :mod:`repro.serving.service` and below, so this file stays
small enough to audit and the docs-surface lint can enumerate the API
from :data:`ROUTES` directly.

Status mapping (see ``docs/API.md``):

====  ==================================================================
400   malformed request — :class:`~repro.errors.ServingError`,
      SQL parse/analysis errors, bad resource profiles
404   unknown route, or unknown model id
      (:class:`~repro.errors.ModelNotFound`)
405   method not allowed for a known path
409   deploy/promote/rollback conflicts
      (:class:`~repro.errors.DeployConflict`, and checkpoint
      verification failures)
429   admission shed under ``shed_mode=reject``
      (:class:`~repro.errors.Overloaded`)
500   prediction chain exhausted, or any unexpected server error
504   deadline blown under ``shed_mode=reject``
      (:class:`~repro.errors.DeadlineExceeded`)
====  ==================================================================

Concurrency: :class:`ThreadingHTTPServer` gives one thread per
connection (HTTP/1.1 keep-alive), which is exactly what the
micro-batcher wants — concurrent request threads parked inside the
batching window so their pairs fuse into one forward.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import (CheckpointError, DeadlineExceeded, DeployConflict,
                          ModelNotFound, Overloaded, PredictionError,
                          ReproError, ServingError, SQLError)
from repro.serving.service import PredictionService

__all__ = ["Route", "ROUTES", "ReproHTTPServer", "serve"]


@dataclass(frozen=True)
class Route:
    """One HTTP endpoint: the docs lint enumerates these."""

    method: str
    path: str
    handler: str       # PredictionService method name
    body: bool         # whether a JSON body is parsed and passed
    summary: str


ROUTES = (
    Route("POST", "/v1/predict", "predict", True,
          "Score one statement's candidate plans under a resource profile"),
    Route("POST", "/v1/predict_grid", "predict_grid", True,
          "Score candidate plans under many resource profiles at once"),
    Route("POST", "/v1/feedback", "feedback", True,
          "Report an observed runtime for a served prediction"),
    Route("GET", "/v1/models", "models", False,
          "List serving models, versions, and swap state"),
    Route("GET", "/healthz", "health", False,
          "Liveness plus ladder/breaker/admission posture per model"),
    Route("GET", "/metrics", "metrics_text", False,
          "Prometheus text exposition of the serving metrics"),
    Route("POST", "/admin/deploy", "deploy", True,
          "Verify and stage a candidate checkpoint for shadow scoring"),
    Route("POST", "/admin/promote", "promote", True,
          "Promote the shadowing candidate to incumbent"),
    Route("POST", "/admin/rollback", "rollback", True,
          "Swap the previous incumbent back in"),
)

_BY_PATH: dict[str, dict[str, Route]] = {}
for _route in ROUTES:
    _BY_PATH.setdefault(_route.path, {})[_route.method] = _route

#: Most specific first — isinstance() walks this in order.
_STATUS_MAP = (
    (DeadlineExceeded, 504),
    (Overloaded, 429),
    (ModelNotFound, 404),
    (DeployConflict, 409),
    (CheckpointError, 409),
    (ServingError, 400),
    (SQLError, 400),
    (PredictionError, 500),
    (ReproError, 400),
)


def _status_for(exc: BaseException) -> int:
    for kind, status in _STATUS_MAP:
        if isinstance(exc, kind):
            return status
    return 500


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"
    # Set by ReproHTTPServer; class attribute so the stdlib handler
    # factory (which only passes socket args) can reach the service.
    service: PredictionService

    # Silence the default stderr access log; requests are observable
    # through /metrics and the event log instead.
    def log_message(self, format, *args):  # noqa: A002 (stdlib signature)
        pass

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServingError(f"request body is not valid JSON: {exc}")
        if not isinstance(body, dict):
            raise ServingError("request body must be a JSON object")
        return body

    def _dispatch(self, method: str) -> None:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        methods = _BY_PATH.get(path)
        if methods is None:
            self._send_json(404, {"error": f"unknown path {path!r}",
                                  "type": "NotFound"})
            return
        route = methods.get(method)
        if route is None:
            self._send_json(405, {"error": f"{method} not allowed on {path}",
                                  "type": "MethodNotAllowed",
                                  "allowed": sorted(methods)})
            return
        try:
            handler = getattr(self.service, route.handler)
            result = handler(self._read_body()) if route.body else handler()
        except Exception as exc:  # typed errors become status codes
            status = _status_for(exc)
            payload = {"error": str(exc), "type": type(exc).__name__}
            self._send_json(status, payload)
            return
        if isinstance(result, str):     # /metrics text exposition
            self._send_text(
                200, result, "text/plain; version=0.0.4; charset=utf-8")
        else:
            self._send_json(200, result)

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")


class ReproHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`PredictionService`."""

    daemon_threads = True

    def __init__(self, service: PredictionService,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        handler = type("BoundHandler", (_Handler,), {"service": service})
        super().__init__((host, port), handler)
        self.service = service
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self.server_address[1]

    def start_background(self) -> None:
        """Serve on a daemon thread (tests and the smoke job)."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve-http", daemon=True)
        self._thread.start()

    def close(self) -> None:
        """Stop accepting, then drain the service (batchers, executors)."""
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.service.close()


def serve(service: PredictionService, host: str = "127.0.0.1",
          port: int = 0, background: bool = False) -> ReproHTTPServer:
    """Bind and run the HTTP front-end; returns the server.

    With ``background=True`` the accept loop runs on a daemon thread
    and the bound server (with its resolved ``port``, useful with
    ``port=0``) is returned immediately. Otherwise the call blocks in
    ``serve_forever`` until interrupted, then drains the service.
    """
    server = ReproHTTPServer(service, host=host, port=port)
    if background:
        server.start_background()
        return server
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        service.close()
    return server
