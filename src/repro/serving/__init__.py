"""Serving layer: `repro serve` — a concurrent, hot-swappable service.

The package turns the in-process :class:`~repro.reliability.guard.
GuardedCostPredictor` into a network service without adding any
dependency beyond the stdlib:

* :mod:`repro.serving.batcher` — micro-batching request queue that
  fuses concurrent predictions into one forward;
* :mod:`repro.serving.registry` — per-model shards, versioning, and
  the shadow-score → promote hot-swap machinery;
* :mod:`repro.serving.service` — the transport-agnostic endpoint
  logic (dict in → dict out);
* :mod:`repro.serving.http` — the stdlib HTTP front-end and the
  declarative route table the docs lint checks against.

See ``docs/API.md`` for the HTTP surface and ``docs/OPERATIONS.md``
for how to run it.
"""

from repro.serving.batcher import BatchItem, MicroBatcher
from repro.serving.http import ROUTES, ReproHTTPServer, Route, serve
from repro.serving.registry import (CandidateState, ModelRegistry, ModelShard,
                                    ServingModel, default_guard_builder)
from repro.serving.service import (DEFAULT_MODEL_ID, PredictionService,
                                   ServingConfig)

__all__ = [
    "BatchItem",
    "MicroBatcher",
    "ROUTES",
    "Route",
    "ReproHTTPServer",
    "serve",
    "CandidateState",
    "ModelRegistry",
    "ModelShard",
    "ServingModel",
    "default_guard_builder",
    "DEFAULT_MODEL_ID",
    "PredictionService",
    "ServingConfig",
]
