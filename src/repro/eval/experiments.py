"""Shared experiment harness used by the benchmark suite.

One :class:`ExperimentPipeline` wires the full reproduction pipeline —
catalog → workload → plan collection → encoding → model training →
metrics — with every stage cached on the instance so the per-table
benchmarks can share the expensive steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.baselines.gpsj import GPSJCostModel
from repro.baselines.tlstm import TLSTM, TLSTMConfig, TLSTMTrainer
from repro.cluster.resources import ResourceProfile, ResourceSampler
from repro.cluster.simulator import SimulatorParams, SparkSimulator
from repro.core.raal import RAALConfig
from repro.core.trainer import Trainer, TrainerConfig, TrainingSample
from repro.core.variants import VariantSpec, make_model, variant
from repro.data.imdb import build_imdb_catalog
from repro.data.tpch import build_tpch_catalog
from repro.encoding.plan_encoder import PlanEncoder
from repro.errors import DatasetError
from repro.eval.metrics import Metrics, compute_metrics
from repro.text.word2vec import Word2VecConfig
from repro.workload.collection import CollectionConfig, DataCollector, PlanRecord
from repro.workload.dataset import SplitRecords, split_by_query
from repro.workload.generator import QueryGenerator, WorkloadConfig

__all__ = ["ExperimentScale", "SMOKE", "BENCH", "ExperimentPipeline", "TrainedVariant"]


@dataclass(frozen=True)
class ExperimentScale:
    """Size preset for one experiment run.

    The paper's full scale (6,000 queries → 63,000 records, 50k-record
    training runs) is reachable by raising these numbers; defaults are
    sized so the full benchmark suite runs on one CPU box.
    """

    catalog_scale: float = 0.15
    num_queries: int = 150
    plans_per_query: int = 3
    resource_states_per_plan: int = 5
    word2vec_dim: int = 24
    word2vec_epochs: int = 2
    hidden_size: int = 48
    embedding_dim: int = 48
    epochs: int = 60
    batch_size: int = 32
    max_joins: int = 5
    # Fused training step (analytic backward + persistent collation);
    # False selects the legacy autograd path (``--no-fast-path``).
    fast_path: bool = True
    seed: int = 0


SMOKE = ExperimentScale(
    catalog_scale=0.08, num_queries=24, resource_states_per_plan=2,
    word2vec_dim=12, word2vec_epochs=1, hidden_size=24, embedding_dim=24,
    epochs=8, max_joins=3,
)

BENCH = ExperimentScale()


@dataclass
class TrainedVariant:
    """A trained model variant plus its evaluation artifacts.

    ``train_seconds`` / ``epoch_seconds`` come from the trainer's own
    (injectable) clock, so they include divergence-recovery overhead
    instead of being re-timed around :meth:`Trainer.fit`.
    """

    name: str
    resource_aware: bool
    trainer: Trainer
    encoder: PlanEncoder
    metrics: Metrics
    train_losses: list[float]
    train_seconds: float
    actual: np.ndarray
    estimated: np.ndarray
    epoch_seconds: list[float] = None


class ExperimentPipeline:
    """End-to-end pipeline with per-stage caching.

    Parameters
    ----------
    dataset:
        ``"imdb"`` or ``"tpch"``.
    scale:
        Size preset (:data:`SMOKE` for tests, :data:`BENCH` default).
    workload:
        Predicate class (``"numeric"``, ``"string"``, ``"mixed"``).
    fixed_resources:
        When set, all records use this single resource state (the
        "local Spark / relational-database setting" of Table V/VI).
    """

    def __init__(self, dataset: str = "imdb", scale: ExperimentScale = BENCH,
                 workload: str = "mixed",
                 fixed_resources: ResourceProfile | None = None,
                 simulator_params: SimulatorParams | None = None) -> None:
        if dataset not in ("imdb", "tpch"):
            raise DatasetError(f"unknown dataset {dataset!r}")
        self.dataset = dataset
        self.scale = scale
        self.workload = workload
        self.fixed_resources = fixed_resources
        self.simulator = SparkSimulator(params=simulator_params, seed=scale.seed)
        self._encoders: dict[tuple[bool, bool], PlanEncoder] = {}
        self._samples: dict[tuple[bool, bool, str], list[TrainingSample]] = {}

    # -- pipeline stages ------------------------------------------------------
    @cached_property
    def catalog(self):
        """The synthetic database."""
        if self.dataset == "imdb":
            return build_imdb_catalog(scale=self.scale.catalog_scale,
                                      seed=self.scale.seed + 7)
        return build_tpch_catalog(scale=self.scale.catalog_scale,
                                  seed=self.scale.seed + 11)

    @cached_property
    def queries(self) -> list[str]:
        """Generated workload SQL."""
        generator = QueryGenerator(
            self.catalog,
            WorkloadConfig(max_joins=self.scale.max_joins, workload=self.workload),
            seed=self.scale.seed + 13,
        )
        return generator.generate(self.scale.num_queries)

    @cached_property
    def collector(self) -> DataCollector:
        """The data collector (exposes skip diagnostics)."""
        return DataCollector(
            self.catalog,
            self.simulator,
            sampler=ResourceSampler(),
            config=CollectionConfig(
                plans_per_query=self.scale.plans_per_query,
                resource_states_per_plan=self.scale.resource_states_per_plan,
                fixed_resources=self.fixed_resources,
            ),
            seed=self.scale.seed + 17,
        )

    @cached_property
    def records(self) -> list[PlanRecord]:
        """Collected (plan, resources, cost) records."""
        records = self.collector.collect(self.queries)
        if not records:
            raise DatasetError("data collection produced no records")
        return records

    @cached_property
    def split(self) -> SplitRecords:
        """80/20 query-level train/test split."""
        return split_by_query(self.records, train_fraction=0.8,
                              seed=self.scale.seed + 19)

    def encoder_for(self, spec: VariantSpec) -> PlanEncoder:
        """Fitted plan encoder for a variant (cached by switches)."""
        key = (spec.use_structure, spec.use_onehot)
        if key not in self._encoders:
            train_plans = list({id(r.plan): r.plan for r in self.split.train}.values())
            self._encoders[key] = PlanEncoder.fit(
                train_plans,
                word2vec_config=Word2VecConfig(
                    dim=self.scale.word2vec_dim,
                    epochs=self.scale.word2vec_epochs,
                    seed=self.scale.seed,
                ),
                use_structure=spec.use_structure,
                use_onehot=spec.use_onehot,
            )
        return self._encoders[key]

    def samples_for(self, spec: VariantSpec, part: str) -> list[TrainingSample]:
        """Encoded train/test samples for a variant (cached)."""
        if part not in ("train", "test"):
            raise DatasetError(f"part must be 'train' or 'test', got {part!r}")
        key = (spec.use_structure, spec.use_onehot, part)
        if key not in self._samples:
            encoder = self.encoder_for(spec)
            records = self.split.train if part == "train" else self.split.test
            self._samples[key] = DataCollector.to_samples(records, encoder)
        return self._samples[key]

    # -- model training ---------------------------------------------------------
    def base_model_config(self, spec: VariantSpec) -> RAALConfig:
        """RAAL config sized to this pipeline's encoder output."""
        encoder = self.encoder_for(spec)
        return RAALConfig(
            node_dim=encoder.node_dim,
            extras_dim=encoder.extras_dim,
            embedding_dim=self.scale.embedding_dim,
            hidden_size=self.scale.hidden_size,
            seed=self.scale.seed,
        )

    def train_variant(self, name: str, resource_aware: bool = True,
                      epochs: int | None = None,
                      train_samples: list[TrainingSample] | None = None,
                      seed: int | None = None) -> TrainedVariant:
        """Train one variant and evaluate it on the test split.

        ``seed`` overrides the model/trainer initialization seed (the
        data pipeline's seed is untouched), letting callers average
        metrics over repeated training runs.
        """
        spec = variant(name)
        encoder = self.encoder_for(spec)
        run_seed = self.scale.seed if seed is None else seed
        from dataclasses import replace as _replace
        model = make_model(spec,
                           _replace(self.base_model_config(spec), seed=run_seed),
                           use_resource_attention=resource_aware)
        trainer = Trainer(model, TrainerConfig(
            epochs=epochs if epochs is not None else self.scale.epochs,
            batch_size=self.scale.batch_size,
            fast_path=self.scale.fast_path,
            seed=run_seed,
        ))
        samples = train_samples if train_samples is not None \
            else self.samples_for(spec, "train")
        result = trainer.fit(samples)
        test = self.samples_for(spec, "test")
        actual = np.array([s.cost_seconds for s in test])
        estimated = trainer.predict_seconds([s.encoded for s in test])
        return TrainedVariant(
            name=name,
            resource_aware=resource_aware,
            trainer=trainer,
            encoder=encoder,
            metrics=compute_metrics(actual, estimated),
            train_losses=result.train_losses,
            train_seconds=result.train_seconds,
            actual=actual,
            estimated=estimated,
            epoch_seconds=list(result.epoch_seconds),
        )

    # -- baselines -------------------------------------------------------------------
    def train_tlstm(self, epochs: int | None = None) -> tuple[TLSTMTrainer, Metrics, np.ndarray, np.ndarray]:
        """Train the TLSTM baseline and evaluate on the test split."""
        spec = variant("RAAL")
        encoder = self.encoder_for(spec)
        model = TLSTM(TLSTMConfig(
            node_dim=encoder.node_dim,
            hidden_size=self.scale.hidden_size,
            seed=self.scale.seed,
        ))
        trainer = TLSTMTrainer(model, epochs=epochs if epochs is not None
                               else self.scale.epochs,
                               seed=self.scale.seed)
        train_records = self.split.train
        trainer.fit(train_records, encoder)
        test_records = self.split.test
        actual = np.array([r.cost_seconds for r in test_records])
        estimated = trainer.predict_seconds(test_records, encoder)
        return trainer, compute_metrics(actual, estimated), actual, estimated

    def evaluate_gpsj(self) -> tuple[Metrics, np.ndarray, np.ndarray]:
        """Evaluate the analytic GPSJ baseline on the test split."""
        model = GPSJCostModel(self.catalog)
        model.calibrate(self.split.train)
        test_records = self.split.test
        actual = np.array([r.cost_seconds for r in test_records])
        estimated = np.array([
            model.estimate(r.plan, r.resources) for r in test_records])
        return compute_metrics(actual, estimated), actual, estimated
