"""Evaluation: paper metrics, experiment harness, text reporting."""

from repro.eval.analysis import ErrorBreakdown, EvaluatedRecord, analyze_errors
from repro.eval.metrics import (
    Metrics,
    compute_metrics,
    correlation,
    mean_squared_error,
    r_squared,
    relative_error,
)
from repro.eval.reporting import render_scatter_summary, render_series, render_table

__all__ = [
    "Metrics",
    "compute_metrics",
    "relative_error",
    "mean_squared_error",
    "correlation",
    "r_squared",
    "render_table",
    "render_series",
    "render_scatter_summary",
    "analyze_errors",
    "ErrorBreakdown",
    "EvaluatedRecord",
]
