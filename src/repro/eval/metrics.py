"""Evaluation metrics (paper eqs. 12-15): RE, MSE, COR, R².

``MSE`` is computed in the model's training space (log1p seconds) so
its magnitude is comparable to the paper's reported values (which
"stabilise below 1"); ``RE``, ``COR`` and ``R²`` are scale-free and
computed on raw seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError

__all__ = ["Metrics", "relative_error", "mean_squared_error", "correlation",
           "r_squared", "compute_metrics"]


def _validate(actual: np.ndarray, estimated: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    actual = np.asarray(actual, dtype=np.float64)
    estimated = np.asarray(estimated, dtype=np.float64)
    if actual.shape != estimated.shape:
        raise DatasetError(
            f"shape mismatch: actual {actual.shape} vs estimated {estimated.shape}")
    if actual.size == 0:
        raise DatasetError("cannot compute metrics on empty arrays")
    return actual, estimated


def relative_error(actual: np.ndarray, estimated: np.ndarray) -> float:
    """Mean relative error |ac - es| / ac (paper eq. 12)."""
    actual, estimated = _validate(actual, estimated)
    denom = np.maximum(np.abs(actual), 1e-9)
    return float(np.mean(np.abs(actual - estimated) / denom))


def mean_squared_error(actual: np.ndarray, estimated: np.ndarray,
                       log_space: bool = True) -> float:
    """MSE (paper eq. 13); in log1p space by default (see module doc)."""
    actual, estimated = _validate(actual, estimated)
    if log_space:
        actual = np.log1p(np.maximum(actual, 0.0))
        estimated = np.log1p(np.maximum(estimated, 0.0))
    return float(np.mean((actual - estimated) ** 2))


def correlation(actual: np.ndarray, estimated: np.ndarray) -> float:
    """Pearson correlation COR (paper eq. 14); 0 when degenerate."""
    actual, estimated = _validate(actual, estimated)
    sa = actual - actual.mean()
    se = estimated - estimated.mean()
    denom = np.sqrt((sa ** 2).sum() * (se ** 2).sum())
    if denom == 0:
        return 0.0
    return float((sa * se).sum() / denom)


def r_squared(actual: np.ndarray, estimated: np.ndarray) -> float:
    """Coefficient of determination R² (paper eq. 15)."""
    actual, estimated = _validate(actual, estimated)
    ss_res = ((actual - estimated) ** 2).sum()
    ss_tot = ((actual - actual.mean()) ** 2).sum()
    if ss_tot == 0:
        return 0.0
    return float(1.0 - ss_res / ss_tot)


@dataclass(frozen=True)
class Metrics:
    """The paper's four-metric bundle for one model/dataset pair."""

    re: float
    mse: float
    cor: float
    r2: float

    def as_row(self) -> dict[str, float]:
        """Dict form for table rendering."""
        return {"RE": self.re, "MSE": self.mse, "COR": self.cor, "R2": self.r2}

    def __str__(self) -> str:
        return (f"RE={self.re:.4f} MSE={self.mse:.4f} "
                f"COR={self.cor:.4f} R2={self.r2:.4f}")


def compute_metrics(actual: np.ndarray, estimated: np.ndarray) -> Metrics:
    """All four paper metrics at once."""
    return Metrics(
        re=relative_error(actual, estimated),
        mse=mean_squared_error(actual, estimated),
        cor=correlation(actual, estimated),
        r2=r_squared(np.log1p(np.maximum(np.asarray(actual, dtype=np.float64), 0.0)),
                     np.log1p(np.maximum(np.asarray(estimated, dtype=np.float64), 0.0))),
    )
