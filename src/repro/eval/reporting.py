"""Plain-text rendering of result tables and figures.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output consistent and legible in a terminal.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "render_series", "render_scatter_summary"]


def render_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width text table with a title rule."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "  "
    header_line = sep.join(h.ljust(widths[i]) for i, h in enumerate(headers))
    rule = "-" * len(header_line)
    lines = [title, rule, header_line, rule]
    for row in str_rows:
        lines.append(sep.join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    lines.append(rule)
    return "\n".join(lines)


def render_series(title: str, x_label: str, xs: Sequence[object],
                  series: dict[str, Sequence[float]]) -> str:
    """A figure-as-table: one x column plus one column per series."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [values[i] for values in series.values()])
    return render_table(title, headers, rows)


def render_scatter_summary(title: str, actual, estimated, bins: int = 5) -> str:
    """Text summary of an actual-vs-estimated scatter (paper Fig. 7).

    Groups points into actual-cost quantile bins and reports the mean
    estimate and spread per bin — divergence shows up as wide spreads.
    """
    import numpy as np

    actual = np.asarray(actual, dtype=np.float64)
    estimated = np.asarray(estimated, dtype=np.float64)
    edges = np.quantile(actual, np.linspace(0, 1, bins + 1))
    rows = []
    for i in range(bins):
        lo, hi = edges[i], edges[i + 1]
        mask = (actual >= lo) & (actual <= hi if i == bins - 1 else actual < hi)
        if not mask.any():
            continue
        err = np.abs(estimated[mask] - actual[mask]) / np.maximum(actual[mask], 1e-9)
        rows.append([
            f"[{lo:.2f}, {hi:.2f}]",
            int(mask.sum()),
            f"{actual[mask].mean():.2f}",
            f"{estimated[mask].mean():.2f}",
            f"{err.mean():.3f}",
            f"{err.std():.3f}",
        ])
    return render_table(
        title,
        ["actual-cost bin (s)", "points", "mean actual", "mean estimate",
         "mean |rel err|", "spread"],
        rows,
    )


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4f}"
    return str(cell)
