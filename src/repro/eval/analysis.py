"""Error analysis: slice prediction quality by query/plan/resource facets.

The paper reports aggregate metrics; practitioners additionally need to
know *where* a cost model is weak. This module slices a set of
evaluated records by join count, plan size, actual-cost magnitude, and
executor memory, computing the paper's metrics per slice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError
from repro.eval.metrics import Metrics, compute_metrics
from repro.eval.reporting import render_table
from repro.workload.collection import PlanRecord

__all__ = ["EvaluatedRecord", "ErrorBreakdown", "analyze_errors"]

_JOIN_OPS = {"SortMergeJoin", "BroadcastHashJoin", "BroadcastNestedLoopJoin"}


@dataclass
class EvaluatedRecord:
    """A plan record with its model prediction attached."""

    record: PlanRecord
    predicted_seconds: float

    @property
    def actual_seconds(self) -> float:
        """Ground-truth cost."""
        return self.record.cost_seconds

    @property
    def num_joins(self) -> int:
        """Join operators in the plan."""
        return sum(1 for n in self.record.plan.nodes() if n.op_name in _JOIN_OPS)

    @property
    def num_nodes(self) -> int:
        """Operators in the plan."""
        return self.record.plan.num_nodes

    @property
    def memory_gb(self) -> float:
        """Executor memory of the record's resource state."""
        return self.record.resources.executor_memory_gb


@dataclass
class ErrorBreakdown:
    """Per-facet metric slices."""

    overall: Metrics
    by_joins: dict[int, Metrics]
    by_plan_size: dict[str, Metrics]
    by_cost_magnitude: dict[str, Metrics]
    by_memory: dict[float, Metrics]

    def render(self) -> str:
        """Multi-table text rendering of the breakdown."""
        blocks = [render_table(
            "Overall", ["RE", "MSE", "COR", "R2"],
            [[self.overall.re, self.overall.mse, self.overall.cor, self.overall.r2]])]

        def table(title: str, slices: dict) -> str:
            rows = [[key, m.re, m.mse, m.cor, m.r2]
                    for key, m in sorted(slices.items(), key=lambda kv: str(kv[0]))]
            return render_table(title, ["slice", "RE", "MSE", "COR", "R2"], rows)

        blocks.append(table("By join count", self.by_joins))
        blocks.append(table("By plan size (operators)", self.by_plan_size))
        blocks.append(table("By actual-cost magnitude", self.by_cost_magnitude))
        blocks.append(table("By executor memory (GB)", self.by_memory))
        return "\n\n".join(blocks)


def _metrics_of(evaluated: list[EvaluatedRecord]) -> Metrics:
    actual = np.array([e.actual_seconds for e in evaluated])
    predicted = np.array([e.predicted_seconds for e in evaluated])
    return compute_metrics(actual, predicted)


def _slice_by(evaluated: list[EvaluatedRecord], key_fn, min_size: int = 3) -> dict:
    groups: dict = {}
    for item in evaluated:
        groups.setdefault(key_fn(item), []).append(item)
    return {key: _metrics_of(items)
            for key, items in groups.items() if len(items) >= min_size}


def analyze_errors(records: list[PlanRecord], predictions) -> ErrorBreakdown:
    """Compute the error breakdown for predicted records.

    Parameters
    ----------
    records:
        Evaluated plan records (typically a test split).
    predictions:
        Predicted costs in seconds, aligned with ``records``.
    """
    predictions = np.asarray(predictions, dtype=np.float64)
    if len(records) != len(predictions):
        raise DatasetError(
            f"{len(records)} records but {len(predictions)} predictions")
    if len(records) == 0:
        raise DatasetError("cannot analyze zero records")
    evaluated = [EvaluatedRecord(r, float(p)) for r, p in zip(records, predictions)]

    def size_bucket(item: EvaluatedRecord) -> str:
        n = item.num_nodes
        if n <= 6:
            return "small (<=6)"
        if n <= 12:
            return "medium (7-12)"
        return "large (>12)"

    costs = np.array([e.actual_seconds for e in evaluated])
    lo, hi = np.quantile(costs, [1 / 3, 2 / 3])

    def cost_bucket(item: EvaluatedRecord) -> str:
        if item.actual_seconds <= lo:
            return f"cheap (<= {lo:.1f}s)"
        if item.actual_seconds <= hi:
            return f"mid ({lo:.1f}-{hi:.1f}s)"
        return f"expensive (> {hi:.1f}s)"

    return ErrorBreakdown(
        overall=_metrics_of(evaluated),
        by_joins=_slice_by(evaluated, lambda e: e.num_joins),
        by_plan_size=_slice_by(evaluated, size_bucket),
        by_cost_magnitude=_slice_by(evaluated, cost_bucket),
        by_memory=_slice_by(evaluated, lambda e: e.memory_gb),
    )
