"""Lightweight tracing: nested spans with an injectable clock.

A :class:`Span` is one timed stage of a request (``encode``,
``forward``, ``guarded_predict``). Spans nest: entering a span while
another is active on the same thread makes it a child, so a single
``CostPredictor.predict`` call yields one root span whose children are
the encode and forward stages, each with its own wall time and
annotations (cache hits, batch sizes, fallback sources).

The clock is injectable (as everywhere in this codebase's reliability
and telemetry layers) so tests assert exact durations without sleeping.
The span stack is thread-local; finished root spans are kept in a
bounded ring so a long-lived server cannot leak memory through its
tracer.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Callable, Iterator

__all__ = ["Span", "Tracer"]


class Span:
    """One timed, annotated stage of a request, with child spans."""

    __slots__ = ("name", "start", "end", "children", "annotations")

    def __init__(self, name: str, start: float) -> None:
        self.name = name
        self.start = start
        self.end: float | None = None
        self.children: list[Span] = []
        self.annotations: dict[str, object] = {}

    @property
    def duration(self) -> float | None:
        """Wall-clock seconds, or ``None`` while the span is active."""
        if self.end is None:
            return None
        return self.end - self.start

    def annotate(self, **fields: object) -> "Span":
        """Attach key/value context to the span; returns ``self``."""
        self.annotations.update(fields)
        return self

    def find(self, name: str) -> "Span | None":
        """First descendant (depth-first) named ``name``, or ``None``."""
        for child in self.children:
            if child.name == name:
                return child
            found = child.find(name)
            if found is not None:
                return found
        return None

    def to_dict(self) -> dict:
        """JSON-ready recursive representation of the span tree."""
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "annotations": dict(self.annotations),
            "children": [child.to_dict() for child in self.children],
        }

    def render(self, indent: int = 0) -> str:
        """Human-readable indented tree with durations."""
        duration = "active" if self.duration is None else f"{self.duration:.6f}s"
        notes = ""
        if self.annotations:
            pairs = ", ".join(f"{k}={v}" for k, v in self.annotations.items())
            notes = f"  [{pairs}]"
        lines = [f"{'  ' * indent}{self.name}: {duration}{notes}"]
        lines.extend(child.render(indent + 1) for child in self.children)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, duration={self.duration})"


class Tracer:
    """Creates spans and collects finished root span trees.

    Parameters
    ----------
    clock:
        Monotonic time source; injected by tests.
    max_roots:
        Ring capacity for finished root spans. Old trees are dropped
        first — the tracer is a window onto recent requests, not an
        unbounded archive.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter,
                 max_roots: int = 256) -> None:
        self._clock = clock
        self._local = threading.local()
        self._roots: deque[Span] = deque(maxlen=max_roots)
        self._lock = threading.Lock()
        self._finished = 0

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def current(self) -> Span | None:
        """The innermost active span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    @property
    def finished_count(self) -> int:
        """Total root spans completed (including ones evicted from the ring)."""
        return self._finished

    @contextmanager
    def span(self, name: str, **annotations: object) -> Iterator[Span]:
        """Open a span; nests under the thread's active span if present.

        An exception inside the span is annotated (``error=<repr>``)
        and re-raised, so failed stages stay visible in the trace.
        """
        span = Span(name, self._clock())
        if annotations:
            span.annotations.update(annotations)
        stack = self._stack()
        parent = stack[-1] if stack else None
        if parent is not None:
            parent.children.append(span)
        stack.append(span)
        try:
            yield span
        except BaseException as exc:
            span.annotations.setdefault("error", repr(exc))
            raise
        finally:
            span.end = self._clock()
            stack.pop()
            if parent is None:
                with self._lock:
                    self._roots.append(span)
                    self._finished += 1

    def roots(self) -> list[Span]:
        """Finished root spans, oldest first."""
        with self._lock:
            return list(self._roots)

    def last_root(self) -> Span | None:
        """The most recently finished root span, or ``None``."""
        with self._lock:
            return self._roots[-1] if self._roots else None

    def clear(self) -> None:
        """Drop all finished root spans (active spans are untouched)."""
        with self._lock:
            self._roots.clear()
