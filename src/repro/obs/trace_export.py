"""Chrome trace-event exporter for :class:`~repro.obs.tracing.Tracer`
span trees.

Converts the recursive ``Span.to_dict()`` shape into the Trace Event
Format consumed by ``chrome://tracing`` and Perfetto: one ``"X"``
(complete) event per finished span, timestamps and durations in
microseconds. Each root span tree gets its own ``tid`` lane so
concurrent requests render side by side instead of being fused into one
bogus nesting; within a tree, children overlap their parent's interval
and the viewer reconstructs the nesting from the timestamps.

``repro metrics ARTIFACT --format trace > trace.json`` produces a file
loadable directly in either viewer.
"""

from __future__ import annotations

import json

__all__ = ["chrome_trace_events", "chrome_trace", "chrome_trace_json"]

_US = 1e6  # trace-event timestamps are microseconds


def _span_events(span: dict, pid: int, tid: int,
                 out: list[dict]) -> None:
    start = span.get("start")
    duration = span.get("duration")
    if start is None or duration is None:
        # Unfinished spans have no extent; skip them (and their
        # children, whose timestamps would float without an anchor).
        return
    event = {
        "name": span.get("name", "span"),
        "ph": "X",
        "ts": float(start) * _US,
        "dur": float(duration) * _US,
        "pid": pid,
        "tid": tid,
    }
    annotations = span.get("annotations") or {}
    if annotations:
        event["args"] = {str(k): v for k, v in annotations.items()}
    out.append(event)
    for child in span.get("children") or []:
        _span_events(child, pid, tid, out)


def chrome_trace_events(spans: list[dict], pid: int = 0) -> list[dict]:
    """Flatten root span dicts into a list of complete ("X") events.

    ``spans`` is what :meth:`Span.to_dict` produces (and what a
    :class:`~repro.obs.report.TelemetryReport` persists). Root ``i``
    is assigned ``tid=i`` so separate requests occupy separate lanes.
    """
    events: list[dict] = []
    for tid, root in enumerate(spans):
        _span_events(root, pid, tid, events)
    return events


def chrome_trace(spans: list[dict], pid: int = 0) -> dict:
    """The full trace document (``traceEvents`` + display hints)."""
    return {
        "traceEvents": chrome_trace_events(spans, pid=pid),
        "displayTimeUnit": "ms",
    }


def chrome_trace_json(spans: list[dict], pid: int = 0,
                      indent: int | None = 2) -> str:
    """The trace document serialized for ``chrome://tracing``."""
    return json.dumps(chrome_trace(spans, pid=pid), indent=indent,
                      sort_keys=True)
