"""Prediction-quality observability: online q-error tracking and drift.

The latency side of the obs layer says how *fast* the predictor is;
this module says whether it is still *right*. Serving code feeds
``(prediction, observed_runtime)`` pairs back through
:meth:`AccuracyTracker.record`, which maintains online q-error
statistics — running mean plus median/p95 from constant-memory P²
quantile sketches — globally, per precision tier, and per workload
class, all exported through the active
:class:`~repro.obs.metrics.MetricsRegistry`.

A :class:`DriftDetector` chained behind the tracker compares a frozen
*reference* window (the accuracy the model shipped with) against a
rolling *current* window, via two complementary tests:

* **ratio breach** — the geometric-mean q-error of the current window
  exceeds ``ratio_threshold`` × the reference (a step change);
* **Page–Hinkley** — a cumulative-sum test on log q-error that
  accumulates small persistent shifts a windowed ratio can miss.

Transitions are hysteretic (``consecutive`` breaching evaluations to
enter drift, ``consecutive`` calm ones plus a ``hold_seconds`` dwell to
leave) so a single outlier batch cannot flap the state. Entering and
leaving drift emits typed ``drift_detected`` / ``drift_recovered``
events and drives the ``quality.drift_state`` gauge; the guarded
predictor couples those transitions into its degradation ladder so
accuracy regressions are first-class health signals alongside latency.

Everything here is stdlib + the q-error math; like the rest of
``repro.obs`` it imports no model code, so any subsystem can feed it.
"""

from __future__ import annotations

import math
import re
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.errors import TelemetryError
from repro.obs import runtime as obs

__all__ = [
    "QERROR_BUCKETS",
    "STABLE",
    "DRIFT",
    "q_error",
    "P2Quantile",
    "QualityConfig",
    "AccuracyTracker",
    "DriftConfig",
    "DriftDetector",
]

#: Histogram buckets for q-errors (dimensionless, >= 1). The interesting
#: range is 1–10; the tail buckets catch catastrophically wrong answers.
QERROR_BUCKETS: tuple[float, ...] = (
    1.05, 1.1, 1.2, 1.5, 2.0, 3.0, 5.0, 10.0, 30.0, 100.0, 1000.0)

#: Drift-detector states.
STABLE = "stable"
DRIFT = "drift"

_KEY_RE = re.compile(r"[^A-Za-z0-9_]")

#: Floor applied to predictions/observations before the ratio, so a
#: zero-cost estimate yields a huge-but-finite q-error instead of inf.
_EPS = 1e-9


def q_error(prediction: float, observed: float) -> float:
    """The symmetric relative error ``max(pred/obs, obs/pred)`` (>= 1).

    The standard accuracy metric of the cardinality/cost-estimation
    literature: 1.0 is a perfect estimate, 2.0 is off by 2× in either
    direction. Non-finite inputs yield ``nan`` (the caller drops the
    sample); non-positive inputs are floored to a tiny epsilon so the
    ratio stays finite.
    """
    prediction = float(prediction)
    observed = float(observed)
    if not (math.isfinite(prediction) and math.isfinite(observed)):
        return math.nan
    prediction = max(prediction, _EPS)
    observed = max(observed, _EPS)
    return max(prediction / observed, observed / prediction)


class P2Quantile:
    """Streaming ``q``-quantile estimate in O(1) memory (P² algorithm).

    Jain & Chlamtac's five-marker estimator: the marker heights track
    the quantile without storing samples, so a tracker can keep
    per-tier and per-workload sketches for an unbounded feedback
    stream. Until five samples arrive the estimate is the empirical
    quantile of the buffered points.
    """

    __slots__ = ("q", "_count", "_heights", "_pos", "_desired", "_dn")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise TelemetryError(f"P2 quantile must be in (0, 1), got {q}")
        self.q = float(q)
        self._count = 0
        self._heights: list[float] = []
        self._pos = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q,
                         3.0 + 2.0 * q, 5.0]
        self._dn = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    @property
    def count(self) -> int:
        """Samples observed so far."""
        return self._count

    def observe(self, x: float) -> None:
        """Fold one sample into the sketch (NaN samples are rejected)."""
        x = float(x)
        if math.isnan(x):
            raise TelemetryError("P2Quantile rejects NaN samples")
        self._count += 1
        h = self._heights
        if self._count <= 5:
            h.append(x)
            h.sort()
            return
        # Locate the cell and update the extreme markers.
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = next(i for i in range(4) if h[i] <= x < h[i + 1])
        for i in range(k + 1, 5):
            self._pos[i] += 1.0
        for i in range(5):
            self._desired[i] += self._dn[i]
        # Adjust the interior markers toward their desired positions,
        # parabolic (P²) when the result stays ordered, linear otherwise.
        for i in (1, 2, 3):
            diff = self._desired[i] - self._pos[i]
            if ((diff >= 1.0 and self._pos[i + 1] - self._pos[i] > 1.0)
                    or (diff <= -1.0 and self._pos[i - 1] - self._pos[i] < -1.0)):
                d = 1.0 if diff >= 0.0 else -1.0
                candidate = self._parabolic(i, d)
                if not h[i - 1] < candidate < h[i + 1]:
                    candidate = self._linear(i, d)
                h[i] = candidate
                self._pos[i] += d

    def _parabolic(self, i: int, d: float) -> float:
        h, n = self._heights, self._pos
        return h[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1]))

    def _linear(self, i: int, d: float) -> float:
        h, n = self._heights, self._pos
        j = i + int(d)
        return h[i] + d * (h[j] - h[i]) / (n[j] - n[i])

    @property
    def value(self) -> float:
        """Current estimate (``nan`` before any sample)."""
        if self._count == 0:
            return math.nan
        h = self._heights
        if self._count <= 5:
            rank = self.q * (len(h) - 1)
            lo = int(rank)
            hi = min(lo + 1, len(h) - 1)
            return h[lo] + (rank - lo) * (h[hi] - h[lo])
        return h[2]


class _ScopeStats:
    """Online q-error statistics for one scope (global / tier / workload)."""

    __slots__ = ("count", "_sum", "p50", "p95", "last")

    def __init__(self) -> None:
        self.count = 0
        self._sum = 0.0
        self.p50 = P2Quantile(0.50)
        self.p95 = P2Quantile(0.95)
        self.last = math.nan

    def observe(self, qe: float) -> None:
        self.count += 1
        self._sum += qe
        self.p50.observe(qe)
        self.p95.observe(qe)
        self.last = qe

    @property
    def mean(self) -> float:
        return self._sum / self.count if self.count else math.nan

    def snapshot(self) -> dict:
        return {"count": self.count, "mean": self.mean,
                "p50": self.p50.value, "p95": self.p95.value,
                "last": self.last}


@dataclass(frozen=True)
class QualityConfig:
    """Shape of the accuracy tracker's rolling state."""

    #: Rolling-window size for the windowed (recent) statistics.
    window: int = 128
    #: Prefix of every exported metric name.
    metric_prefix: str = "quality"

    def __post_init__(self) -> None:
        if self.window < 1:
            raise TelemetryError(f"window must be >= 1, got {self.window}")


class AccuracyTracker:
    """Online q-error accounting over a prediction feedback stream.

    ``record`` is thread-safe and cheap (a handful of float updates and
    gauge sets), so serving threads can feed it inline. A
    :class:`DriftDetector` passed as ``drift`` is fed every accepted
    sample; the caller reads transitions off the detector (the guarded
    predictor does this to couple drift into its degradation ladder).
    """

    def __init__(self, config: QualityConfig | None = None,
                 drift: "DriftDetector | None" = None) -> None:
        self.config = config or QualityConfig()
        self.drift = drift
        self._lock = threading.Lock()
        self._global = _ScopeStats()
        self._by_tier: dict[str, _ScopeStats] = {}
        self._by_workload: dict[str, _ScopeStats] = {}
        self._window: deque[float] = deque(maxlen=self.config.window)
        self.rejected = 0

    @staticmethod
    def _key(raw: str) -> str:
        return _KEY_RE.sub("_", str(raw)) or "unknown"

    def record(self, prediction_seconds: float, observed_seconds: float,
               tier: str | None = None, workload: str | None = None) -> float:
        """Fold one feedback pair in; returns the sample's q-error.

        Samples whose q-error is not finite (non-finite inputs) are
        rejected — counted, never folded into the statistics — and
        reported as ``nan``.
        """
        qe = q_error(prediction_seconds, observed_seconds)
        prefix = self.config.metric_prefix
        if not math.isfinite(qe):
            with self._lock:
                self.rejected += 1
            obs.inc(f"{prefix}.rejected_total",
                    help="Feedback pairs with non-finite q-error")
            return math.nan
        with self._lock:
            self._global.observe(qe)
            self._window.append(qe)
            scopes = [(prefix, self._global)]
            if tier is not None:
                stats = self._by_tier.setdefault(self._key(tier), _ScopeStats())
                stats.observe(qe)
                scopes.append((f"{prefix}.tier.{self._key(tier)}", stats))
            if workload is not None:
                stats = self._by_workload.setdefault(
                    self._key(workload), _ScopeStats())
                stats.observe(qe)
                scopes.append(
                    (f"{prefix}.workload.{self._key(workload)}", stats))
        obs.inc(f"{prefix}.feedback_total",
                help="(prediction, observed runtime) feedback pairs ingested")
        obs.observe(f"{prefix}.qerror", qe, buckets=QERROR_BUCKETS,
                    help="Q-error of predictions vs observed runtimes")
        for name, stats in scopes:
            obs.set_gauge(f"{name}.qerror_mean", stats.mean,
                          help="Running mean q-error")
            obs.set_gauge(f"{name}.qerror_p50", stats.p50.value,
                          help="Streaming median q-error (P2 sketch)")
            obs.set_gauge(f"{name}.qerror_p95", stats.p95.value,
                          help="Streaming p95 q-error (P2 sketch)")
        if self.drift is not None:
            self.drift.update(qe)
        return qe

    @property
    def count(self) -> int:
        """Accepted feedback samples over the tracker's lifetime."""
        return self._global.count

    def rolling(self) -> dict:
        """Mean/p50/p95 of the last ``config.window`` samples."""
        with self._lock:
            window = list(self._window)
        if not window:
            return {"count": 0, "mean": math.nan,
                    "p50": math.nan, "p95": math.nan}
        ordered = sorted(window)

        def pick(q: float) -> float:
            rank = q * (len(ordered) - 1)
            lo = int(rank)
            hi = min(lo + 1, len(ordered) - 1)
            return ordered[lo] + (rank - lo) * (ordered[hi] - ordered[lo])

        return {"count": len(window), "mean": sum(window) / len(window),
                "p50": pick(0.50), "p95": pick(0.95)}

    def snapshot(self) -> dict:
        """Point-in-time accounting for ``repro doctor`` and tests."""
        with self._lock:
            snap = {
                "overall": self._global.snapshot(),
                "by_tier": {k: s.snapshot() for k, s in self._by_tier.items()},
                "by_workload": {k: s.snapshot()
                                for k, s in self._by_workload.items()},
                "rejected": self.rejected,
            }
        snap["rolling"] = self.rolling()
        if self.drift is not None:
            snap["drift"] = self.drift.snapshot()
        return snap


@dataclass(frozen=True)
class DriftConfig:
    """Windows, thresholds, and hysteresis of one drift detector."""

    #: Samples frozen as the accuracy baseline (the first ones seen, or
    #: the recovery window after a re-baseline).
    reference_window: int = 64
    #: Rolling window compared against the reference.
    current_window: int = 32
    #: Current-window samples required before any evaluation.
    min_samples: int = 16
    #: Geometric-mean q-error ratio (current / reference) that counts
    #: as a breach.
    ratio_threshold: float = 1.5
    #: Ratio below which a drifting detector may recover (hysteresis
    #: band: must be below ``ratio_threshold``).
    recover_ratio: float = 1.2
    #: Consecutive breaching (resp. calm) evaluations required to enter
    #: (resp. leave) the drift state.
    consecutive: int = 3
    #: Minimum dwell in the drift state before recovery.
    hold_seconds: float = 0.0
    #: Page–Hinkley tolerance: per-sample slack subtracted from the
    #: deviation before accumulation.
    ph_delta: float = 0.05
    #: Page–Hinkley alarm threshold on the cumulative statistic
    #: (log q-error units); ``0`` disables the cumulative test.
    ph_threshold: float = 5.0

    def __post_init__(self) -> None:
        if self.reference_window < 1 or self.current_window < 1:
            raise TelemetryError("drift windows must be >= 1")
        if not 1 <= self.min_samples <= self.current_window:
            raise TelemetryError(
                f"need 1 <= min_samples <= current_window, got "
                f"min_samples={self.min_samples}, "
                f"current_window={self.current_window}")
        if self.ratio_threshold <= 1.0:
            raise TelemetryError(
                f"ratio_threshold must be > 1, got {self.ratio_threshold}")
        if not 1.0 <= self.recover_ratio < self.ratio_threshold:
            raise TelemetryError(
                f"recover_ratio ({self.recover_ratio}) must sit in "
                f"[1, ratio_threshold) for hysteresis")
        if self.consecutive < 1:
            raise TelemetryError("consecutive must be >= 1")
        if self.hold_seconds < 0 or self.ph_delta < 0 or self.ph_threshold < 0:
            raise TelemetryError(
                "hold_seconds/ph_delta/ph_threshold must be non-negative")


class DriftDetector:
    """Reference-vs-current accuracy comparison with hysteresis.

    Feed it q-errors (:meth:`update`); it owns the ``stable`` ↔
    ``drift`` state machine, the ``quality.drift_state`` gauge, and the
    ``drift_detected`` / ``drift_recovered`` events. The clock is
    injectable so the dwell logic is testable without sleeping.
    """

    def __init__(self, config: DriftConfig | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.config = config or DriftConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._reference: list[float] = []
        self._ref_mean = math.nan
        self._current: deque[float] = deque(maxlen=self.config.current_window)
        self._state = STABLE
        self._breaches = 0
        self._calm = 0
        self._entered_at: float | None = None
        self._ph_n = 0
        self._ph_mean = 0.0
        self._ph_sum = 0.0
        self._ph_min = 0.0
        self.detections = 0
        self.recoveries = 0
        self.last_reason: str | None = None
        obs.set_gauge("quality.drift_state", 0.0,
                      help="Accuracy drift state (0=stable, 1=drift)")

    @property
    def state(self) -> str:
        """Current state (:data:`STABLE` or :data:`DRIFT`)."""
        return self._state

    @property
    def reference_ready(self) -> bool:
        """Whether the reference window is full (evaluation armed)."""
        return len(self._reference) >= self.config.reference_window

    def ratio(self) -> float:
        """Geometric-mean q-error ratio, current window over reference.

        ``nan`` until both windows hold enough samples.
        """
        with self._lock:
            return self._ratio_locked()

    def _ratio_locked(self) -> float:
        if (not self.reference_ready
                or len(self._current) < self.config.min_samples):
            return math.nan
        current = sum(self._current) / len(self._current)
        return math.exp(current - self._ref_mean)

    def _ph_statistic(self) -> float:
        return self._ph_sum - self._ph_min

    def _seed_ph(self) -> None:
        """Restart the Page–Hinkley accumulator anchored at the reference.

        The running mean is seeded with the reference window's samples
        (count and mean) so a level shift right after the baseline is
        measured against the *baseline* accuracy — an unseeded mean
        would snap to the shifted level immediately and the cumulative
        statistic would never grow.
        """
        self._ph_n = len(self._reference)
        self._ph_mean = self._ref_mean
        self._ph_sum = 0.0
        self._ph_min = 0.0

    def update(self, qe: float) -> str | None:
        """Fold one q-error in; returns ``"drift_detected"`` /
        ``"drift_recovered"`` on a state change, else ``None``."""
        if not math.isfinite(qe):
            return None
        x = math.log(max(float(qe), 1.0))
        transition: str | None = None
        fields: dict[str, float] = {}
        with self._lock:
            if not self.reference_ready:
                self._reference.append(x)
                if self.reference_ready:
                    self._ref_mean = sum(self._reference) / len(self._reference)
                    self._seed_ph()
                return None
            self._current.append(x)
            # Page–Hinkley cumulative test on log q-error.
            self._ph_n += 1
            self._ph_mean += (x - self._ph_mean) / self._ph_n
            self._ph_sum += x - self._ph_mean - self.config.ph_delta
            self._ph_min = min(self._ph_min, self._ph_sum)
            if len(self._current) < self.config.min_samples:
                return None
            ratio = self._ratio_locked()
            ph = self._ph_statistic()
            now = self._clock()
            if self._state == STABLE:
                ratio_breach = ratio > self.config.ratio_threshold
                ph_breach = (self.config.ph_threshold > 0
                             and ph > self.config.ph_threshold)
                if ratio_breach or ph_breach:
                    self._breaches += 1
                else:
                    self._breaches = 0
                if self._breaches >= self.config.consecutive:
                    self._state = DRIFT
                    self._entered_at = now
                    self._breaches = 0
                    self._calm = 0
                    self.detections += 1
                    test = "ratio" if ratio_breach else "page-hinkley"
                    self.last_reason = (
                        f"{test} breach: qerror ratio {ratio:.2f} "
                        f"(threshold {self.config.ratio_threshold}), "
                        f"PH {ph:.2f} (threshold {self.config.ph_threshold})")
                    transition = "drift_detected"
                    fields = {"ratio": ratio, "ph": ph}
            else:
                dwelled = (self._entered_at is None
                           or now - self._entered_at >= self.config.hold_seconds)
                if ratio < self.config.recover_ratio:
                    self._calm += 1
                else:
                    self._calm = 0
                if self._calm >= self.config.consecutive and dwelled:
                    # Re-baseline on the recovered window: the model that
                    # serves now is the model future drift is judged by.
                    self._state = STABLE
                    self._calm = 0
                    self.recoveries += 1
                    self._reference = list(self._current)
                    self._ref_mean = (sum(self._reference)
                                      / len(self._reference))
                    self._current.clear()
                    self._seed_ph()
                    self.last_reason = f"recovered: qerror ratio {ratio:.2f}"
                    transition = "drift_recovered"
                    fields = {"ratio": ratio}
        if transition is not None:
            obs.set_gauge("quality.drift_state",
                          1.0 if transition == "drift_detected" else 0.0,
                          help="Accuracy drift state (0=stable, 1=drift)")
            obs.inc(f"quality.{transition}_total",
                    help="Drift detector state changes")
            obs.emit_event("quality", transition,
                           reason=self.last_reason, **fields)
        return transition

    def reset(self) -> None:
        """Drop all state and start re-learning the reference window."""
        with self._lock:
            self._reference = []
            self._ref_mean = math.nan
            self._current.clear()
            self._state = STABLE
            self._breaches = 0
            self._calm = 0
            self._entered_at = None
            self._ph_n = 0
            self._ph_mean = 0.0
            self._ph_sum = 0.0
            self._ph_min = 0.0
        obs.set_gauge("quality.drift_state", 0.0,
                      help="Accuracy drift state (0=stable, 1=drift)")

    def snapshot(self) -> dict:
        """Point-in-time state for ``repro doctor``, ``top``, and tests."""
        with self._lock:
            return {
                "state": self._state,
                "ratio": self._ratio_locked(),
                "ph": self._ph_statistic(),
                "reference_samples": len(self._reference),
                "current_samples": len(self._current),
                "detections": self.detections,
                "recoveries": self.recoveries,
                "last_reason": self.last_reason,
            }
