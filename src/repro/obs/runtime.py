"""Telemetry runtime: the attach point and zero-cost instrumentation API.

Instrumented code never holds a registry or tracer directly — it calls
the module-level helpers (:func:`span`, :func:`inc`, :func:`observe`,
:func:`set_gauge`, :func:`emit_event`), which consult the process-wide
active :class:`Telemetry`. When none is attached (the default) every
helper is a single global read plus a ``None`` check, and :func:`span`
returns a shared no-op span — telemetry costs nothing unless someone
asks for it.

Attach a telemetry bundle for a scope::

    tel = Telemetry.create(events_path="run.jsonl")
    with attached(tel):
        predictor.predict(plan, resources)
    print(tel.registry.to_prometheus())

or process-wide with :func:`attach` / :func:`detach` (the CLI's
``--emit-telemetry`` flag and the test-suite conftest do this).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.obs.events import EventLog
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, MetricsRegistry
from repro.obs.tracing import Span, Tracer

__all__ = [
    "Telemetry",
    "attach",
    "detach",
    "attached",
    "active",
    "enabled",
    "span",
    "inc",
    "observe",
    "set_gauge",
    "emit_event",
    "install_from_env",
    "NULL_SPAN",
    "TELEMETRY_ENV_VAR",
]

#: Environment variable consulted by :func:`install_from_env` (used by
#: the CI telemetry job and ad-hoc debugging of the test suite).
TELEMETRY_ENV_VAR = "REPRO_TELEMETRY_PATH"


@dataclass
class Telemetry:
    """One run's observability bundle: metrics + traces + events.

    The three pieces share a monotonic clock (injectable) so span
    durations, epoch timings, and latency histograms are mutually
    consistent in tests driven by a fake clock.
    """

    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    tracer: Tracer = field(default_factory=Tracer)
    events: EventLog = field(default_factory=EventLog)
    clock: Callable[[], float] = time.perf_counter

    @classmethod
    def create(cls, events_path: str | None = None,
               clock: Callable[[], float] = time.perf_counter,
               wall_clock: Callable[[], float] = time.time,
               max_roots: int = 256,
               event_capacity: int = 4096) -> "Telemetry":
        """Build a bundle with a shared clock and optional JSONL sink."""
        return cls(
            registry=MetricsRegistry(),
            tracer=Tracer(clock=clock, max_roots=max_roots),
            events=EventLog(path=events_path, clock=wall_clock,
                            capacity=event_capacity),
            clock=clock,
        )

    def close(self) -> None:
        """Flush and close the event sink."""
        self.events.close()


class _NullSpan:
    """Shared do-nothing span returned while telemetry is detached."""

    __slots__ = ()
    name = "null"
    children: list = []
    annotations: dict = {}
    duration = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def annotate(self, **fields: object) -> "_NullSpan":
        return self

    def find(self, name: str) -> None:
        return None


NULL_SPAN = _NullSpan()

_ACTIVE: Telemetry | None = None


def attach(telemetry: Telemetry) -> Telemetry:
    """Make ``telemetry`` the process-wide active bundle; returns it."""
    global _ACTIVE
    _ACTIVE = telemetry
    return telemetry


def detach() -> Telemetry | None:
    """Deactivate telemetry; returns the bundle that was active."""
    global _ACTIVE
    previous, _ACTIVE = _ACTIVE, None
    return previous


def active() -> Telemetry | None:
    """The currently attached bundle, or ``None``."""
    return _ACTIVE


def enabled() -> bool:
    """Whether any telemetry bundle is attached."""
    return _ACTIVE is not None


@contextmanager
def attached(telemetry: Telemetry) -> Iterator[Telemetry]:
    """Attach ``telemetry`` for a scope, restoring the previous bundle."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = telemetry
    try:
        yield telemetry
    finally:
        _ACTIVE = previous


# -- instrumentation helpers (no-ops when detached) -----------------------
def span(name: str, **annotations: object):
    """Open a (possibly nested) span, or a shared no-op when detached."""
    tel = _ACTIVE
    if tel is None:
        return NULL_SPAN
    return tel.tracer.span(name, **annotations)


def inc(name: str, amount: float = 1.0, help: str = "") -> None:
    """Increment counter ``name`` on the active registry, if any."""
    tel = _ACTIVE
    if tel is not None:
        tel.registry.counter(name, help=help).inc(amount)


def observe(name: str, value: float, help: str = "",
            buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS) -> None:
    """Record a histogram sample on the active registry, if any."""
    tel = _ACTIVE
    if tel is not None:
        tel.registry.histogram(name, help=help, buckets=buckets).observe(value)


def set_gauge(name: str, value: float, help: str = "") -> None:
    """Set gauge ``name`` on the active registry, if any."""
    tel = _ACTIVE
    if tel is not None:
        tel.registry.gauge(name, help=help).set(value)


def emit_event(component: str, event: str, **fields: object) -> None:
    """Emit a structured event on the active log, if any."""
    tel = _ACTIVE
    if tel is not None:
        tel.events.emit(component, event, **fields)


def install_from_env(environ: dict[str, str] | None = None) -> Telemetry | None:
    """Attach a telemetry bundle when :data:`TELEMETRY_ENV_VAR` is set.

    Returns the attached bundle (or ``None``). The caller owns the
    bundle's lifecycle — the test-suite conftest finalizes it with a
    ``telemetry_report`` event at session end.
    """
    env = os.environ if environ is None else environ
    path = env.get(TELEMETRY_ENV_VAR)
    if not path:
        return None
    return attach(Telemetry.create(events_path=path))
