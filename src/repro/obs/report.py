"""Run reports: aggregate one run's telemetry into a machine-readable
artifact.

A :class:`TelemetryReport` snapshots the registry, recent span trees,
and event tallies into one plain dict, serializable as JSON. The CLI's
``--emit-telemetry PATH`` appends it as the final ``obs/telemetry_report``
event of the run's JSONL stream, and ``repro metrics PATH`` loads either
form (bare JSON report, or JSONL stream containing one) and renders it.
"""

from __future__ import annotations

import json
import pathlib

from repro.errors import TelemetryError
from repro.obs.metrics import prometheus_from_snapshot, render_snapshot

__all__ = ["TelemetryReport", "load_report"]

#: Event type that carries a report inside a JSONL stream.
REPORT_EVENT = "telemetry_report"


class TelemetryReport:
    """Aggregated snapshot of one run's metrics, spans, and events."""

    def __init__(self, metrics: dict[str, dict],
                 spans: list[dict] | None = None,
                 event_counts: dict[str, int] | None = None) -> None:
        self.metrics = metrics
        self.spans = spans or []
        self.event_counts = event_counts or {}

    @classmethod
    def from_telemetry(cls, telemetry) -> "TelemetryReport":
        """Snapshot an active :class:`~repro.obs.runtime.Telemetry`."""
        return cls(
            metrics=telemetry.registry.snapshot(),
            spans=[root.to_dict() for root in telemetry.tracer.roots()[-16:]],
            event_counts=telemetry.events.counts(),
        )

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "metrics": self.metrics,
            "spans": self.spans,
            "event_counts": self.event_counts,
        }

    def to_json(self, indent: int | None = 2) -> str:
        """The report as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """The report's metrics in Prometheus text format."""
        return prometheus_from_snapshot(self.metrics)

    def to_chrome_trace(self, indent: int | None = 2) -> str:
        """The report's span trees as a Chrome/Perfetto trace JSON."""
        from repro.obs.trace_export import chrome_trace_json

        return chrome_trace_json(self.spans, indent=indent)

    def write(self, path: str | pathlib.Path) -> None:
        """Write the JSON report to ``path``."""
        pathlib.Path(path).write_text(self.to_json() + "\n", encoding="utf-8")

    def render(self) -> str:
        """Human-readable tables: metrics, then event tallies."""
        # Imported lazily: repro.eval pulls in the experiment harness
        # (and through it this package) — a module-level import would
        # be a cycle.
        from repro.eval.reporting import render_table

        parts = [render_table(
            "telemetry metrics",
            ["metric", "kind", "value"],
            render_snapshot(self.metrics) or [["(none)", "", ""]])]
        if self.event_counts:
            rows = [[key, str(count)]
                    for key, count in sorted(self.event_counts.items())]
            parts.append(render_table("events", ["component.event", "count"], rows))
        return "\n\n".join(parts)


def load_report(path: str | pathlib.Path) -> TelemetryReport:
    """Load a report artifact written by a previous run.

    Accepts either a bare JSON report (``TelemetryReport.write``) or a
    JSONL event stream (``--emit-telemetry``), in which case the *last*
    ``telemetry_report`` event wins — a restarted run overwrites its
    predecessor's summary, not vice versa.
    """
    p = pathlib.Path(path)
    if not p.exists():
        raise TelemetryError(f"telemetry artifact not found: {p}")
    text = p.read_text(encoding="utf-8").strip()
    if not text:
        raise TelemetryError(f"telemetry artifact is empty: {p}")
    try:
        document = json.loads(text)
    except json.JSONDecodeError:
        document = None
    if isinstance(document, dict) and "metrics" in document:
        return TelemetryReport(
            metrics=document.get("metrics", {}),
            spans=document.get("spans", []),
            event_counts=document.get("event_counts", {}),
        )
    # JSONL stream: scan for the last embedded report event.
    report = None
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TelemetryError(
                f"{p}:{lineno} is not valid JSON ({exc})") from exc
        if record.get("event") == REPORT_EVENT and "report" in record:
            report = record["report"]
    if report is None:
        raise TelemetryError(
            f"{p} contains no '{REPORT_EVENT}' event and is not a JSON "
            "report — was the run interrupted before the report was written?")
    return TelemetryReport(
        metrics=report.get("metrics", {}),
        spans=report.get("spans", []),
        event_counts=report.get("event_counts", {}),
    )
