"""Structured event log: one JSONL emitter for the whole pipeline.

Components emit typed events (``trainer/epoch``, ``guard/fallback``,
``guard/breaker_transition``, ``encoder/cache_evict``) as flat dicts.
Every event is kept in a bounded in-memory ring (for tests and the
run report) and, when a path is configured, appended to a JSONL file —
one JSON object per line, the append-only format log shippers expect.

A per-component bridge to the stdlib ``logging`` module is provided by
:meth:`EventLog.logger`: records logged through the returned logger are
converted into events, so library code that already speaks ``logging``
participates in the structured log without new dependencies.
"""

from __future__ import annotations

import io
import json
import logging
import threading
import time
from collections import Counter as _TallyCounter
from collections import deque
from typing import Callable

from repro.errors import TelemetryError

__all__ = ["EventLog", "EventLogHandler"]


def _jsonify(value: object) -> object:
    """Best-effort JSON coercion for numpy scalars and odd objects."""
    for cast in (float, str):
        try:
            return cast(value)  # numpy scalars support float(); rest -> str
        except (TypeError, ValueError):
            continue
    return repr(value)


class EventLog:
    """Bounded in-memory event ring with optional JSONL persistence.

    Parameters
    ----------
    path:
        When set, every event is appended to this file as one JSON
        line (flushed per event, so a crashed run keeps its tail).
    clock:
        Wall-clock source for the ``ts`` field; injectable for tests.
    capacity:
        In-memory ring size; the JSONL file is never truncated.
    """

    _RESERVED = ("ts", "component", "event")

    def __init__(self, path: str | None = None,
                 clock: Callable[[], float] = time.time,
                 capacity: int = 4096) -> None:
        if capacity < 1:
            raise TelemetryError(f"event capacity must be >= 1, got {capacity}")
        self.path = str(path) if path is not None else None
        self._clock = clock
        self._ring: deque[dict] = deque(maxlen=capacity)
        self._tally: _TallyCounter[str] = _TallyCounter()
        self._lock = threading.Lock()
        self._file: io.TextIOWrapper | None = None
        self._emitted = 0

    def emit(self, component: str, event: str, **fields: object) -> dict:
        """Record one structured event; returns the stored record."""
        clash = [k for k in fields if k in self._RESERVED]
        if clash:
            raise TelemetryError(
                f"event fields {clash} collide with reserved keys "
                f"{self._RESERVED}")
        record = {"ts": self._clock(), "component": component,
                  "event": event, **fields}
        line = json.dumps(record, default=_jsonify, sort_keys=True)
        with self._lock:
            self._ring.append(record)
            self._tally[f"{component}.{event}"] += 1
            self._emitted += 1
            if self.path is not None:
                if self._file is None:
                    self._file = open(self.path, "a", encoding="utf-8")
                self._file.write(line + "\n")
                self._file.flush()
        return record

    def events(self, component: str | None = None,
               event: str | None = None) -> list[dict]:
        """Recent events, optionally filtered by component and/or type."""
        with self._lock:
            records = list(self._ring)
        if component is not None:
            records = [r for r in records if r["component"] == component]
        if event is not None:
            records = [r for r in records if r["event"] == event]
        return records

    def counts(self) -> dict[str, int]:
        """Cumulative ``component.event`` tallies (survive ring eviction)."""
        with self._lock:
            return dict(self._tally)

    @property
    def emitted(self) -> int:
        """Total events emitted over the log's lifetime."""
        return self._emitted

    # -- stdlib logging bridge --------------------------------------------
    def logger(self, component: str,
               level: int = logging.INFO) -> logging.Logger:
        """A stdlib logger whose records become events of ``component``.

        The logger is named ``repro.<component>``; repeated calls reuse
        the same logger and attach at most one bridge handler, so the
        bridge is idempotent.
        """
        log = logging.getLogger(f"repro.{component}")
        log.setLevel(min(log.level or level, level) if log.level else level)
        if not any(isinstance(h, EventLogHandler) and h.event_log is self
                   for h in log.handlers):
            log.addHandler(EventLogHandler(self, component, level=level))
        log.propagate = False
        return log

    def close(self) -> None:
        """Flush and close the JSONL file (the in-memory ring survives)."""
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None


class EventLogHandler(logging.Handler):
    """``logging`` handler that forwards records into an :class:`EventLog`."""

    def __init__(self, event_log: EventLog, component: str,
                 level: int = logging.INFO) -> None:
        super().__init__(level=level)
        self.event_log = event_log
        self.component = component

    def emit(self, record: logging.LogRecord) -> None:
        try:
            self.event_log.emit(
                self.component, "log",
                level=record.levelname.lower(),
                message=record.getMessage(),
            )
        except Exception:  # pragma: no cover - logging must never raise
            self.handleError(record)
