"""Per-prediction audit trail: who predicted what, from where, and how
wrong it turned out to be.

Every served prediction gets an :class:`AuditRecord` in a bounded ring:
request id, plan fingerprint, resource profile, precision tier, chain
provenance, serving latency, and the prediction itself. When the query
actually runs, :meth:`AuditTrail.observe` attaches the ground-truth
runtime and the resulting q-error — closing the loop that the
:mod:`~repro.obs.quality` tracker and drift detector consume.

The ring is capacity-bounded (oldest records evicted, index kept in
sync) so an always-on deployment cannot grow without bound; records are
plain dicts end to end, serializable to JSONL (:meth:`AuditTrail.\
write_jsonl`) and re-loadable from either a dedicated audit file or a
full telemetry event stream (:func:`load_audit_records`) — which is how
the ``repro audit`` CLI verb queries runs after the fact.

Like the rest of ``repro.obs`` this module imports no model code: plan
fingerprints and resource profiles arrive as already-flattened data
computed by the caller (the guarded predictor).
"""

from __future__ import annotations

import json
import math
import threading
import time
from collections import OrderedDict
from dataclasses import asdict, dataclass, field
from typing import Callable, Iterable

from repro.errors import TelemetryError
from repro.obs import runtime as obs
from repro.obs.quality import q_error

__all__ = [
    "AuditRecord",
    "AuditTrail",
    "load_audit_records",
]


@dataclass
class AuditRecord:
    """One served prediction, with ground truth attached once observed."""

    request_id: str
    #: Position within the request (grid/batched requests serve many
    #: predictions under one id).
    index: int
    #: Wall-clock timestamp of the serve (seconds since epoch).
    ts: float
    plan_fingerprint: str | None
    plan_nodes: int | None
    #: Flattened resource profile (e.g. executors/cores/memory).
    resources: dict = field(default_factory=dict)
    tier: str | None = None
    #: Chain provenance: which stage served (raal/gpsj/heuristic).
    source: str | None = None
    latency_seconds: float | None = None
    prediction_seconds: float | None = None
    workload: str | None = None
    #: Free-form serving context (degradation reason, shed mode, ...).
    reason: str | None = None
    observed_seconds: float | None = None
    q_error: float | None = None

    def to_dict(self) -> dict:
        """JSON-ready dict (insertion order matches field order)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "AuditRecord":
        """Rebuild a record from :meth:`to_dict` output (extra keys
        ignored, so older/newer streams stay loadable)."""
        names = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in names})


class AuditTrail:
    """Bounded, thread-safe ring of :class:`AuditRecord` entries.

    ``capacity`` bounds total retained records; ``per_request_cap``
    bounds how many predictions of one batched request are recorded
    (the rest are counted but dropped, so a 10k-plan grid request
    cannot evict the whole ring).
    """

    def __init__(self, capacity: int = 1024, per_request_cap: int = 16,
                 clock: Callable[[], float] = time.time) -> None:
        if capacity < 1:
            raise TelemetryError(f"audit capacity must be >= 1, got {capacity}")
        if per_request_cap < 1:
            raise TelemetryError(
                f"per_request_cap must be >= 1, got {per_request_cap}")
        self.capacity = capacity
        self.per_request_cap = per_request_cap
        self._clock = clock
        self._lock = threading.Lock()
        self._ring: OrderedDict[tuple[str, int], AuditRecord] = OrderedDict()
        self._next_id = 0
        self.recorded = 0
        self.truncated = 0
        self.observed = 0
        self.missed = 0

    def next_request_id(self) -> str:
        """Mint a fresh request id (``req-000001``, ...)."""
        with self._lock:
            self._next_id += 1
            return f"req-{self._next_id:06d}"

    def record(self, request_id: str, *, index: int = 0,
               plan_fingerprint: str | None = None,
               plan_nodes: int | None = None,
               resources: dict | None = None,
               tier: str | None = None, source: str | None = None,
               latency_seconds: float | None = None,
               prediction_seconds: float | None = None,
               workload: str | None = None,
               reason: str | None = None) -> AuditRecord | None:
        """Append one prediction; returns the record, or ``None`` when
        the per-request cap dropped it."""
        if index >= self.per_request_cap:
            with self._lock:
                self.truncated += 1
            obs.inc("audit.truncated_total",
                    help="Predictions dropped by the per-request audit cap")
            return None
        record = AuditRecord(
            request_id=request_id, index=index, ts=self._clock(),
            plan_fingerprint=plan_fingerprint, plan_nodes=plan_nodes,
            resources=dict(resources or {}), tier=tier, source=source,
            latency_seconds=latency_seconds,
            prediction_seconds=prediction_seconds,
            workload=workload, reason=reason)
        with self._lock:
            self._ring[(request_id, index)] = record
            self.recorded += 1
            while len(self._ring) > self.capacity:
                self._ring.popitem(last=False)
            size = len(self._ring)
        obs.inc("audit.records_total", help="Audit records appended")
        obs.set_gauge("audit.ring_size", size,
                      help="Audit records currently retained")
        obs.emit_event("audit", "prediction", request_id=request_id,
                       index=index, fingerprint=plan_fingerprint,
                       tier=tier, source=source,
                       prediction_seconds=prediction_seconds,
                       latency_seconds=latency_seconds,
                       resources=dict(resources or {}))
        return record

    def observe(self, request_id: str, observed_seconds: float,
                index: int = 0) -> AuditRecord | None:
        """Attach the ground-truth runtime to a recorded prediction.

        Computes and stores the sample's q-error. Returns the updated
        record, or ``None`` when it was never recorded or already
        evicted (the feedback is then simply late — counted, not an
        error).
        """
        with self._lock:
            record = self._ring.get((request_id, index))
            if record is None:
                self.missed += 1
            else:
                record.observed_seconds = float(observed_seconds)
                if record.prediction_seconds is not None:
                    qe = q_error(record.prediction_seconds, observed_seconds)
                    record.q_error = qe if math.isfinite(qe) else None
                self.observed += 1
        if record is None:
            obs.inc("audit.late_observations_total",
                    help="Observations for evicted or unknown audit records")
            return None
        obs.inc("audit.observations_total",
                help="Ground-truth runtimes attached to audit records")
        obs.emit_event("audit", "observation", request_id=request_id,
                       index=index, observed_seconds=float(observed_seconds),
                       q_error=record.q_error)
        return record

    def get(self, request_id: str, index: int = 0) -> AuditRecord | None:
        """The retained record for ``(request_id, index)``, if any."""
        with self._lock:
            return self._ring.get((request_id, index))

    def last(self, n: int = 10) -> list[AuditRecord]:
        """The ``n`` most recent records, oldest first."""
        with self._lock:
            records = list(self._ring.values())
        return records[-n:] if n > 0 else []

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def write_jsonl(self, path: str) -> int:
        """Serialize the retained ring to JSONL; returns records written."""
        with self._lock:
            records = list(self._ring.values())
        with open(path, "w", encoding="utf-8") as fh:
            for record in records:
                fh.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
        return len(records)

    def snapshot(self) -> dict:
        """Point-in-time accounting for ``repro doctor`` and tests."""
        with self._lock:
            observed = sum(
                1 for r in self._ring.values() if r.observed_seconds is not None)
            return {
                "size": len(self._ring),
                "capacity": self.capacity,
                "recorded": self.recorded,
                "observed_total": self.observed,
                "observed_retained": observed,
                "truncated": self.truncated,
            }


def load_audit_records(path: str) -> list[AuditRecord]:
    """Load audit records from a JSONL file.

    Accepts both formats the system writes:

    * a dedicated audit dump (:meth:`AuditTrail.write_jsonl`) — one
      record dict per line;
    * a full telemetry event stream — ``component == "audit"`` events
      are reassembled, with ``observation`` events merged into their
      ``prediction`` by ``(request_id, index)``.

    Returns records in serve order.
    """
    records: "OrderedDict[tuple[str, int], AuditRecord]" = OrderedDict()
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TelemetryError(
                    f"{path} line {lineno} is not JSON: {exc}") from exc
            if not isinstance(data, dict):
                continue
            if "request_id" in data and "component" not in data:
                # Dedicated dump: the line is the record.
                record = AuditRecord.from_dict(data)
                records[(record.request_id, record.index)] = record
            elif data.get("component") == "audit":
                _merge_event(records, data)
    return list(records.values())


def _merge_event(records: "OrderedDict[tuple[str, int], AuditRecord]",
                 data: dict) -> None:
    request_id = data.get("request_id")
    if not request_id:
        return
    index = int(data.get("index") or 0)
    key = (request_id, index)
    if data.get("event") == "prediction":
        records[key] = AuditRecord(
            request_id=request_id, index=index,
            ts=float(data.get("ts") or 0.0),
            plan_fingerprint=data.get("fingerprint"),
            plan_nodes=data.get("plan_nodes"),
            resources=dict(data.get("resources") or {}),
            tier=data.get("tier"), source=data.get("source"),
            latency_seconds=data.get("latency_seconds"),
            prediction_seconds=data.get("prediction_seconds"))
    elif data.get("event") == "observation":
        record = records.get(key)
        if record is not None:
            record.observed_seconds = data.get("observed_seconds")
            record.q_error = data.get("q_error")
