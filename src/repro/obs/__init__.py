"""Observability: metrics, tracing spans, events, and quality signals.

A dependency-free telemetry layer shared by the whole pipeline:

* :class:`MetricsRegistry` — thread-safe counters, gauges, and
  log-bucketed latency histograms with Prometheus-text and JSON export;
* :class:`Tracer` / :class:`Span` — nested, annotated wall-time spans
  over the serving hot path (encode → forward → predict → guard),
  exportable as Chrome/Perfetto trace JSON;
* :class:`EventLog` — one JSONL structured event stream with a
  per-component stdlib-``logging`` bridge;
* :class:`AccuracyTracker` / :class:`DriftDetector` — online q-error
  statistics over the prediction feedback loop, with hysteretic
  reference-vs-current drift detection (ratio breach + Page–Hinkley);
* :class:`AuditTrail` — a bounded per-prediction audit ring (request
  id, fingerprint, tier, provenance, prediction, ground truth),
  queryable via ``repro audit``;
* :class:`SLOTracker` — multi-window multi-burn-rate error-budget
  alerting over latency and q-error SLOs, rendered by ``repro top``;
* :class:`TelemetryReport` — a run's aggregate, rendered by
  ``repro metrics`` and written by ``--emit-telemetry``.

Instrumented code uses the module-level helpers (``obs.span``,
``obs.inc``, ``obs.observe``, ``obs.set_gauge``, ``obs.emit_event``),
which are no-ops unless a :class:`Telemetry` bundle is attached — the
disabled cost is one global read per call site.
"""

from repro.obs.audit import AuditRecord, AuditTrail, load_audit_records
from repro.obs.events import EventLog, EventLogHandler
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DRIFT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    prometheus_from_snapshot,
    quantile_from_snapshot,
    render_snapshot,
)
from repro.obs.quality import (
    DRIFT,
    QERROR_BUCKETS,
    STABLE,
    AccuracyTracker,
    DriftConfig,
    DriftDetector,
    P2Quantile,
    QualityConfig,
    q_error,
)
from repro.obs.report import TelemetryReport, load_report
from repro.obs.runtime import (
    NULL_SPAN,
    TELEMETRY_ENV_VAR,
    Telemetry,
    active,
    attach,
    attached,
    detach,
    emit_event,
    enabled,
    inc,
    install_from_env,
    observe,
    set_gauge,
    span,
)
from repro.obs.slo import SLO, BurnRateConfig, SLOTracker
from repro.obs.trace_export import (
    chrome_trace,
    chrome_trace_events,
    chrome_trace_json,
)
from repro.obs.tracing import Span, Tracer

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "DRIFT_BUCKETS",
    "QERROR_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "prometheus_from_snapshot",
    "quantile_from_snapshot",
    "render_snapshot",
    "Span",
    "Tracer",
    "EventLog",
    "EventLogHandler",
    "TelemetryReport",
    "load_report",
    "chrome_trace",
    "chrome_trace_events",
    "chrome_trace_json",
    "q_error",
    "P2Quantile",
    "QualityConfig",
    "AccuracyTracker",
    "DriftConfig",
    "DriftDetector",
    "STABLE",
    "DRIFT",
    "AuditRecord",
    "AuditTrail",
    "load_audit_records",
    "SLO",
    "BurnRateConfig",
    "SLOTracker",
    "Telemetry",
    "attach",
    "detach",
    "attached",
    "active",
    "enabled",
    "span",
    "inc",
    "observe",
    "set_gauge",
    "emit_event",
    "install_from_env",
    "NULL_SPAN",
    "TELEMETRY_ENV_VAR",
]
