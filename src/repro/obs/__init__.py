"""Observability: metrics, tracing spans, and structured events.

A dependency-free telemetry layer shared by the whole pipeline:

* :class:`MetricsRegistry` — thread-safe counters, gauges, and
  log-bucketed latency histograms with Prometheus-text and JSON export;
* :class:`Tracer` / :class:`Span` — nested, annotated wall-time spans
  over the serving hot path (encode → forward → predict → guard);
* :class:`EventLog` — one JSONL structured event stream with a
  per-component stdlib-``logging`` bridge;
* :class:`TelemetryReport` — a run's aggregate, rendered by
  ``repro metrics`` and written by ``--emit-telemetry``.

Instrumented code uses the module-level helpers (``obs.span``,
``obs.inc``, ``obs.observe``, ``obs.set_gauge``, ``obs.emit_event``),
which are no-ops unless a :class:`Telemetry` bundle is attached — the
disabled cost is one global read per call site.
"""

from repro.obs.events import EventLog, EventLogHandler
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DRIFT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    prometheus_from_snapshot,
    render_snapshot,
)
from repro.obs.report import TelemetryReport, load_report
from repro.obs.runtime import (
    NULL_SPAN,
    TELEMETRY_ENV_VAR,
    Telemetry,
    active,
    attach,
    attached,
    detach,
    emit_event,
    enabled,
    inc,
    install_from_env,
    observe,
    set_gauge,
    span,
)
from repro.obs.tracing import Span, Tracer

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "DRIFT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "prometheus_from_snapshot",
    "render_snapshot",
    "Span",
    "Tracer",
    "EventLog",
    "EventLogHandler",
    "TelemetryReport",
    "load_report",
    "Telemetry",
    "attach",
    "detach",
    "attached",
    "active",
    "enabled",
    "span",
    "inc",
    "observe",
    "set_gauge",
    "emit_event",
    "install_from_env",
    "NULL_SPAN",
    "TELEMETRY_ENV_VAR",
]
