"""Error-budget burn-rate alerting over serving SLOs.

An :class:`SLO` declares what "bad" means for one signal — a sample
above ``threshold`` — and how much badness the objective tolerates
(``objective=0.99`` leaves a 1% error budget). The
:class:`SLOTracker` folds every sample into per-second good/bad
buckets and evaluates the classic *multi-window, multi-burn-rate*
policy: an alert fires only when both a fast window (catches sudden
regressions quickly) and a slow window (confirms the regression is
sustained, suppressing blips) are burning budget faster than their
configured multiples. A burn rate of 1.0 means the budget is consumed
exactly at the objective's tolerated pace; 14.4 — the conventional
fast-page threshold — means a 30-day budget would be gone in ~2 days.

Two signals matter for a cost model in production and both route here:
serving latency (p99-style threshold on per-request seconds) and
prediction accuracy (rolling q-error from the feedback loop). Alert
transitions emit ``burn_alert`` / ``burn_alert_cleared`` events and a
per-SLO ``slo.<name>.alert`` gauge; ``repro top`` renders the current
burn table.

The clock is injectable so window arithmetic is testable without
sleeping. Stdlib only, like the rest of ``repro.obs``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.errors import TelemetryError
from repro.obs import runtime as obs

__all__ = [
    "SLO",
    "BurnRateConfig",
    "SLOTracker",
]


@dataclass(frozen=True)
class SLO:
    """One objective: samples above ``threshold`` spend error budget."""

    name: str
    #: A sample strictly above this value is a "bad" event.
    threshold: float
    #: Target fraction of good events (0.99 → 1% error budget).
    objective: float = 0.99

    def __post_init__(self) -> None:
        if not self.name:
            raise TelemetryError("SLO needs a non-empty name")
        if not 0.0 < self.objective < 1.0:
            raise TelemetryError(
                f"objective must be in (0, 1), got {self.objective}")

    @property
    def error_budget(self) -> float:
        """Tolerated bad fraction (``1 - objective``)."""
        return 1.0 - self.objective


@dataclass(frozen=True)
class BurnRateConfig:
    """Window pair and burn multiples of the alerting policy."""

    fast_window_seconds: float = 60.0
    slow_window_seconds: float = 600.0
    #: Burn multiple the fast window must exceed (SRE convention: 14.4
    #: consumes a 30-day budget in ~2 days).
    fast_burn: float = 14.4
    #: Burn multiple the slow window must exceed.
    slow_burn: float = 6.0

    def __post_init__(self) -> None:
        if self.fast_window_seconds <= 0 or self.slow_window_seconds <= 0:
            raise TelemetryError("burn-rate windows must be positive")
        if self.fast_window_seconds > self.slow_window_seconds:
            raise TelemetryError(
                f"fast window ({self.fast_window_seconds}s) must not exceed "
                f"slow window ({self.slow_window_seconds}s)")
        if self.fast_burn <= 0 or self.slow_burn <= 0:
            raise TelemetryError("burn thresholds must be positive")


class _SLOState:
    """Per-SLO bucketed tallies and alert latch."""

    __slots__ = ("slo", "buckets", "alerting", "alerts", "last_change")

    def __init__(self, slo: SLO) -> None:
        self.slo = slo
        # (second, good, bad) — appended in time order, pruned to the
        # slow window.
        self.buckets: deque[list[float]] = deque()
        self.alerting = False
        self.alerts = 0
        self.last_change: float | None = None


class SLOTracker:
    """Multi-window multi-burn-rate evaluation over declared SLOs.

    ``record(name, value)`` is cheap (bucket append + two gauge sets on
    evaluation); call it inline on the serving path. ``evaluate()``
    recomputes burn rates for every SLO and flips alert latches;
    ``record`` evaluates the touched SLO automatically.
    """

    def __init__(self, slos: list[SLO] | tuple[SLO, ...] = (),
                 config: BurnRateConfig | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.config = config or BurnRateConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._states: dict[str, _SLOState] = {}
        for slo in slos:
            self.add(slo)

    def add(self, slo: SLO) -> None:
        """Register an SLO (replacing any previous one of the same name)."""
        with self._lock:
            self._states[slo.name] = _SLOState(slo)

    def names(self) -> list[str]:
        """Sorted names of the registered SLOs."""
        with self._lock:
            return sorted(self._states)

    def record(self, name: str, value: float) -> bool:
        """Fold one sample in; returns whether it was a bad event.

        Unknown SLO names raise :class:`TelemetryError` — a misspelled
        signal name silently recording nowhere would defeat alerting.
        """
        with self._lock:
            state = self._states.get(name)
            if state is None:
                raise TelemetryError(f"unknown SLO {name!r}")
            bad = float(value) > state.slo.threshold
            now = self._clock()
            second = float(int(now))
            if state.buckets and state.buckets[-1][0] == second:
                bucket = state.buckets[-1]
            else:
                bucket = [second, 0.0, 0.0]
                state.buckets.append(bucket)
            bucket[1 if not bad else 2] += 1.0
            self._prune(state, now)
            transition = self._evaluate_locked(state, now)
        self._publish(name, transition)
        return bad

    def _prune(self, state: _SLOState, now: float) -> None:
        horizon = now - self.config.slow_window_seconds - 1.0
        while state.buckets and state.buckets[0][0] < horizon:
            state.buckets.popleft()

    @staticmethod
    def _burn(state: _SLOState, now: float, window: float) -> float:
        lo = now - window
        good = bad = 0.0
        for second, g, b in reversed(state.buckets):
            if second < lo:
                break
            good += g
            bad += b
        total = good + bad
        if not total:
            return 0.0
        return (bad / total) / state.slo.error_budget

    def _evaluate_locked(self, state: _SLOState, now: float) -> dict | None:
        fast = self._burn(state, now, self.config.fast_window_seconds)
        slow = self._burn(state, now, self.config.slow_window_seconds)
        transition: str | None = None
        if not state.alerting:
            if fast >= self.config.fast_burn and slow >= self.config.slow_burn:
                state.alerting = True
                state.alerts += 1
                state.last_change = now
                transition = "burn_alert"
        else:
            # Clear on the fast window alone: once recent traffic is
            # healthy the page should stop, even while the slow window
            # still remembers the incident.
            if fast < self.config.fast_burn:
                state.alerting = False
                state.last_change = now
                transition = "burn_alert_cleared"
        return {"fast": fast, "slow": slow, "transition": transition,
                "alerting": state.alerting}

    def _publish(self, name: str, result: dict | None) -> None:
        if result is None:
            return
        obs.set_gauge(f"slo.{name}.burn_fast", result["fast"],
                      help="Fast-window error-budget burn rate")
        obs.set_gauge(f"slo.{name}.burn_slow", result["slow"],
                      help="Slow-window error-budget burn rate")
        obs.set_gauge(f"slo.{name}.alert",
                      1.0 if result["alerting"] else 0.0,
                      help="Burn-rate alert state (0=ok, 1=alerting)")
        if result["transition"] == "burn_alert":
            obs.inc("slo.alerts_total", help="Burn-rate alerts fired")
            obs.emit_event("slo", "burn_alert", slo=name,
                           burn_fast=result["fast"], burn_slow=result["slow"])
        elif result["transition"] == "burn_alert_cleared":
            obs.emit_event("slo", "burn_alert_cleared", slo=name,
                           burn_fast=result["fast"], burn_slow=result["slow"])

    def evaluate(self, name: str | None = None) -> dict:
        """Recompute burn rates (one SLO or all); returns the table.

        Useful after a quiet period: with no new samples the fast
        window may have drained, which should clear a latched alert.
        """
        table: dict[str, dict] = {}
        with self._lock:
            now = self._clock()
            names = [name] if name is not None else sorted(self._states)
            for n in names:
                state = self._states.get(n)
                if state is None:
                    raise TelemetryError(f"unknown SLO {n!r}")
                self._prune(state, now)
                table[n] = self._evaluate_locked(state, now)
        for n, result in table.items():
            self._publish(n, result)
        return table

    def alerting(self) -> list[str]:
        """Names of SLOs whose alert latch is currently set."""
        with self._lock:
            return sorted(n for n, s in self._states.items() if s.alerting)

    def snapshot(self) -> dict:
        """Point-in-time burn table for ``repro top`` and tests."""
        out: dict[str, dict] = {}
        with self._lock:
            now = self._clock()
            for name, state in sorted(self._states.items()):
                self._prune(state, now)
                fast = self._burn(state, now, self.config.fast_window_seconds)
                slow = self._burn(state, now, self.config.slow_window_seconds)
                good = sum(b[1] for b in state.buckets)
                bad = sum(b[2] for b in state.buckets)
                out[name] = {
                    "threshold": state.slo.threshold,
                    "objective": state.slo.objective,
                    "burn_fast": fast,
                    "burn_slow": slow,
                    "alerting": state.alerting,
                    "alerts": state.alerts,
                    "good": good,
                    "bad": bad,
                }
        return out
