"""Metrics primitives: counters, gauges, histograms, and a registry.

Dependency-free (stdlib only) so the telemetry layer can be imported by
every subsystem — including ``nn`` and ``encoding`` hot paths — without
creating import cycles or pulling optional packages.

Metric names are dotted (``guard.raal.served``); the Prometheus export
rewrites the dots to underscores, since dots are illegal in Prometheus
metric names. Histograms use fixed log-scale latency buckets
(:data:`DEFAULT_LATENCY_BUCKETS`, half-decade steps from 10 µs to
~31.6 s) so latency distributions from different runs are always
bucket-compatible and can be merged or diffed.

Every mutation takes the owning metric's lock, so one registry can be
shared across the serving threads of a deployment.
"""

from __future__ import annotations

import json
import math
import re
import threading

from repro.errors import TelemetryError

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "DRIFT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "prometheus_from_snapshot",
    "quantile_from_snapshot",
    "render_snapshot",
]

#: Half-decade log-scale upper bounds: 1e-5, 3.16e-5, …, 31.6 seconds.
#: A terminal +Inf bucket is implicit in every histogram.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = tuple(
    round(10.0 ** (k / 2.0), 12) for k in range(-10, 4))

#: Half-decade buckets for dimensionless ratios (relative drift of the
#: degraded precision tiers): 1e-5 … 10. The 5% accuracy budget falls
#: mid-range, so both in-budget and breaching samples resolve clearly.
DRIFT_BUCKETS: tuple[float, ...] = tuple(
    round(10.0 ** (k / 2.0), 12) for k in range(-10, 3))

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name or ""):
        raise TelemetryError(
            f"invalid metric name {name!r}: must match {_NAME_RE.pattern}")
    return name


class Counter:
    """Monotonically increasing count (requests, cache hits, failures)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _check_name(name)
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name} cannot decrease (amount={amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current cumulative count."""
        return self._value

    def snapshot(self) -> dict:
        """JSON-ready state of the counter."""
        return {"kind": self.kind, "value": self._value, "help": self.help}


class Gauge:
    """Point-in-time value (cache size, current learning rate)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _check_name(name)
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current value."""
        return self._value

    def snapshot(self) -> dict:
        """JSON-ready state of the gauge."""
        return {"kind": self.kind, "value": self._value, "help": self.help}


class Histogram:
    """Distribution over fixed upper-bound buckets (latencies, sizes).

    ``buckets`` are ascending finite upper bounds; an implicit +Inf
    bucket catches overflow, so ``observe`` never loses a sample.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS) -> None:
        self.name = _check_name(name)
        self.help = help
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise TelemetryError(f"histogram {name} needs at least one bucket")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise TelemetryError(
                f"histogram {name} buckets must be strictly ascending: {bounds}")
        if not all(math.isfinite(b) for b in bounds):
            raise TelemetryError(
                f"histogram {name} buckets must be finite (+Inf is implicit)")
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one sample; NaN samples are rejected."""
        value = float(value)
        if math.isnan(value):
            raise TelemetryError(f"histogram {self.name} rejects NaN samples")
        idx = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                idx = i
                break
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    @property
    def count(self) -> int:
        """Total number of samples observed."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed samples."""
        return self._sum

    @property
    def mean(self) -> float:
        """Mean of the observed samples (0.0 before any sample)."""
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (Prometheus-style interpolation).

        Locates the bucket holding the ``q``-th sample and interpolates
        linearly inside it, clamped to the observed ``[min, max]`` so
        coarse buckets cannot report values outside the data (and the
        +Inf overflow bucket degrades to the observed max). Estimation
        error is bounded by the bucket width; the latency harness
        additionally reports exact percentiles from raw samples.

        Raises :class:`ValueError` for ``q`` outside ``[0, 1]``; an
        empty histogram reports ``nan`` (well-defined, propagates
        visibly through downstream arithmetic) rather than raising.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            return _quantile_locked(q, self.buckets, self._counts,
                                    self._count, self._min, self._max)

    def snapshot(self) -> dict:
        """JSON-ready state: bounds, per-bucket counts, and summary stats."""
        with self._lock:
            return {
                "kind": self.kind,
                "help": self.help,
                "buckets": list(self.buckets),
                "counts": list(self._counts),
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else None,
                "max": self._max if self._count else None,
            }


def _quantile_locked(q: float, buckets: tuple[float, ...], counts: list[int],
                     total: int, minimum: float, maximum: float) -> float:
    if not total:
        return math.nan
    rank = q * total
    cumulative = 0
    for i, n in enumerate(counts):
        if not n:
            continue
        if cumulative + n >= rank:
            if i == len(buckets):
                # Overflow bucket: no finite upper bound to
                # interpolate against — report the observed max.
                return maximum
            lo = 0.0 if i == 0 else buckets[i - 1]
            fraction = (rank - cumulative) / n
            value = lo + (buckets[i] - lo) * fraction
            return min(max(value, minimum), maximum)
        cumulative += n
    return maximum


def quantile_from_snapshot(state: dict, q: float) -> float:
    """:meth:`Histogram.quantile` over a persisted snapshot dict.

    Lets ``repro top`` compute p50/p95/p99 from a telemetry report
    written by an earlier process, without live metric objects. Same
    semantics as the live method: :class:`ValueError` for ``q`` outside
    ``[0, 1]``, ``nan`` when the snapshot holds no samples.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    count = int(state.get("count") or 0)
    if not count:
        return math.nan
    minimum = state.get("min")
    maximum = state.get("max")
    return _quantile_locked(
        q, tuple(state["buckets"]), list(state["counts"]), count,
        minimum if minimum is not None else -math.inf,
        maximum if maximum is not None else math.inf)


_METRIC_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Named, typed collection of metrics with get-or-create semantics.

    Asking twice for the same name returns the same metric object;
    asking for an existing name with a different kind raises
    :class:`~repro.errors.TelemetryError` (silent type confusion would
    corrupt exports).
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help=help, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TelemetryError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"requested {cls.kind}")
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter ``name``."""
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS) -> Histogram:
        """Get or create the histogram ``name``."""
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str):
        """The metric registered under ``name``, or ``None``."""
        return self._metrics.get(name)

    def names(self) -> list[str]:
        """Sorted names of all registered metrics."""
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict[str, dict]:
        """Point-in-time JSON-ready state of every metric, by name."""
        with self._lock:
            metrics = list(self._metrics.items())
        return {name: metric.snapshot() for name, metric in sorted(metrics)}

    def to_json(self, indent: int | None = 2) -> str:
        """The snapshot as a JSON document."""
        return json.dumps({"metrics": self.snapshot()}, indent=indent,
                          sort_keys=True)

    def to_prometheus(self) -> str:
        """The snapshot in the Prometheus text exposition format."""
        return prometheus_from_snapshot(self.snapshot())


def _prom_name(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9_]", "_", name)


def _prom_num(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    return format(value, "g")


def _prom_help(text: str) -> str:
    # The exposition format requires backslash and newline escapes in
    # HELP text; anything else passes through verbatim.
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def prometheus_from_snapshot(snapshot: dict[str, dict]) -> str:
    """Render a registry snapshot (or a persisted one) as Prometheus text.

    Works on plain dicts so ``repro metrics`` can export run artifacts
    written by an earlier process, without reconstructing live metrics.
    Counters are rendered under the conventional ``_total`` suffix
    (added unless the name already carries it).
    """
    lines: list[str] = []
    for name in sorted(snapshot):
        state = snapshot[name]
        prom = _prom_name(name)
        kind = state.get("kind", "gauge")
        if kind == "counter" and not prom.endswith("_total"):
            prom += "_total"
        if state.get("help"):
            lines.append(f"# HELP {prom} {_prom_help(state['help'])}")
        lines.append(f"# TYPE {prom} {kind}")
        if kind == "histogram":
            cumulative = 0
            bounds = [*state["buckets"], math.inf]
            for bound, count in zip(bounds, state["counts"]):
                cumulative += count
                lines.append(
                    f'{prom}_bucket{{le="{_prom_num(bound)}"}} {cumulative}')
            lines.append(f"{prom}_sum {_prom_num(state['sum'])}")
            lines.append(f"{prom}_count {state['count']}")
        else:
            lines.append(f"{prom} {_prom_num(state['value'])}")
    return "\n".join(lines) + ("\n" if lines else "")


def render_snapshot(snapshot: dict[str, dict]) -> list[list[str]]:
    """Snapshot as ``[name, kind, value]`` rows for table rendering."""
    rows: list[list[str]] = []
    for name in sorted(snapshot):
        state = snapshot[name]
        kind = state.get("kind", "gauge")
        if kind == "histogram":
            mean = state["sum"] / state["count"] if state["count"] else 0.0
            value = (f"count={state['count']} mean={mean:.6g} "
                     f"max={state['max'] if state['max'] is not None else '-'}")
        else:
            value = format(state["value"], "g")
        rows.append([name, kind, value])
    return rows
