"""Tokenizer for physical-plan execution statements.

Turns strings like::

    Filter ((isnotnull(mi.info_type_id) && (mi.info_type_id > 2)))

into word2vec-ready token sequences. Design choices (Sec. IV-C of the
paper motivates them):

* operators (``&&``, ``>``, ``isnotnull``) and column/table identifiers
  are tokens — word2vec places co-occurring operators and columns near
  each other, which one-hot encoding cannot;
* numeric literals are *bucketized* by order of magnitude
  (``<num:1e3>``), keeping the vocabulary finite while preserving the
  scale information of predicate constants;
* string literals become ``<str>`` plus a length bucket, since their
  identity rarely transfers across queries.
"""

from __future__ import annotations

import math
import re

__all__ = ["tokenize_statement", "tokenize_statements", "NUM_TOKEN_PREFIX"]

NUM_TOKEN_PREFIX = "<num:"

_TOKEN_RE = re.compile(
    r"""
    '[^']*'                    # string literal
    | \d+\.\d+ | \.\d+ | \d+   # number
    | [a-zA-Z_][\w.]*          # identifier (possibly qualified)
    | && | \|\| | <= | >= | <> | != | [=<>(),\[\]*]
    """,
    re.VERBOSE,
)


def _number_token(text: str) -> str:
    """Bucketize a numeric literal by order of magnitude."""
    value = abs(float(text))
    if value == 0:
        return f"{NUM_TOKEN_PREFIX}0>"
    exponent = int(math.floor(math.log10(value)))
    return f"{NUM_TOKEN_PREFIX}1e{exponent}>"


def _string_token(text: str) -> list[str]:
    """Represent a string literal by a marker plus a length bucket."""
    body = text[1:-1]
    bucket = min(len(body) // 4, 8)
    return ["<str>", f"<len:{bucket}>"]


def tokenize_statement(statement: str) -> list[str]:
    """Tokenize one execution statement into lower-case tokens."""
    tokens: list[str] = []
    for match in _TOKEN_RE.finditer(statement):
        text = match.group(0)
        if text.startswith("'"):
            tokens.extend(_string_token(text))
        elif text[0].isdigit() or text[0] == ".":
            tokens.append(_number_token(text))
        else:
            tokens.append(text.lower())
    return tokens


def tokenize_statements(statements: list[str]) -> list[str]:
    """Tokenize several statements into one flat token sequence."""
    out: list[str] = []
    for statement in statements:
        out.extend(tokenize_statement(statement))
    return out
