"""Text embedding substrate: statement tokenizer, vocabulary, word2vec."""

from repro.text.tokenize import tokenize_statement, tokenize_statements
from repro.text.vocab import UNK_TOKEN, Vocabulary
from repro.text.word2vec import Word2Vec, Word2VecConfig

__all__ = [
    "tokenize_statement",
    "tokenize_statements",
    "Vocabulary",
    "UNK_TOKEN",
    "Word2Vec",
    "Word2VecConfig",
]
