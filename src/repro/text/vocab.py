"""Token vocabulary with frequency-based negative-sampling tables."""

from __future__ import annotations

from collections import Counter
from typing import Iterable

import numpy as np

from repro.errors import VocabularyError

__all__ = ["Vocabulary", "UNK_TOKEN"]

UNK_TOKEN = "<unk>"


class Vocabulary:
    """Maps tokens ↔ integer ids; id 0 is always the unknown token.

    Parameters
    ----------
    min_count:
        Tokens seen fewer times are folded into ``<unk>``.
    """

    def __init__(self, min_count: int = 1) -> None:
        if min_count < 1:
            raise VocabularyError(f"min_count must be >= 1, got {min_count}")
        self.min_count = min_count
        self._token_to_id: dict[str, int] = {UNK_TOKEN: 0}
        self._id_to_token: list[str] = [UNK_TOKEN]
        self._counts: list[int] = [0]
        self._frozen = False

    # -- construction ------------------------------------------------------
    def fit(self, sentences: Iterable[list[str]]) -> "Vocabulary":
        """Build the vocabulary from token sequences and freeze it."""
        if self._frozen:
            raise VocabularyError("vocabulary is already fitted")
        counter: Counter[str] = Counter()
        for sentence in sentences:
            counter.update(sentence)
        for token, count in sorted(counter.items(), key=lambda kv: (-kv[1], kv[0])):
            if count < self.min_count:
                self._counts[0] += count
                continue
            self._token_to_id[token] = len(self._id_to_token)
            self._id_to_token.append(token)
            self._counts.append(count)
        self._frozen = True
        return self

    # -- lookup ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def id_of(self, token: str) -> int:
        """Id of ``token`` (0 = unknown)."""
        return self._token_to_id.get(token, 0)

    def token_of(self, token_id: int) -> str:
        """Token string for an id."""
        if not 0 <= token_id < len(self._id_to_token):
            raise VocabularyError(f"token id {token_id} out of range")
        return self._id_to_token[token_id]

    def encode(self, tokens: list[str]) -> np.ndarray:
        """Vector of ids for a token sequence."""
        return np.array([self.id_of(t) for t in tokens], dtype=np.int64)

    @property
    def counts(self) -> np.ndarray:
        """Per-id raw frequencies."""
        return np.array(self._counts, dtype=np.float64)

    def negative_sampling_distribution(self, power: float = 0.75) -> np.ndarray:
        """Unigram^power distribution used to draw negative samples."""
        if not self._frozen:
            raise VocabularyError("fit() the vocabulary first")
        weights = self.counts ** power
        weights[0] = max(weights[0], 1e-12)  # <unk> can be sampled, rarely
        return weights / weights.sum()
