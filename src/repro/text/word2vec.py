"""Skip-gram word2vec with negative sampling, in plain numpy.

Implements the embedding method of Mikolov et al. that the paper uses
to encode execution statements (Sec. IV-C). Gradients are computed in
closed form (no autograd needed), and training is minibatched and fully
vectorized.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass
from typing import Iterable

import numpy as np

from repro.errors import TrainingError
from repro.text.vocab import Vocabulary

__all__ = ["Word2VecConfig", "Word2Vec"]


@dataclass(frozen=True)
class Word2VecConfig:
    """Hyperparameters for skip-gram training."""

    dim: int = 24
    window: int = 4
    negatives: int = 5
    learning_rate: float = 0.025
    epochs: int = 3
    batch_size: int = 512
    min_count: int = 1
    seed: int = 0


class Word2Vec:
    """Skip-gram-with-negative-sampling token embeddings.

    >>> model = Word2Vec(Word2VecConfig(dim=16, epochs=2))
    >>> model.train([["filter", "x", ">", "<num:1e2>"]] * 50)
    >>> model.vector("filter").shape
    (16,)
    """

    def __init__(self, config: Word2VecConfig | None = None) -> None:
        self.config = config or Word2VecConfig()
        self.vocab: Vocabulary | None = None
        self._in_emb: np.ndarray | None = None
        self._out_emb: np.ndarray | None = None

    # -- training ---------------------------------------------------------
    def train(self, sentences: Iterable[list[str]]) -> "Word2Vec":
        """Fit vocabulary and embeddings on token sequences."""
        sentences = [list(s) for s in sentences if s]
        if not sentences:
            raise TrainingError("word2vec requires at least one non-empty sentence")
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        self.vocab = Vocabulary(min_count=cfg.min_count).fit(sentences)
        vocab_size = len(self.vocab)
        self._in_emb = rng.uniform(-0.5 / cfg.dim, 0.5 / cfg.dim,
                                   size=(vocab_size, cfg.dim))
        self._out_emb = np.zeros((vocab_size, cfg.dim))

        centers, contexts = self._build_pairs(sentences, rng)
        if len(centers) == 0:
            # Degenerate corpus (all single-token sentences): keep the
            # random init, which is still a usable deterministic encoding.
            return self
        noise = self.vocab.negative_sampling_distribution()
        n_pairs = len(centers)
        lr = cfg.learning_rate
        for epoch in range(cfg.epochs):
            order = rng.permutation(n_pairs)
            for start in range(0, n_pairs, cfg.batch_size):
                batch = order[start : start + cfg.batch_size]
                self._sgd_step(centers[batch], contexts[batch], noise, lr, rng)
            lr = cfg.learning_rate * (1.0 - (epoch + 1) / (cfg.epochs + 1))
        return self

    def _build_pairs(self, sentences: list[list[str]],
                     rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        centers: list[int] = []
        contexts: list[int] = []
        window = self.config.window
        for sentence in sentences:
            ids = self.vocab.encode(sentence)
            n = len(ids)
            for i in range(n):
                span = int(rng.integers(1, window + 1))
                for j in range(max(0, i - span), min(n, i + span + 1)):
                    if j != i:
                        centers.append(ids[i])
                        contexts.append(ids[j])
        return np.array(centers, dtype=np.int64), np.array(contexts, dtype=np.int64)

    def _sgd_step(self, centers: np.ndarray, contexts: np.ndarray,
                  noise: np.ndarray, lr: float, rng: np.random.Generator) -> None:
        cfg = self.config
        batch = len(centers)
        negatives = rng.choice(len(noise), size=(batch, cfg.negatives), p=noise)
        # A sampled "negative" that happens to be the true context (or the
        # center itself) would fight the positive update and destabilize
        # training on small vocabularies; mask those samples out.
        invalid = (negatives == contexts[:, None]) | (negatives == centers[:, None])
        v = self._in_emb[centers]                     # (B, D)
        u_pos = self._out_emb[contexts]               # (B, D)
        u_neg = self._out_emb[negatives]              # (B, K, D)

        pos_score = 1.0 / (1.0 + np.exp(-np.clip((v * u_pos).sum(1), -30, 30)))
        neg_score = 1.0 / (1.0 + np.exp(-np.clip(
            np.einsum("bd,bkd->bk", v, u_neg), -30, 30)))

        g_pos = pos_score - 1.0                       # (B,)
        g_neg = np.where(invalid, 0.0, neg_score)     # (B, K)

        grad_v = g_pos[:, None] * u_pos + np.einsum("bk,bkd->bd", g_neg, u_neg)
        grad_u_pos = g_pos[:, None] * v
        grad_u_neg = g_neg[:, :, None] * v[:, None, :]

        np.add.at(self._in_emb, centers, -lr * grad_v)
        np.add.at(self._out_emb, contexts, -lr * grad_u_pos)
        np.add.at(self._out_emb, negatives.ravel(),
                  -lr * grad_u_neg.reshape(-1, cfg.dim))

    # -- lookup ----------------------------------------------------------------
    def _require_trained(self) -> None:
        if self._in_emb is None or self.vocab is None:
            raise TrainingError("word2vec model is not trained")

    @property
    def dim(self) -> int:
        """Embedding dimensionality."""
        return self.config.dim

    def vector(self, token: str) -> np.ndarray:
        """Embedding of one token (the <unk> vector when unseen)."""
        self._require_trained()
        return self._in_emb[self.vocab.id_of(token)]

    def encode_tokens(self, tokens: list[str]) -> np.ndarray:
        """Mean embedding of a token sequence (zeros when empty)."""
        self._require_trained()
        if not tokens:
            return np.zeros(self.config.dim)
        ids = self.vocab.encode(tokens)
        return self._in_emb[ids].mean(axis=0)

    def similarity(self, a: str, b: str) -> float:
        """Cosine similarity between two tokens' embeddings."""
        va, vb = self.vector(a), self.vector(b)
        denom = np.linalg.norm(va) * np.linalg.norm(vb)
        if denom == 0:
            return 0.0
        return float(va @ vb / denom)

    def most_similar(self, token: str, top_k: int = 5) -> list[tuple[str, float]]:
        """Most cosine-similar vocabulary tokens to ``token``."""
        self._require_trained()
        target = self.vector(token)
        norms = np.linalg.norm(self._in_emb, axis=1) * max(np.linalg.norm(target), 1e-12)
        scores = self._in_emb @ target / np.maximum(norms, 1e-12)
        own = self.vocab.id_of(token)
        scores[own] = -np.inf
        best = np.argsort(scores)[::-1][:top_k]
        return [(self.vocab.token_of(int(i)), float(scores[i])) for i in best]

    # -- persistence -------------------------------------------------------------
    def save(self, path: str | os.PathLike) -> None:
        """Persist embeddings, vocabulary, and config to an ``.npz``."""
        self._require_trained()
        tokens = [self.vocab.token_of(i) for i in range(len(self.vocab))]
        np.savez(
            path,
            in_emb=self._in_emb,
            out_emb=self._out_emb,
            tokens=np.array(tokens, dtype=object),
            counts=self.vocab.counts,
            config=np.array([list(asdict(self.config).items())], dtype=object),
        )

    @classmethod
    def load(cls, path: str | os.PathLike) -> "Word2Vec":
        """Restore a model saved by :meth:`save`."""
        with np.load(path, allow_pickle=True) as archive:
            config = Word2VecConfig(**dict(archive["config"][0]))
            model = cls(config)
            tokens = [str(t) for t in archive["tokens"]]
            counts = archive["counts"]
            vocab = Vocabulary(min_count=config.min_count)
            # Rebuild the fitted vocabulary exactly (ids must line up with
            # the embedding rows, so bypass fit()'s frequency ordering).
            vocab._token_to_id = {t: i for i, t in enumerate(tokens)}
            vocab._id_to_token = tokens
            vocab._counts = [int(c) for c in counts]
            vocab._frozen = True
            model.vocab = vocab
            model._in_emb = archive["in_emb"]
            model._out_emb = archive["out_emb"]
        return model
