"""Train/test splitting of collected records.

The paper randomly places 80% of the available *queries* in the
training set and tests on the rest — splitting by query, not by record,
so all plans/resource-states of one query land on the same side (no
leakage of a test query's plans into training).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError
from repro.workload.collection import PlanRecord

__all__ = ["SplitRecords", "split_by_query"]


@dataclass
class SplitRecords:
    """Train/test partition of plan records."""

    train: list[PlanRecord]
    test: list[PlanRecord]

    @property
    def sizes(self) -> tuple[int, int]:
        """(train, test) record counts."""
        return len(self.train), len(self.test)


def split_by_query(records: list[PlanRecord], train_fraction: float = 0.8,
                   seed: int = 0) -> SplitRecords:
    """Split records 80/20 by *query* (the paper's protocol)."""
    if not records:
        raise DatasetError("no records to split")
    if not 0.0 < train_fraction < 1.0:
        raise DatasetError(f"train_fraction must be in (0, 1), got {train_fraction}")
    queries = sorted({r.sql for r in records})
    if len(queries) < 2:
        raise DatasetError("need at least two distinct queries to split")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(queries))
    n_train = max(1, min(len(queries) - 1, int(round(len(queries) * train_fraction))))
    train_queries = {queries[i] for i in order[:n_train]}
    train = [r for r in records if r.sql in train_queries]
    test = [r for r in records if r.sql not in train_queries]
    return SplitRecords(train=train, test=test)
