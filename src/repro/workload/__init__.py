"""Workloads: query generation, data collection, dataset splits."""

from repro.workload.collection import CollectionConfig, DataCollector, PlanRecord
from repro.workload.dataset import SplitRecords, split_by_query
from repro.workload.generator import QueryGenerator, WorkloadConfig
from repro.workload.templates import (
    QueryTemplate,
    job_style_templates,
    paper_section3_queries,
    render_template,
)

__all__ = [
    "QueryGenerator",
    "WorkloadConfig",
    "DataCollector",
    "CollectionConfig",
    "PlanRecord",
    "SplitRecords",
    "split_by_query",
    "QueryTemplate",
    "paper_section3_queries",
    "job_style_templates",
    "render_template",
]
