"""Curated query templates, including the paper's Sec. III queries.

The four representative IMDB queries the paper uses to study resource
impact (single-table; two-table SMJ; two-table BHJ; three-table mixed)
are provided with literals parameterized so they can be re-scaled to
any synthetic catalog size, plus a small family of JOB-style templates
used by the examples.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.catalog import Catalog
from repro.errors import DatasetError

__all__ = ["QueryTemplate", "paper_section3_queries", "job_style_templates", "render_template"]


@dataclass(frozen=True)
class QueryTemplate:
    """A SQL template with ``{name}`` placeholders bound per catalog.

    ``quantiles`` maps a placeholder to ``(table, column, quantile)``;
    rendering substitutes the column's empirical quantile in the target
    catalog, so a template keeps roughly the same selectivity at any
    scale.
    """

    name: str
    sql: str
    quantiles: dict[str, tuple[str, str, float]]

    def render(self, catalog: Catalog) -> str:
        """Instantiate the template against ``catalog``."""
        return render_template(self, catalog)


def render_template(template: QueryTemplate, catalog: Catalog) -> str:
    """Substitute catalog-specific quantile literals into a template."""
    bindings: dict[str, str] = {}
    for placeholder, (table, column, quantile) in template.quantiles.items():
        stats = catalog.statistics(table).column(column)
        if stats.min_value is None or stats.max_value is None:
            raise DatasetError(
                f"template {template.name!r}: column {table}.{column} "
                "has no numeric statistics")
        value = stats.min_value + quantile * (stats.max_value - stats.min_value)
        bindings[placeholder] = f"{value:.6g}"
    try:
        return template.sql.format(**bindings)
    except KeyError as exc:
        raise DatasetError(
            f"template {template.name!r} is missing a binding for {exc}") from exc


def paper_section3_queries() -> list[QueryTemplate]:
    """The paper's four Sec. III queries, selectivity-preserving.

    The original literals (``keyword_id < 71692`` etc.) encode specific
    quantiles of the real IMDB's domains; the templates reproduce those
    quantiles against the synthetic catalog.
    """
    return [
        QueryTemplate(
            name="q1_single_table",
            sql=("SELECT COUNT(*) FROM movie_keyword mk "
                 "WHERE mk.keyword_id < {kw}"),
            quantiles={"kw": ("keyword", "id", 0.5)},
        ),
        QueryTemplate(
            name="q2_two_table_smj",
            sql=("SELECT COUNT(*) FROM title t, movie_companies mc "
                 "WHERE t.id = mc.movie_id AND mc.company_id < {cid} "
                 "AND mc.company_type_id > 1"),
            quantiles={"cid": ("company_name", "id", 0.85)},
        ),
        QueryTemplate(
            name="q3_two_table_bhj",
            sql=("SELECT COUNT(*) FROM title t, movie_info_idx mi_idx "
                 "WHERE t.id = mi_idx.movie_id AND t.kind_id < 7 "
                 "AND t.production_year > {year} "
                 "AND mi_idx.info_type_id < {it}"),
            quantiles={"year": ("title", "production_year", 0.55),
                       "it": ("info_type", "id", 0.9)},
        ),
        QueryTemplate(
            name="q4_three_table",
            sql=("SELECT COUNT(*) FROM title t, movie_companies mc, movie_keyword mk "
                 "WHERE t.id = mc.movie_id AND t.id = mk.movie_id "
                 "AND mc.company_id = {cid} AND mk.keyword_id < {kw}"),
            quantiles={"cid": ("company_name", "id", 0.2),
                       "kw": ("keyword", "id", 0.3)},
        ),
    ]


def job_style_templates() -> list[QueryTemplate]:
    """A small family of JOB-style multi-join templates."""
    return [
        QueryTemplate(
            name="job_keyword_company",
            sql=("SELECT COUNT(*) FROM title t, movie_keyword mk, movie_companies mc, "
                 "company_name cn WHERE t.id = mk.movie_id AND t.id = mc.movie_id "
                 "AND mc.company_id = cn.id AND mk.keyword_id < {kw} "
                 "AND t.production_year > {year}"),
            quantiles={"kw": ("keyword", "id", 0.4),
                       "year": ("title", "production_year", 0.5)},
        ),
        QueryTemplate(
            name="job_cast_role",
            sql=("SELECT COUNT(*) FROM title t, cast_info ci, role_type rt "
                 "WHERE t.id = ci.movie_id AND ci.role_id = rt.id "
                 "AND ci.nr_order < {order} AND t.kind_id < {kind}"),
            quantiles={"order": ("cast_info", "nr_order", 0.4),
                       "kind": ("kind_type", "id", 0.6)},
        ),
        QueryTemplate(
            name="job_info_year",
            sql=("SELECT COUNT(*) FROM title t, movie_info mi "
                 "WHERE t.id = mi.movie_id AND mi.info_type_id < {it} "
                 "AND t.production_year BETWEEN {lo} AND {hi}"),
            quantiles={"it": ("info_type", "id", 0.5),
                       "lo": ("title", "production_year", 0.3),
                       "hi": ("title", "production_year", 0.8)},
        ),
        QueryTemplate(
            name="job_group_by_kind",
            sql=("SELECT t.kind_id, COUNT(*) FROM title t, movie_keyword mk "
                 "WHERE t.id = mk.movie_id AND mk.keyword_id < {kw} "
                 "GROUP BY t.kind_id ORDER BY t.kind_id"),
            quantiles={"kw": ("keyword", "id", 0.6)},
        ),
    ]
