"""The data-collection phase (paper Fig. 3, left).

For each query: enumerate its candidate physical plans ("we select the
first three Catalyst-generated physical execution plans"), execute each
once on the catalog to observe true per-operator volumes, then simulate
each plan under several sampled resource states to obtain (plan,
resources) → cost records, averaging repeated runs as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.resources import PAPER_CLUSTER, ResourceProfile, ResourceSampler
from repro.cluster.simulator import SparkSimulator
from repro.data.catalog import Catalog
from repro.encoding.plan_encoder import PlanEncoder
from repro.engine.executor import execute_plan
from repro.errors import ReproError
from repro.core.trainer import TrainingSample
from repro.plan.builder import analyze
from repro.plan.enumerator import EnumeratorConfig, enumerate_plans
from repro.plan.physical import PhysicalPlan
from repro.sql.parser import parse

__all__ = ["CollectionConfig", "PlanRecord", "DataCollector"]


@dataclass(frozen=True)
class CollectionConfig:
    """Knobs for the data-collection phase."""

    plans_per_query: int = 3
    resource_states_per_plan: int = 3
    runs_per_state: int = 3
    fixed_resources: ResourceProfile | None = None
    # Queries whose executed plans materialize more rows than this at any
    # operator are dropped (with a note in ``skipped``). Benchmark
    # workloads (JOB, TPC-H) are curated to bounded runtimes; without the
    # cap a handful of runaway fan-out joins dominate every metric.
    max_observed_rows: float = 1.5e6
    # Additionally, queries whose default plan simulates above this bound
    # on the reference cluster are dropped: benchmark queries run in
    # seconds to minutes, not hours.
    max_baseline_cost_seconds: float = 600.0
    enumerator: EnumeratorConfig = field(default_factory=EnumeratorConfig)


@dataclass
class PlanRecord:
    """One training record: a plan, a resource state, and its cost."""

    sql: str
    plan: PhysicalPlan
    resources: ResourceProfile
    cost_seconds: float


class DataCollector:
    """Runs the collection pipeline for a workload of SQL strings."""

    def __init__(self, catalog: Catalog, simulator: SparkSimulator,
                 sampler: ResourceSampler | None = None,
                 config: CollectionConfig | None = None,
                 seed: int = 0) -> None:
        self.catalog = catalog
        self.simulator = simulator
        self.sampler = sampler or ResourceSampler()
        self.config = config or CollectionConfig()
        self._rng = np.random.default_rng(seed)
        self.skipped: list[tuple[str, str]] = []

    # -- plan materialization ------------------------------------------------
    def plans_for(self, sql: str) -> list[PhysicalPlan]:
        """Enumerate + execute the first N candidate plans of a query."""
        query = analyze(parse(sql), self.catalog)
        plans = enumerate_plans(query, self.catalog, self.config.enumerator)
        plans = plans[: self.config.plans_per_query]
        for plan in plans:
            execute_plan(plan, self.catalog)
        return plans

    def collect(self, sqls: list[str]) -> list[PlanRecord]:
        """Produce cost records for every (plan, resource state) pair.

        Queries that fail (parse errors from generator edge cases, join
        blow-ups) are recorded in :attr:`skipped` and do not abort the
        collection, mirroring how real collection pipelines tolerate
        stragglers.
        """
        records: list[PlanRecord] = []
        for sql in sqls:
            try:
                plans = self.plans_for(sql)
            except ReproError as exc:
                self.skipped.append((sql, str(exc)))
                continue
            worst = max(node.obs_rows or 0.0
                        for plan in plans for node in plan.nodes())
            if worst > self.config.max_observed_rows:
                self.skipped.append(
                    (sql, f"observed {worst:.0f} rows exceeds the workload cap"))
                continue
            baseline = self.simulator.execute_mean(plans[0], PAPER_CLUSTER, runs=1)
            if baseline > self.config.max_baseline_cost_seconds:
                self.skipped.append(
                    (sql, f"baseline cost {baseline:.0f}s exceeds the workload cap"))
                continue
            for plan in plans:
                states = self._resource_states()
                for resources in states:
                    cost = self.simulator.execute_mean(
                        plan, resources, runs=self.config.runs_per_state)
                    records.append(PlanRecord(
                        sql=sql, plan=plan, resources=resources,
                        cost_seconds=cost))
        return records

    def _resource_states(self) -> list[ResourceProfile]:
        if self.config.fixed_resources is not None:
            return [self.config.fixed_resources]
        return self.sampler.sample_many(
            self.config.resource_states_per_plan, self._rng)

    # -- conversion --------------------------------------------------------------
    @staticmethod
    def to_samples(records: list[PlanRecord], encoder: PlanEncoder) -> list[TrainingSample]:
        """Encode records into model-ready training samples."""
        return [
            TrainingSample(
                encoded=encoder.encode(r.plan, r.resources),
                cost_seconds=r.cost_seconds,
            )
            for r in records
        ]
