"""Random query generation over a catalog's foreign-key graph.

Mirrors the paper's workloads: "6000 queries with 0-5 joins that
contain two types of query workloads" — one class with numeric-only
predicates, one with string predicates. Queries are random walks on
the schema's FK graph with literal values sampled from the actual
column statistics, so predicate selectivities span the full range.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.catalog import Catalog
from repro.data.schema import DataType
from repro.errors import DatasetError, ReproError

__all__ = ["WorkloadConfig", "QueryGenerator"]

_NUMERIC_OPS = ["<", ">", "<=", ">=", "="]


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs for query generation.

    ``workload`` is ``"numeric"`` (class 1: numeric predicates only),
    ``"string"`` (class 2: includes string equality/LIKE predicates),
    or ``"mixed"``.
    """

    min_joins: int = 0
    max_joins: int = 5
    min_predicates: int = 1
    max_predicates: int = 3
    workload: str = "mixed"
    # Queries whose estimated intermediate results exceed this many rows
    # are regenerated — mirroring how JOB-style benchmarks curate their
    # queries so joins stay tractable.
    max_estimated_rows: float = 2e6
    max_retries: int = 25
    # Fraction of queries that aggregate per group (GROUP BY a low-NDV
    # column) instead of a global COUNT(*), exercising the hash-partition
    # aggregation path.
    group_by_fraction: float = 0.15

    def __post_init__(self) -> None:
        if self.workload not in ("numeric", "string", "mixed"):
            raise DatasetError(f"unknown workload class {self.workload!r}")
        if not 0 <= self.min_joins <= self.max_joins:
            raise DatasetError("invalid join range")


class QueryGenerator:
    """Generates random GPSJ queries against a catalog."""

    def __init__(self, catalog: Catalog, config: WorkloadConfig | None = None,
                 seed: int = 0) -> None:
        self.catalog = catalog
        self.config = config or WorkloadConfig()
        self._rng = np.random.default_rng(seed)
        self._edges = self._collect_edges()
        if not self._edges and self.config.max_joins > 0:
            raise DatasetError("catalog has no foreign keys to join on")

    def _collect_edges(self) -> list[tuple[str, str, str, str]]:
        """(table, column, ref_table, ref_column) for every FK."""
        edges = []
        for name in self.catalog.table_names:
            schema = self.catalog.schema(name)
            for fk in schema.foreign_keys:
                edges.append((name, fk.column, fk.ref_table, fk.ref_column))
        return edges

    # -- query assembly ------------------------------------------------------
    def generate(self, n: int) -> list[str]:
        """Generate ``n`` SQL strings."""
        return [self.generate_one() for _ in range(n)]

    def generate_one(self) -> str:
        """Generate one SQL query whose estimated volumes are tractable.

        Draws candidates until one passes the estimated-cardinality cap
        (or retries run out, in which case the last candidate is
        returned and the collector's error handling takes over).
        """
        sql = self._draw_query()
        for _ in range(self.config.max_retries):
            if self._estimated_rows_ok(sql):
                return sql
            sql = self._draw_query()
        return sql

    def _estimated_rows_ok(self, sql: str) -> bool:
        from repro.plan.builder import analyze
        from repro.plan.enumerator import EnumeratorConfig, enumerate_plans
        from repro.sql.parser import parse

        try:
            query = analyze(parse(sql), self.catalog)
            plan = enumerate_plans(
                query, self.catalog,
                EnumeratorConfig(max_plans=1, max_join_orders=1,
                                 include_unpushed_scan_variant=False))[0]
        except ReproError:
            return False
        return all(node.est_rows <= self.config.max_estimated_rows
                   for node in plan.nodes())

    def _draw_query(self) -> str:
        """Draw a single SQL query."""
        rng = self._rng
        cfg = self.config
        num_joins = int(rng.integers(cfg.min_joins, cfg.max_joins + 1))
        tables, join_conds = self._random_join_tree(num_joins)
        aliases = {table: f"t{i}" for i, table in enumerate(tables)}
        predicates = self._random_predicates(tables, aliases)

        from_clause = ", ".join(f"{t} {aliases[t]}" for t in tables)
        conditions = [
            f"{aliases[lt]}.{lc} = {aliases[rt]}.{rc}"
            for lt, lc, rt, rc in join_conds
        ] + predicates
        group_col = None
        if rng.random() < cfg.group_by_fraction:
            group_col = self._group_by_column(tables, aliases)
        if group_col is not None:
            sql = f"select {group_col}, count(*) from {from_clause}"
        else:
            sql = f"select count(*) from {from_clause}"
        if conditions:
            sql += " where " + " and ".join(conditions)
        if group_col is not None:
            sql += f" group by {group_col}"
        return sql

    def _group_by_column(self, tables: list[str], aliases: dict[str, str]) -> str | None:
        """A low-cardinality numeric column suitable for GROUP BY."""
        rng = self._rng
        candidates = []
        for table in tables:
            schema = self.catalog.schema(table)
            stats = self.catalog.statistics(table)
            for col in schema.columns:
                if col.dtype == DataType.STRING or col.name == schema.primary_key:
                    continue
                ndv = stats.column(col.name).ndv
                if 2 <= ndv <= 64:
                    candidates.append(f"{aliases[table]}.{col.name}")
        if not candidates:
            return None
        return str(rng.choice(candidates))

    def _random_join_tree(self, num_joins: int) -> tuple[list[str], list]:
        rng = self._rng
        if num_joins == 0:
            # Favour fact tables for single-table queries (dimension-only
            # scans are trivial).
            sizes = {t: self.catalog.table(t).row_count for t in self.catalog.table_names}
            names = sorted(sizes, key=sizes.get, reverse=True)
            k = max(1, len(names) // 2)
            return [str(rng.choice(names[:k]))], []
        start_edge = self._edges[int(rng.integers(len(self._edges)))]
        tables = [start_edge[0], start_edge[2]]
        conds = [start_edge]
        fanned_in = {start_edge[2]}  # dims already targeted by an FK edge
        attempts = 0
        while len(conds) < num_joins and attempts < 50:
            attempts += 1
            edge = self._edges[int(rng.integers(len(self._edges)))]
            table, _, ref_table, _ = edge
            if table in tables and ref_table in tables:
                continue
            if table in tables:
                tables.append(ref_table)
                conds.append(edge)
                fanned_in.add(ref_table)
            elif ref_table in tables:
                # A second fact fanning into an already-joined dimension
                # creates a many-to-many blow-up through that dimension;
                # real JOB queries avoid it unless the dimension is large
                # (e.g. `title`). Allow only when the dimension is at
                # least a tenth of the incoming fact's size.
                if ref_table in fanned_in:
                    dim_rows = self.catalog.table(ref_table).row_count
                    fact_rows = self.catalog.table(table).row_count
                    if dim_rows < 0.1 * fact_rows:
                        continue
                tables.append(table)
                conds.append(edge)
                fanned_in.add(ref_table)
        return tables, [
            (t, c, rt, rc) for t, c, rt, rc in conds
        ]

    def _random_predicates(self, tables: list[str], aliases: dict[str, str]) -> list[str]:
        rng = self._rng
        cfg = self.config
        count = int(rng.integers(cfg.min_predicates, cfg.max_predicates + 1))
        candidates: list[tuple[str, str, DataType]] = []
        for table in tables:
            schema = self.catalog.schema(table)
            for col in schema.columns:
                if col.name == schema.primary_key:
                    continue
                if cfg.workload == "numeric" and col.dtype == DataType.STRING:
                    continue
                if cfg.workload == "string" and col.dtype == DataType.STRING:
                    # String class *includes* strings; numerics stay eligible.
                    pass
                candidates.append((table, col.name, col.dtype))
        if not candidates:
            return []
        preds = []
        chosen = rng.choice(len(candidates), size=min(count, len(candidates)),
                            replace=False)
        for idx in chosen:
            table, column, dtype = candidates[int(idx)]
            alias = aliases[table]
            stats = self.catalog.statistics(table).column(column)
            if dtype == DataType.STRING:
                if cfg.workload == "numeric" or not stats.top_values:
                    continue
                value = str(rng.choice(stats.top_values))
                if rng.random() < 0.3 and len(value) > 2:
                    preds.append(f"{alias}.{column} like '{value[: len(value) // 2]}%'")
                else:
                    preds.append(f"{alias}.{column} = '{value}'")
                continue
            if stats.min_value is None or stats.max_value is None:
                continue
            op = str(rng.choice(_NUMERIC_OPS))
            span = stats.max_value - stats.min_value
            value = stats.min_value + rng.random() * max(span, 1.0)
            if op == "=":
                # Equality on a sampled *existing* value keeps selectivity sane.
                if stats.top_values:
                    value = float(rng.choice(stats.top_values))
                else:
                    value = float(np.round(value))
            preds.append(f"{alias}.{column} {op} {value:.6g}")
        return preds
