"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiment``
    Run the end-to-end pipeline (catalog → workload → collection →
    training) for one model variant and print the paper's four metrics.
``train``
    Same pipeline, but persist the trained cost predictor to a
    directory for later use.
``predict``
    Load a persisted predictor and estimate the cost of an ad-hoc SQL
    query's candidate plans under a chosen resource allocation.
``workload``
    Generate and print a random SQL workload for a dataset.
``doctor``
    Validate a persisted predictor: verify the checkpoint manifest
    (schema version, per-file SHA-256) and run a self-test prediction,
    plus a telemetry self-check (spans + metrics recorded end to end).
``metrics``
    Render the telemetry of a previous run: load a run artifact written
    by ``--emit-telemetry`` (or ``TelemetryReport.write``) and print
    its metrics as a table, JSON, Prometheus text, or Chrome/Perfetto
    trace-event JSON (``--format trace``).
``top``
    Terminal health snapshot of a run artifact: latency percentiles,
    q-error quality scopes, drift state, SLO error-budget burn rates,
    and the degradation-ladder/audit posture. ``--once`` for one frame,
    otherwise refreshes every ``--interval`` seconds.
``audit``
    Query the per-prediction audit trail: the most recent records
    (``--last N``), one request (``--request ID``), as a table or JSONL
    (``--json``). Reads either a dedicated audit dump or a full
    telemetry event stream.
``serve``
    Run the HTTP prediction service: load one or more checkpoints and
    serve predict/predict-grid/feedback plus health, metrics, and the
    hot-swap admin endpoints. See ``docs/OPERATIONS.md`` and
    ``docs/API.md``.
``deploy``
    Operate a running ``repro serve`` instance over HTTP: stage a
    candidate checkpoint for shadow scoring (default), force-promote
    it (``--promote``), or roll back to the previous incumbent
    (``--rollback``).

``experiment``, ``train``, and ``predict`` accept ``--emit-telemetry
PATH``: the run executes under an attached telemetry bundle, streaming
structured events to ``PATH`` as JSONL and appending a final
``telemetry_report`` event with the aggregate metrics and span trees.
"""

from __future__ import annotations

import argparse
import math
import sys


from repro import obs
from repro.baselines.gpsj import GPSJCostModel
from repro.cluster.resources import PAPER_CLUSTER
from repro.core.persistence import load_predictor, save_predictor, verify_checkpoint
from repro.core.predictor import CostPredictor, PredictorConfig
from repro.nn.precision import PRECISIONS
from repro.core.selector import PlanSelector
from repro.errors import ReproError
from repro.eval.experiments import ExperimentPipeline, ExperimentScale
from repro.eval.reporting import render_table
from repro.plan.builder import analyze
from repro.reliability.guard import GuardedCostPredictor
from repro.sql.parser import parse as parse_sql
from repro.workload.generator import QueryGenerator, WorkloadConfig

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Resource-aware deep cost model (ICDE 2022 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("experiment", help="run one training experiment")
    _pipeline_args(exp)
    _telemetry_arg(exp)
    exp.add_argument("--variant", default="RAAL",
                     help="RAAL | NE-LSTM | NA-LSTM | RAAC | OH-LSTM")
    exp.add_argument("--no-resource-attention", action="store_true",
                     help="train the resource-blind ablation")

    train = sub.add_parser("train", help="train and persist a cost predictor")
    _pipeline_args(train)
    _telemetry_arg(train)
    train.add_argument("--out", required=True, help="output directory")

    predict = sub.add_parser("predict", help="estimate plan costs for a SQL query")
    _telemetry_arg(predict)
    predict.add_argument("--model", required=True, help="persisted predictor directory")
    predict.add_argument("--dataset", default="imdb", choices=["imdb", "tpch"])
    predict.add_argument("--catalog-scale", type=float, default=0.15)
    predict.add_argument("--sql", required=True)
    predict.add_argument("--memory-gb", type=float, default=4.0)
    predict.add_argument("--executors", type=int, default=2)
    predict.add_argument("--executor-cores", type=int, default=2)
    predict.add_argument(
        "--precision", default="f64", choices=list(PRECISIONS),
        help="inference precision tier (f64 is bit-exact legacy behavior; "
             "f32/int8 trade ≤0.5%% cost error for speed)")
    predict.add_argument(
        "--threads", type=int, default=1,
        help="bucket-parallel inference threads (0 = one per CPU core)")
    predict.add_argument(
        "--deadline-ms", type=float, default=None,
        help="per-prediction latency budget; past it the learned model "
             "is abandoned and the analytic GPSJ estimate is served")

    doctor = sub.add_parser(
        "doctor", help="validate a persisted predictor checkpoint")
    doctor.add_argument("directory", help="checkpoint directory to validate")
    doctor.add_argument("--no-selftest", action="store_true",
                        help="skip the self-test prediction (manifest check only)")

    metrics = sub.add_parser(
        "metrics", help="render the telemetry report of a previous run")
    metrics.add_argument("artifact",
                         help="run artifact: --emit-telemetry JSONL stream "
                              "or a JSON report file")
    metrics.add_argument("--format", default="table",
                         choices=["table", "json", "prom", "trace"],
                         help="output format (default: table; 'trace' emits "
                              "Chrome/Perfetto trace-event JSON of the "
                              "recorded span trees)")

    top = sub.add_parser(
        "top", help="terminal health snapshot of a run's telemetry")
    top.add_argument("artifact",
                     help="run artifact: --emit-telemetry JSONL stream or a "
                          "JSON report file")
    top.add_argument("--once", action="store_true",
                     help="render a single snapshot and exit (default: "
                          "refresh until interrupted)")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between refreshes (default: 2)")

    audit = sub.add_parser(
        "audit", help="query the per-prediction audit trail of a run")
    audit.add_argument("artifact",
                       help="audit JSONL (AuditTrail.write_jsonl) or a "
                            "telemetry event stream containing audit events")
    audit.add_argument("--last", type=int, default=10,
                       help="show the N most recent records (default: 10)")
    audit.add_argument("--request", default=None,
                       help="show only records of this request id")
    audit.add_argument("--json", action="store_true",
                       help="emit records as JSONL instead of a table")

    serve = sub.add_parser(
        "serve", help="run the HTTP prediction service")
    serve.add_argument(
        "--model", action="append", default=[], metavar="[ID=]DIR",
        help="checkpoint directory to serve, optionally prefixed with a "
             "model id (default id: 'default'); repeat for multi-tenant "
             "serving")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8000,
                       help="listen port (0 picks a free port)")
    serve.add_argument("--dataset", default="imdb", choices=["imdb", "tpch"])
    serve.add_argument("--catalog-scale", type=float, default=0.15)
    serve.add_argument(
        "--batch-window-ms", type=float, default=2.0,
        help="micro-batching window; concurrent requests arriving within "
             "it fuse into one forward (0 disables batching)")
    serve.add_argument(
        "--max-batch-pairs", type=int, default=64,
        help="close a batching window early at this many fused "
             "(plan, resources) pairs")
    serve.add_argument(
        "--precision", default="f64", choices=list(PRECISIONS),
        help="inference precision tier for all served models")
    serve.add_argument(
        "--threads", type=int, default=1,
        help="bucket-parallel inference threads (0 = one per CPU core)")
    serve.add_argument(
        "--deadline-ms", type=float, default=None,
        help="default per-request latency budget when the request body "
             "carries no deadline_ms")
    serve.add_argument(
        "--shed-mode", default="fallback", choices=["fallback", "reject"],
        help="overload behaviour: serve the analytic fallback (default) "
             "or reject with 429/504")
    serve.add_argument("--max-in-flight", type=int, default=4,
                       help="learned-stage admission: concurrent requests")
    serve.add_argument("--max-queue-depth", type=int, default=8,
                       help="learned-stage admission: queued requests")
    serve.add_argument("--plan-cache-size", type=int, default=256,
                       help="candidate-plan LRU entries (distinct SQL)")

    deploy = sub.add_parser(
        "deploy", help="hot-swap models on a running serve instance")
    deploy.add_argument("checkpoint", nargs="?", default=None,
                        help="candidate checkpoint directory (not needed "
                             "with --promote/--rollback)")
    deploy.add_argument("--server", default="http://127.0.0.1:8000",
                        help="base URL of the running repro serve")
    deploy.add_argument("--model", default="default", help="target model id")
    deploy.add_argument(
        "--shadow-requests", type=int, default=32,
        help="live fused batches the candidate must shadow-score before "
             "the promotion gate is evaluated")
    deploy.add_argument(
        "--max-qerror", type=float, default=1.5,
        help="promotion gate: max mean candidate-vs-incumbent q-error")
    deploy.add_argument("--no-auto-promote", action="store_true",
                        help="stage and shadow only; promote manually with "
                             "--promote")
    deploy.add_argument("--promote", action="store_true",
                        help="force-promote the shadowing candidate now")
    deploy.add_argument("--rollback", action="store_true",
                        help="swap the previous incumbent back in")

    workload = sub.add_parser("workload", help="generate a random workload")
    workload.add_argument("--dataset", default="imdb", choices=["imdb", "tpch"])
    workload.add_argument("--catalog-scale", type=float, default=0.15)
    workload.add_argument("--queries", type=int, default=10)
    workload.add_argument("--max-joins", type=int, default=5)
    workload.add_argument("--workload-class", default="mixed",
                          choices=["numeric", "string", "mixed"])
    workload.add_argument("--seed", type=int, default=0)
    return parser


def _pipeline_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="imdb", choices=["imdb", "tpch"])
    parser.add_argument("--queries", type=int, default=120)
    parser.add_argument("--epochs", type=int, default=50)
    parser.add_argument("--catalog-scale", type=float, default=0.15)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--no-fast-path", action="store_true",
                        help="train through the legacy autograd path "
                             "instead of the fused analytic backward")


def _telemetry_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--emit-telemetry", metavar="PATH", default=None,
        help="stream structured telemetry events (JSONL) to PATH and "
             "append a final telemetry_report event; render it later "
             "with 'repro metrics PATH'")


def _make_pipeline(args: argparse.Namespace) -> ExperimentPipeline:
    scale = ExperimentScale(
        catalog_scale=args.catalog_scale,
        num_queries=args.queries,
        epochs=args.epochs,
        fast_path=not getattr(args, "no_fast_path", False),
        seed=args.seed,
    )
    return ExperimentPipeline(dataset=args.dataset, scale=scale)


def _cmd_experiment(args: argparse.Namespace) -> int:
    pipeline = _make_pipeline(args)
    print(f"collecting records for {args.queries} {args.dataset} queries ...")
    print(f"  {len(pipeline.records)} records "
          f"({len(pipeline.collector.skipped)} queries skipped)")
    trained = pipeline.train_variant(
        args.variant, resource_aware=not args.no_resource_attention)
    print(render_table(
        f"{trained.name} on {args.dataset} (test split)",
        ["metric", "value"],
        [["RE", trained.metrics.re], ["MSE", trained.metrics.mse],
         ["COR", trained.metrics.cor], ["R2", trained.metrics.r2],
         ["train seconds", trained.train_seconds]]))
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    pipeline = _make_pipeline(args)
    trained = pipeline.train_variant("RAAL")
    predictor = CostPredictor(trained.encoder, trained.trainer)
    save_predictor(predictor, args.out)
    print(f"saved predictor to {args.out}  ({trained.metrics})")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from repro.data.imdb import build_imdb_catalog
    from repro.data.tpch import build_tpch_catalog

    builder = build_imdb_catalog if args.dataset == "imdb" else build_tpch_catalog
    catalog = builder(scale=args.catalog_scale)
    predictor = load_predictor(args.model)
    exec_config = PredictorConfig(precision=args.precision,
                                  threads=args.threads,
                                  factor_grids=args.precision != "f64")
    if exec_config != PredictorConfig():
        predictor = predictor.configured(exec_config)
    resources = PAPER_CLUSTER
    resources = type(resources)(
        nodes=resources.nodes, cores_per_node=resources.cores_per_node,
        executors=args.executors, executor_cores=args.executor_cores,
        executor_memory_gb=args.memory_gb,
        network_throughput_mbps=resources.network_throughput_mbps,
        disk_throughput_mbps=resources.disk_throughput_mbps)

    # Guarded prediction: a bad checkpoint or unseen operator degrades
    # to the analytic GPSJ estimate instead of crashing plan selection;
    # --deadline-ms bounds the learned stage the same way.
    guarded = GuardedCostPredictor(predictor, gpsj=GPSJCostModel(catalog),
                                   default_deadline_ms=args.deadline_ms)
    query = analyze(parse_sql(args.sql), catalog)
    selector = PlanSelector(guarded, catalog)
    result = selector.select(query, resources)
    rows = [[p.label, f"{c:.3f}", "<-- chosen" if p is result.chosen else ""]
            for p, c in zip(result.candidates, result.predicted_costs)]
    print(render_table(
        f"predicted costs under {resources} (source: {result.cost_source})",
        ["plan", "predicted seconds", ""], rows))
    if result.degraded:
        print(f"note: learned model degraded to {result.cost_source} — "
              f"{result.degradation_reason}")
    return 0


def _cmd_doctor(args: argparse.Namespace) -> int:
    report = verify_checkpoint(args.directory)
    print(report.summary())
    if not report.ok:
        return 1
    if args.no_selftest:
        return 0
    # Self-test: load the checkpoint and predict one trivial query's
    # plans, proving the weights, vocabulary, and encoder round-trip
    # into a usable predictor — not just intact bytes. The prediction
    # runs under a throwaway telemetry bundle so the doctor also proves
    # the instrumentation records spans and metrics end to end.
    from repro.data.imdb import build_imdb_catalog
    from repro.plan.enumerator import enumerate_plans

    predictor = load_predictor(args.directory)
    catalog = build_imdb_catalog(scale=0.05)
    query = analyze(parse_sql("select count(*) from title t"), catalog)
    plans = enumerate_plans(query, catalog)
    telemetry = obs.Telemetry.create()
    with obs.attached(telemetry):
        seconds = predictor.predict(plans[0], PAPER_CLUSTER)
    if not math.isfinite(seconds) or seconds < 0:
        print(f"self-test FAILED: predicted {seconds}")
        return 1
    print(f"self-test prediction OK ({seconds:.3f}s for a trivial scan plan)")
    root = telemetry.tracer.last_root()
    stages_ok = (root is not None and root.find("encode") is not None
                 and root.find("forward") is not None)
    metrics_ok = "predict.requests_total" in telemetry.registry
    if not (stages_ok and metrics_ok):
        print("telemetry self-check FAILED: prediction produced no "
              f"span tree/metrics (root={root!r})")
        return 1
    print(f"telemetry self-check OK (span tree '{root.name}' with "
          f"encode/forward stages, {len(telemetry.registry)} metrics)")
    # Overload-resilience posture: run the same prediction through a
    # fully-armed guard (deadline + admission + ladder + canary) and
    # report the resulting health state. A healthy checkpoint must
    # serve from the learned stage at the top ladder rung.
    from repro.reliability import (AccuracyCanary, AdmissionController,
                                   DegradationLadder, GuardedCostPredictor)

    guarded = GuardedCostPredictor(
        predictor, admission=AdmissionController(),
        ladder=DegradationLadder(), canary=AccuracyCanary(),
        default_deadline_ms=1000.0)
    explained = guarded.predict_explained(plans[0], PAPER_CLUSTER)
    health = guarded.health_state()
    admission = health.get("admission", {})
    print(f"health state: ladder={health['ladder']} "
          f"precision={health['precision']} "
          f"breakers={health['breakers']} "
          f"shed={admission.get('shed_queue_full', 0) + admission.get('shed_wait_timeout', 0)}")
    if explained.source != "raal" or health["ladder"] != "healthy":
        # Name the rung: OPERATIONS.md's triage table keys off it.
        print(f"health self-check FAILED: ladder rung '{health['ladder']}', "
              f"served from '{explained.source}' ({explained.reason})")
        return 1
    print(f"health self-check OK (served by the learned stage, "
          f"ladder rung '{health['ladder']}')")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serving import PredictionService, ServingConfig
    from repro.serving import serve as http_serve

    if not args.model:
        print("error: at least one --model [ID=]DIR is required",
              file=sys.stderr)
        return 2
    config = ServingConfig(
        dataset=args.dataset, catalog_scale=args.catalog_scale,
        batch_window_ms=args.batch_window_ms,
        max_batch_pairs=args.max_batch_pairs,
        precision=args.precision, threads=args.threads,
        default_deadline_ms=args.deadline_ms, shed_mode=args.shed_mode,
        max_in_flight=args.max_in_flight,
        max_queue_depth=args.max_queue_depth,
        plan_cache_size=args.plan_cache_size)
    service = PredictionService(config)
    for spec in args.model:
        model_id, _, directory = spec.rpartition("=")
        model_id = model_id or "default"
        version = service.load_model(directory, model_id=model_id)
        print(f"serving model {model_id!r} version {version} "
              f"from {directory}")
    server = http_serve(service, host=args.host, port=args.port,
                        background=True)
    mode = (f"micro-batching window={config.batch_window_ms}ms "
            f"max_pairs={config.max_batch_pairs}"
            if config.batch_window_ms > 0 else "per-request dispatch")
    print(f"repro serve listening on http://{args.host}:{server.port} "
          f"({mode}, shed_mode={config.shed_mode})", flush=True)
    try:
        while True:
            server._thread.join(1.0)
    except KeyboardInterrupt:
        print("shutting down ...")
    finally:
        server.close()
    return 0


def _http_json(url: str, body: dict) -> tuple[int, dict]:
    """POST JSON, returning (status, parsed body) without raising."""
    import json as _json
    import urllib.error
    import urllib.request

    request = urllib.request.Request(
        url, data=_json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=60.0) as response:
            return response.status, _json.loads(response.read())
    except urllib.error.HTTPError as exc:
        try:
            payload = _json.loads(exc.read())
        except ValueError:
            payload = {"error": str(exc)}
        return exc.code, payload
    except OSError as exc:
        raise ReproError(
            f"cannot reach serve instance at {url}: {exc}") from exc


def _cmd_deploy(args: argparse.Namespace) -> int:
    base = args.server.rstrip("/")
    if args.promote:
        status, body = _http_json(f"{base}/admin/promote",
                                  {"model": args.model, "force": True})
    elif args.rollback:
        status, body = _http_json(f"{base}/admin/rollback",
                                  {"model": args.model})
    else:
        if not args.checkpoint:
            print("error: a checkpoint directory is required unless "
                  "--promote or --rollback is given", file=sys.stderr)
            return 2
        import os as _os

        status, body = _http_json(f"{base}/admin/deploy", {
            "model": args.model,
            "checkpoint": _os.path.abspath(args.checkpoint),
            "shadow_requests": args.shadow_requests,
            "max_qerror": args.max_qerror,
            "auto_promote": not args.no_auto_promote,
        })
    if status != 200:
        print(f"error ({status} {body.get('type', '?')}): "
              f"{body.get('error', body)}", file=sys.stderr)
        return 1
    state = body.get("state", "?")
    version = body.get("version", "?")
    print(f"model {args.model!r}: {state} (version {version})")
    if state == "shadowing":
        print(f"  candidate shadows live traffic; gate: mean q-error vs "
              f"incumbent <= {args.max_qerror} over "
              f">= {args.shadow_requests} batches")
        if args.no_auto_promote:
            print("  promote manually: repro deploy --promote "
                  f"--model {args.model} --server {base}")
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    from repro.data.imdb import build_imdb_catalog
    from repro.data.tpch import build_tpch_catalog

    builder = build_imdb_catalog if args.dataset == "imdb" else build_tpch_catalog
    catalog = builder(scale=args.catalog_scale)
    generator = QueryGenerator(
        catalog,
        WorkloadConfig(max_joins=args.max_joins, workload=args.workload_class),
        seed=args.seed)
    for sql in generator.generate(args.queries):
        print(sql + ";")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    report = obs.load_report(args.artifact)
    if args.format == "json":
        print(report.to_json())
    elif args.format == "prom":
        print(report.to_prometheus(), end="")
    elif args.format == "trace":
        print(report.to_chrome_trace())
    else:
        print(report.render())
    return 0


def _metric_value(metrics: dict, name: str, default: float = 0.0) -> float:
    state = metrics.get(name)
    if not state or "value" not in state:
        return default
    return float(state["value"])


def _render_top(artifact: str) -> str:
    """One ``repro top`` frame: latency, quality, SLO burn, health."""
    from repro.obs.metrics import quantile_from_snapshot

    report = obs.load_report(artifact)
    metrics = report.metrics
    sections: list[str] = []

    latency_rows = []
    for name in sorted(metrics):
        state = metrics[name]
        if state.get("kind") != "histogram" or not name.endswith("_seconds"):
            continue
        count = state.get("count") or 0
        if not count:
            continue
        mean = state["sum"] / count

        def q(quantile: float, _state=state) -> str:
            value = quantile_from_snapshot(_state, quantile)
            return f"{value * 1e3:.2f}" if math.isfinite(value) else "-"

        latency_rows.append([name, str(count), f"{mean * 1e3:.2f}",
                             q(0.50), q(0.95), q(0.99)])
    if latency_rows:
        sections.append(render_table(
            "latency (ms)", ["histogram", "count", "mean", "p50", "p95", "p99"],
            latency_rows))

    quality_rows = []
    scopes = sorted({name.rsplit(".", 1)[0] for name in metrics
                     if name.endswith(".qerror_mean")})
    for scope in scopes:
        quality_rows.append([
            scope,
            f"{_metric_value(metrics, f'{scope}.qerror_mean'):.3f}",
            f"{_metric_value(metrics, f'{scope}.qerror_p50'):.3f}",
            f"{_metric_value(metrics, f'{scope}.qerror_p95'):.3f}",
        ])
    if quality_rows:
        feedback = _metric_value(metrics, "quality.feedback_total")
        drifting = _metric_value(metrics, "quality.drift_state") > 0
        detections = _metric_value(metrics, "quality.drift_detected_total")
        quality_rows.append([
            "drift", "DRIFTING" if drifting else "stable",
            f"detections={detections:g}",
            f"feedback={feedback:g}"])
        sections.append(render_table(
            "prediction quality (q-error)",
            ["scope", "mean", "p50", "p95"], quality_rows))

    slo_rows = []
    slo_names = sorted({name.split(".")[1] for name in metrics
                        if name.startswith("slo.") and name.endswith(".alert")})
    for slo_name in slo_names:
        alerting = _metric_value(metrics, f"slo.{slo_name}.alert") > 0
        slo_rows.append([
            slo_name,
            f"{_metric_value(metrics, f'slo.{slo_name}.burn_fast'):.2f}",
            f"{_metric_value(metrics, f'slo.{slo_name}.burn_slow'):.2f}",
            "ALERT" if alerting else "ok"])
    if slo_rows:
        sections.append(render_table(
            "SLO error-budget burn", ["slo", "fast", "slow", "state"],
            slo_rows))

    ladder_names = {0: "healthy", 1: "degraded_f32", 2: "degraded_int8",
                    3: "fallback"}
    health_rows = [
        ["ladder", ladder_names.get(
            int(_metric_value(metrics, "health.state")), "unknown")],
        ["guarded requests",
         f"{_metric_value(metrics, 'guard.requests_total'):g}"],
        ["degraded answers",
         f"{_metric_value(metrics, 'guard.degraded_total'):g}"],
        ["audit records",
         f"{_metric_value(metrics, 'audit.records_total'):g} "
         f"(ring {_metric_value(metrics, 'audit.ring_size'):g})"],
        ["observations",
         f"{_metric_value(metrics, 'audit.observations_total'):g}"],
    ]
    sections.append(render_table("health", ["signal", "value"], health_rows))
    return "\n\n".join(sections)


def _cmd_top(args: argparse.Namespace) -> int:
    import time as _time

    if args.once:
        print(_render_top(args.artifact))
        return 0
    try:
        while True:
            frame = _render_top(args.artifact)
            # Clear + home, then the frame: a cheap terminal dashboard.
            print(f"\x1b[2J\x1b[H{frame}", flush=True)
            _time.sleep(max(args.interval, 0.1))
    except KeyboardInterrupt:
        return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.obs.audit import load_audit_records

    records = load_audit_records(args.artifact)
    if args.request is not None:
        records = [r for r in records if r.request_id == args.request]
    if args.last > 0:
        records = records[-args.last:]
    if args.json:
        import json as _json

        for record in records:
            print(_json.dumps(record.to_dict(), sort_keys=True))
        return 0

    def fmt(value, spec=".4f") -> str:
        return format(value, spec) if value is not None else "-"

    rows = [[r.request_id, str(r.index), r.source or "-", r.tier or "-",
             fmt(r.prediction_seconds), fmt(r.observed_seconds),
             fmt(r.q_error, ".3f"),
             fmt(r.latency_seconds * 1e3 if r.latency_seconds is not None
                 else None, ".2f"),
             (r.plan_fingerprint or "-")[:12]]
            for r in records]
    print(render_table(
        f"audit trail ({len(records)} records)",
        ["request", "i", "source", "tier", "predicted_s", "observed_s",
         "q_error", "latency_ms", "fingerprint"],
        rows or [["(none)"] + [""] * 8]))
    return 0


_COMMANDS = {
    "experiment": _cmd_experiment,
    "train": _cmd_train,
    "predict": _cmd_predict,
    "doctor": _cmd_doctor,
    "metrics": _cmd_metrics,
    "top": _cmd_top,
    "audit": _cmd_audit,
    "serve": _cmd_serve,
    "deploy": _cmd_deploy,
    "workload": _cmd_workload,
}


def _run_command(args: argparse.Namespace) -> int:
    """Dispatch one command, under telemetry when ``--emit-telemetry``.

    The final ``telemetry_report`` event (aggregate metrics, span
    trees, event tallies) is appended even when the command fails —
    a degraded run's telemetry is exactly the telemetry worth keeping.
    """
    emit_path = getattr(args, "emit_telemetry", None)
    if not emit_path:
        return _COMMANDS[args.command](args)
    telemetry = obs.Telemetry.create(events_path=emit_path)
    try:
        with obs.attached(telemetry):
            return _COMMANDS[args.command](args)
    finally:
        report = obs.TelemetryReport.from_telemetry(telemetry)
        telemetry.events.emit("obs", "telemetry_report",
                              report=report.to_dict())
        telemetry.close()


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Library errors (:class:`~repro.errors.ReproError`) exit non-zero
    with a one-line message instead of a traceback — a corrupt
    checkpoint or bad SQL is an operator problem, not a crash.
    """
    args = build_parser().parse_args(argv)
    try:
        return _run_command(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
