"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiment``
    Run the end-to-end pipeline (catalog → workload → collection →
    training) for one model variant and print the paper's four metrics.
``train``
    Same pipeline, but persist the trained cost predictor to a
    directory for later use.
``predict``
    Load a persisted predictor and estimate the cost of an ad-hoc SQL
    query's candidate plans under a chosen resource allocation.
``workload``
    Generate and print a random SQL workload for a dataset.
``doctor``
    Validate a persisted predictor: verify the checkpoint manifest
    (schema version, per-file SHA-256) and run a self-test prediction,
    plus a telemetry self-check (spans + metrics recorded end to end).
``metrics``
    Render the telemetry of a previous run: load a run artifact written
    by ``--emit-telemetry`` (or ``TelemetryReport.write``) and print
    its metrics as a table, JSON, Prometheus text, or Chrome/Perfetto
    trace-event JSON (``--format trace``).
``top``
    Terminal health snapshot of a run artifact: latency percentiles,
    q-error quality scopes, drift state, SLO error-budget burn rates,
    and the degradation-ladder/audit posture. ``--once`` for one frame,
    otherwise refreshes every ``--interval`` seconds.
``audit``
    Query the per-prediction audit trail: the most recent records
    (``--last N``), one request (``--request ID``), as a table or JSONL
    (``--json``). Reads either a dedicated audit dump or a full
    telemetry event stream.

``experiment``, ``train``, and ``predict`` accept ``--emit-telemetry
PATH``: the run executes under an attached telemetry bundle, streaming
structured events to ``PATH`` as JSONL and appending a final
``telemetry_report`` event with the aggregate metrics and span trees.
"""

from __future__ import annotations

import argparse
import math
import sys


from repro import obs
from repro.baselines.gpsj import GPSJCostModel
from repro.cluster.resources import PAPER_CLUSTER
from repro.core.persistence import load_predictor, save_predictor, verify_checkpoint
from repro.core.predictor import CostPredictor, PredictorConfig
from repro.nn.precision import PRECISIONS
from repro.core.selector import PlanSelector
from repro.errors import ReproError
from repro.eval.experiments import ExperimentPipeline, ExperimentScale
from repro.eval.reporting import render_table
from repro.plan.builder import analyze
from repro.reliability.guard import GuardedCostPredictor
from repro.sql.parser import parse as parse_sql
from repro.workload.generator import QueryGenerator, WorkloadConfig

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Resource-aware deep cost model (ICDE 2022 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("experiment", help="run one training experiment")
    _pipeline_args(exp)
    _telemetry_arg(exp)
    exp.add_argument("--variant", default="RAAL",
                     help="RAAL | NE-LSTM | NA-LSTM | RAAC | OH-LSTM")
    exp.add_argument("--no-resource-attention", action="store_true",
                     help="train the resource-blind ablation")

    train = sub.add_parser("train", help="train and persist a cost predictor")
    _pipeline_args(train)
    _telemetry_arg(train)
    train.add_argument("--out", required=True, help="output directory")

    predict = sub.add_parser("predict", help="estimate plan costs for a SQL query")
    _telemetry_arg(predict)
    predict.add_argument("--model", required=True, help="persisted predictor directory")
    predict.add_argument("--dataset", default="imdb", choices=["imdb", "tpch"])
    predict.add_argument("--catalog-scale", type=float, default=0.15)
    predict.add_argument("--sql", required=True)
    predict.add_argument("--memory-gb", type=float, default=4.0)
    predict.add_argument("--executors", type=int, default=2)
    predict.add_argument("--executor-cores", type=int, default=2)
    predict.add_argument(
        "--precision", default="f64", choices=list(PRECISIONS),
        help="inference precision tier (f64 is bit-exact legacy behavior; "
             "f32/int8 trade ≤0.5%% cost error for speed)")
    predict.add_argument(
        "--threads", type=int, default=1,
        help="bucket-parallel inference threads (0 = one per CPU core)")
    predict.add_argument(
        "--deadline-ms", type=float, default=None,
        help="per-prediction latency budget; past it the learned model "
             "is abandoned and the analytic GPSJ estimate is served")

    doctor = sub.add_parser(
        "doctor", help="validate a persisted predictor checkpoint")
    doctor.add_argument("directory", help="checkpoint directory to validate")
    doctor.add_argument("--no-selftest", action="store_true",
                        help="skip the self-test prediction (manifest check only)")

    metrics = sub.add_parser(
        "metrics", help="render the telemetry report of a previous run")
    metrics.add_argument("artifact",
                         help="run artifact: --emit-telemetry JSONL stream "
                              "or a JSON report file")
    metrics.add_argument("--format", default="table",
                         choices=["table", "json", "prom", "trace"],
                         help="output format (default: table; 'trace' emits "
                              "Chrome/Perfetto trace-event JSON of the "
                              "recorded span trees)")

    top = sub.add_parser(
        "top", help="terminal health snapshot of a run's telemetry")
    top.add_argument("artifact",
                     help="run artifact: --emit-telemetry JSONL stream or a "
                          "JSON report file")
    top.add_argument("--once", action="store_true",
                     help="render a single snapshot and exit (default: "
                          "refresh until interrupted)")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between refreshes (default: 2)")

    audit = sub.add_parser(
        "audit", help="query the per-prediction audit trail of a run")
    audit.add_argument("artifact",
                       help="audit JSONL (AuditTrail.write_jsonl) or a "
                            "telemetry event stream containing audit events")
    audit.add_argument("--last", type=int, default=10,
                       help="show the N most recent records (default: 10)")
    audit.add_argument("--request", default=None,
                       help="show only records of this request id")
    audit.add_argument("--json", action="store_true",
                       help="emit records as JSONL instead of a table")

    workload = sub.add_parser("workload", help="generate a random workload")
    workload.add_argument("--dataset", default="imdb", choices=["imdb", "tpch"])
    workload.add_argument("--catalog-scale", type=float, default=0.15)
    workload.add_argument("--queries", type=int, default=10)
    workload.add_argument("--max-joins", type=int, default=5)
    workload.add_argument("--workload-class", default="mixed",
                          choices=["numeric", "string", "mixed"])
    workload.add_argument("--seed", type=int, default=0)
    return parser


def _pipeline_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="imdb", choices=["imdb", "tpch"])
    parser.add_argument("--queries", type=int, default=120)
    parser.add_argument("--epochs", type=int, default=50)
    parser.add_argument("--catalog-scale", type=float, default=0.15)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--no-fast-path", action="store_true",
                        help="train through the legacy autograd path "
                             "instead of the fused analytic backward")


def _telemetry_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--emit-telemetry", metavar="PATH", default=None,
        help="stream structured telemetry events (JSONL) to PATH and "
             "append a final telemetry_report event; render it later "
             "with 'repro metrics PATH'")


def _make_pipeline(args: argparse.Namespace) -> ExperimentPipeline:
    scale = ExperimentScale(
        catalog_scale=args.catalog_scale,
        num_queries=args.queries,
        epochs=args.epochs,
        fast_path=not getattr(args, "no_fast_path", False),
        seed=args.seed,
    )
    return ExperimentPipeline(dataset=args.dataset, scale=scale)


def _cmd_experiment(args: argparse.Namespace) -> int:
    pipeline = _make_pipeline(args)
    print(f"collecting records for {args.queries} {args.dataset} queries ...")
    print(f"  {len(pipeline.records)} records "
          f"({len(pipeline.collector.skipped)} queries skipped)")
    trained = pipeline.train_variant(
        args.variant, resource_aware=not args.no_resource_attention)
    print(render_table(
        f"{trained.name} on {args.dataset} (test split)",
        ["metric", "value"],
        [["RE", trained.metrics.re], ["MSE", trained.metrics.mse],
         ["COR", trained.metrics.cor], ["R2", trained.metrics.r2],
         ["train seconds", trained.train_seconds]]))
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    pipeline = _make_pipeline(args)
    trained = pipeline.train_variant("RAAL")
    predictor = CostPredictor(trained.encoder, trained.trainer)
    save_predictor(predictor, args.out)
    print(f"saved predictor to {args.out}  ({trained.metrics})")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from repro.data.imdb import build_imdb_catalog
    from repro.data.tpch import build_tpch_catalog

    builder = build_imdb_catalog if args.dataset == "imdb" else build_tpch_catalog
    catalog = builder(scale=args.catalog_scale)
    predictor = load_predictor(args.model)
    exec_config = PredictorConfig(precision=args.precision,
                                  threads=args.threads,
                                  factor_grids=args.precision != "f64")
    if exec_config != PredictorConfig():
        predictor = predictor.configured(exec_config)
    resources = PAPER_CLUSTER
    resources = type(resources)(
        nodes=resources.nodes, cores_per_node=resources.cores_per_node,
        executors=args.executors, executor_cores=args.executor_cores,
        executor_memory_gb=args.memory_gb,
        network_throughput_mbps=resources.network_throughput_mbps,
        disk_throughput_mbps=resources.disk_throughput_mbps)

    # Guarded prediction: a bad checkpoint or unseen operator degrades
    # to the analytic GPSJ estimate instead of crashing plan selection;
    # --deadline-ms bounds the learned stage the same way.
    guarded = GuardedCostPredictor(predictor, gpsj=GPSJCostModel(catalog),
                                   default_deadline_ms=args.deadline_ms)
    query = analyze(parse_sql(args.sql), catalog)
    selector = PlanSelector(guarded, catalog)
    result = selector.select(query, resources)
    rows = [[p.label, f"{c:.3f}", "<-- chosen" if p is result.chosen else ""]
            for p, c in zip(result.candidates, result.predicted_costs)]
    print(render_table(
        f"predicted costs under {resources} (source: {result.cost_source})",
        ["plan", "predicted seconds", ""], rows))
    if result.degraded:
        print(f"note: learned model degraded to {result.cost_source} — "
              f"{result.degradation_reason}")
    return 0


def _cmd_doctor(args: argparse.Namespace) -> int:
    report = verify_checkpoint(args.directory)
    print(report.summary())
    if not report.ok:
        return 1
    if args.no_selftest:
        return 0
    # Self-test: load the checkpoint and predict one trivial query's
    # plans, proving the weights, vocabulary, and encoder round-trip
    # into a usable predictor — not just intact bytes. The prediction
    # runs under a throwaway telemetry bundle so the doctor also proves
    # the instrumentation records spans and metrics end to end.
    from repro.data.imdb import build_imdb_catalog
    from repro.plan.enumerator import enumerate_plans

    predictor = load_predictor(args.directory)
    catalog = build_imdb_catalog(scale=0.05)
    query = analyze(parse_sql("select count(*) from title t"), catalog)
    plans = enumerate_plans(query, catalog)
    telemetry = obs.Telemetry.create()
    with obs.attached(telemetry):
        seconds = predictor.predict(plans[0], PAPER_CLUSTER)
    if not math.isfinite(seconds) or seconds < 0:
        print(f"self-test FAILED: predicted {seconds}")
        return 1
    print(f"self-test prediction OK ({seconds:.3f}s for a trivial scan plan)")
    root = telemetry.tracer.last_root()
    stages_ok = (root is not None and root.find("encode") is not None
                 and root.find("forward") is not None)
    metrics_ok = "predict.requests_total" in telemetry.registry
    if not (stages_ok and metrics_ok):
        print("telemetry self-check FAILED: prediction produced no "
              f"span tree/metrics (root={root!r})")
        return 1
    print(f"telemetry self-check OK (span tree '{root.name}' with "
          f"encode/forward stages, {len(telemetry.registry)} metrics)")
    # Overload-resilience posture: run the same prediction through a
    # fully-armed guard (deadline + admission + ladder + canary) and
    # report the resulting health state. A healthy checkpoint must
    # serve from the learned stage at the top ladder rung.
    from repro.reliability import (AccuracyCanary, AdmissionController,
                                   DegradationLadder, GuardedCostPredictor)

    guarded = GuardedCostPredictor(
        predictor, admission=AdmissionController(),
        ladder=DegradationLadder(), canary=AccuracyCanary(),
        default_deadline_ms=1000.0)
    explained = guarded.predict_explained(plans[0], PAPER_CLUSTER)
    health = guarded.health_state()
    admission = health.get("admission", {})
    print(f"health state: ladder={health['ladder']} "
          f"precision={health['precision']} "
          f"breakers={health['breakers']} "
          f"shed={admission.get('shed_queue_full', 0) + admission.get('shed_wait_timeout', 0)}")
    if explained.source != "raal" or health["ladder"] != "healthy":
        print(f"health self-check FAILED: served from '{explained.source}' "
              f"({explained.reason})")
        return 1
    print("health self-check OK (served by the learned stage, ladder healthy)")
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    from repro.data.imdb import build_imdb_catalog
    from repro.data.tpch import build_tpch_catalog

    builder = build_imdb_catalog if args.dataset == "imdb" else build_tpch_catalog
    catalog = builder(scale=args.catalog_scale)
    generator = QueryGenerator(
        catalog,
        WorkloadConfig(max_joins=args.max_joins, workload=args.workload_class),
        seed=args.seed)
    for sql in generator.generate(args.queries):
        print(sql + ";")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    report = obs.load_report(args.artifact)
    if args.format == "json":
        print(report.to_json())
    elif args.format == "prom":
        print(report.to_prometheus(), end="")
    elif args.format == "trace":
        print(report.to_chrome_trace())
    else:
        print(report.render())
    return 0


def _metric_value(metrics: dict, name: str, default: float = 0.0) -> float:
    state = metrics.get(name)
    if not state or "value" not in state:
        return default
    return float(state["value"])


def _render_top(artifact: str) -> str:
    """One ``repro top`` frame: latency, quality, SLO burn, health."""
    from repro.obs.metrics import quantile_from_snapshot

    report = obs.load_report(artifact)
    metrics = report.metrics
    sections: list[str] = []

    latency_rows = []
    for name in sorted(metrics):
        state = metrics[name]
        if state.get("kind") != "histogram" or not name.endswith("_seconds"):
            continue
        count = state.get("count") or 0
        if not count:
            continue
        mean = state["sum"] / count

        def q(quantile: float, _state=state) -> str:
            value = quantile_from_snapshot(_state, quantile)
            return f"{value * 1e3:.2f}" if math.isfinite(value) else "-"

        latency_rows.append([name, str(count), f"{mean * 1e3:.2f}",
                             q(0.50), q(0.95), q(0.99)])
    if latency_rows:
        sections.append(render_table(
            "latency (ms)", ["histogram", "count", "mean", "p50", "p95", "p99"],
            latency_rows))

    quality_rows = []
    scopes = sorted({name.rsplit(".", 1)[0] for name in metrics
                     if name.endswith(".qerror_mean")})
    for scope in scopes:
        quality_rows.append([
            scope,
            f"{_metric_value(metrics, f'{scope}.qerror_mean'):.3f}",
            f"{_metric_value(metrics, f'{scope}.qerror_p50'):.3f}",
            f"{_metric_value(metrics, f'{scope}.qerror_p95'):.3f}",
        ])
    if quality_rows:
        feedback = _metric_value(metrics, "quality.feedback_total")
        drifting = _metric_value(metrics, "quality.drift_state") > 0
        detections = _metric_value(metrics, "quality.drift_detected_total")
        quality_rows.append([
            "drift", "DRIFTING" if drifting else "stable",
            f"detections={detections:g}",
            f"feedback={feedback:g}"])
        sections.append(render_table(
            "prediction quality (q-error)",
            ["scope", "mean", "p50", "p95"], quality_rows))

    slo_rows = []
    slo_names = sorted({name.split(".")[1] for name in metrics
                        if name.startswith("slo.") and name.endswith(".alert")})
    for slo_name in slo_names:
        alerting = _metric_value(metrics, f"slo.{slo_name}.alert") > 0
        slo_rows.append([
            slo_name,
            f"{_metric_value(metrics, f'slo.{slo_name}.burn_fast'):.2f}",
            f"{_metric_value(metrics, f'slo.{slo_name}.burn_slow'):.2f}",
            "ALERT" if alerting else "ok"])
    if slo_rows:
        sections.append(render_table(
            "SLO error-budget burn", ["slo", "fast", "slow", "state"],
            slo_rows))

    ladder_names = {0: "healthy", 1: "degraded_f32", 2: "degraded_int8",
                    3: "fallback"}
    health_rows = [
        ["ladder", ladder_names.get(
            int(_metric_value(metrics, "health.state")), "unknown")],
        ["guarded requests",
         f"{_metric_value(metrics, 'guard.requests_total'):g}"],
        ["degraded answers",
         f"{_metric_value(metrics, 'guard.degraded_total'):g}"],
        ["audit records",
         f"{_metric_value(metrics, 'audit.records_total'):g} "
         f"(ring {_metric_value(metrics, 'audit.ring_size'):g})"],
        ["observations",
         f"{_metric_value(metrics, 'audit.observations_total'):g}"],
    ]
    sections.append(render_table("health", ["signal", "value"], health_rows))
    return "\n\n".join(sections)


def _cmd_top(args: argparse.Namespace) -> int:
    import time as _time

    if args.once:
        print(_render_top(args.artifact))
        return 0
    try:
        while True:
            frame = _render_top(args.artifact)
            # Clear + home, then the frame: a cheap terminal dashboard.
            print(f"\x1b[2J\x1b[H{frame}", flush=True)
            _time.sleep(max(args.interval, 0.1))
    except KeyboardInterrupt:
        return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.obs.audit import load_audit_records

    records = load_audit_records(args.artifact)
    if args.request is not None:
        records = [r for r in records if r.request_id == args.request]
    if args.last > 0:
        records = records[-args.last:]
    if args.json:
        import json as _json

        for record in records:
            print(_json.dumps(record.to_dict(), sort_keys=True))
        return 0

    def fmt(value, spec=".4f") -> str:
        return format(value, spec) if value is not None else "-"

    rows = [[r.request_id, str(r.index), r.source or "-", r.tier or "-",
             fmt(r.prediction_seconds), fmt(r.observed_seconds),
             fmt(r.q_error, ".3f"),
             fmt(r.latency_seconds * 1e3 if r.latency_seconds is not None
                 else None, ".2f"),
             (r.plan_fingerprint or "-")[:12]]
            for r in records]
    print(render_table(
        f"audit trail ({len(records)} records)",
        ["request", "i", "source", "tier", "predicted_s", "observed_s",
         "q_error", "latency_ms", "fingerprint"],
        rows or [["(none)"] + [""] * 8]))
    return 0


_COMMANDS = {
    "experiment": _cmd_experiment,
    "train": _cmd_train,
    "predict": _cmd_predict,
    "doctor": _cmd_doctor,
    "metrics": _cmd_metrics,
    "top": _cmd_top,
    "audit": _cmd_audit,
    "workload": _cmd_workload,
}


def _run_command(args: argparse.Namespace) -> int:
    """Dispatch one command, under telemetry when ``--emit-telemetry``.

    The final ``telemetry_report`` event (aggregate metrics, span
    trees, event tallies) is appended even when the command fails —
    a degraded run's telemetry is exactly the telemetry worth keeping.
    """
    emit_path = getattr(args, "emit_telemetry", None)
    if not emit_path:
        return _COMMANDS[args.command](args)
    telemetry = obs.Telemetry.create(events_path=emit_path)
    try:
        with obs.attached(telemetry):
            return _COMMANDS[args.command](args)
    finally:
        report = obs.TelemetryReport.from_telemetry(telemetry)
        telemetry.events.emit("obs", "telemetry_report",
                              report=report.to_dict())
        telemetry.close()


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Library errors (:class:`~repro.errors.ReproError`) exit non-zero
    with a one-line message instead of a traceback — a corrupt
    checkpoint or bad SQL is an operator problem, not a crash.
    """
    args = build_parser().parse_args(argv)
    try:
        return _run_command(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
