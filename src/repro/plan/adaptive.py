"""Adaptive query execution (AQE) emulation — an extension experiment.

Spark 3.x's AQE re-picks join strategies at stage boundaries using
*observed* shuffle statistics instead of optimizer estimates. This
module emulates that behaviour on our substrate: scans are executed
first (their true filtered sizes observed), then each join's algorithm
is chosen with a memory-aware broadcast rule over those true sizes.

This slots between the two approaches the paper compares:

* the static rule-based default (estimates only, resource-blind);
* AQE (true sizes, simple resource rule, needs runtime stats);
* RAAL (estimates only, learned, resource-aware — decides *before*
  execution, which AQE cannot).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.resources import ResourceProfile
from repro.data.catalog import Catalog
from repro.engine.relation import Relation
from repro.plan.builder import AnalyzedQuery
from repro.plan.cardinality import CardinalityEstimator
from repro.plan.enumerator import _build_plan, _JoinGraph, annotate_estimates
from repro.plan.physical import PhysicalPlan
from repro.sql.expressions import evaluate_predicate

__all__ = ["observed_scan_stats", "aqe_plan"]

#: Default memory-aware broadcast rule: the (amplified) hash relation
#: must fit in this fraction of the executor heap. Matches the
#: simulator's broadcast-fallback budget so AQE never walks into cliffs.
AQE_MEMORY_FRACTION = 0.35
HASH_TABLE_OVERHEAD = 2.0
DATA_SCALE = 6000.0


def observed_scan_stats(query: AnalyzedQuery, catalog: Catalog) -> dict[str, tuple[float, float]]:
    """True (rows, bytes) of each alias's filtered scan output.

    This is the runtime information AQE has after the map stages finish
    writing their shuffle files.
    """
    stmt = query.statement
    out: dict[str, tuple[float, float]] = {}
    for alias in query.aliases:
        table = catalog.table(query.table_of(alias))
        preds = [p for p in stmt.filters if p.column.table == alias]
        mask = np.ones(table.row_count, dtype=bool)
        for pred in preds:
            mask &= evaluate_predicate(pred, table.column(pred.column.column))
        rows = float(mask.sum())
        # Bytes of the columns the query actually reads from this alias.
        from repro.plan.enumerator import required_columns
        cols = required_columns(query)[alias] or [table.schema.column_names[0]]
        relation = Relation({c: table.column(c)[mask] for c in cols})
        out[alias] = (rows, relation.estimated_bytes())
    return out


def aqe_plan(query: AnalyzedQuery, catalog: Catalog,
             resources: ResourceProfile,
             memory_fraction: float = AQE_MEMORY_FRACTION) -> PhysicalPlan:
    """Build the plan AQE would settle on for ``resources``.

    Join order follows the same greedy largest-probe-first heuristic as
    the defaults; per-join algorithms use *observed* build sizes against
    the memory-aware broadcast budget.
    """
    estimator = CardinalityEstimator(catalog, query.alias_to_table)
    stmt = query.statement
    graph = _JoinGraph(query.aliases, stmt.joins)
    observed = observed_scan_stats(query, catalog)
    probe_first = sorted(query.aliases, key=lambda a: -observed[a][0])
    order = graph.connected_orders(probe_first, 1)[0]

    budget = memory_fraction * resources.executor_memory_bytes
    algos = []
    for alias in order[1:]:
        _, build_bytes = observed[alias]
        needed = build_bytes * DATA_SCALE * HASH_TABLE_OVERHEAD
        algos.append("bhj" if needed <= budget else "smj")
    plan = _build_plan(query, catalog, order, algos, True, "aqe")
    annotate_estimates(plan, estimator)
    return plan
