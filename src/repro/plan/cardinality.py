"""Statistics-based cardinality estimation (Catalyst-style).

These estimates drive (a) the rule-based "default" plan choice that
mimics Spark's Catalyst, (b) the GPSJ analytic baseline, and (c) the
"other features" fed to the learned cost models. They use the textbook
assumptions (attribute independence, containment of join keys) and are
therefore *systematically wrong* on skewed/correlated data — which is
precisely the gap the learned model exploits.
"""

from __future__ import annotations

from repro.data.catalog import Catalog
from repro.data.statistics import ColumnStatistics
from repro.errors import PlanError
from repro.sql.ast import (
    BetweenPredicate,
    ColumnRef,
    Comparison,
    CompareOp,
    InPredicate,
    IsNullPredicate,
    JoinCondition,
    LikePredicate,
)

__all__ = ["CardinalityEstimator", "DEFAULT_LIKE_SELECTIVITY"]

DEFAULT_LIKE_SELECTIVITY = 0.15


class CardinalityEstimator:
    """Estimates selectivities and join sizes from catalog statistics.

    Parameters
    ----------
    catalog:
        Source of table/column statistics.
    alias_to_table:
        Maps query aliases to catalog table names.
    """

    def __init__(self, catalog: Catalog, alias_to_table: dict[str, str]) -> None:
        self._catalog = catalog
        self._alias_to_table = alias_to_table

    # -- column statistics lookup -----------------------------------------
    def column_stats(self, ref: ColumnRef) -> ColumnStatistics:
        """Statistics for a qualified column reference."""
        if ref.table is None:
            raise PlanError(f"column reference {ref} is not qualified")
        if ref.table not in self._alias_to_table:
            raise PlanError(f"unknown alias {ref.table!r}")
        table = self._alias_to_table[ref.table]
        return self._catalog.statistics(table).column(ref.column)

    def table_rows(self, alias: str) -> float:
        """Base row count of the table behind ``alias``."""
        return float(self._catalog.statistics(self._alias_to_table[alias]).row_count)

    def table_bytes(self, alias: str) -> float:
        """Estimated base size in bytes of the table behind ``alias``."""
        return float(self._catalog.statistics(self._alias_to_table[alias]).total_bytes)

    def row_width(self, alias: str) -> float:
        """Average row width in bytes of the table behind ``alias``."""
        return float(self._catalog.statistics(self._alias_to_table[alias]).avg_row_bytes)

    # -- predicate selectivity ----------------------------------------------
    def predicate_selectivity(self, pred) -> float:
        """Estimated selectivity of one filter predicate in [0, 1]."""
        stats = self.column_stats(pred.column)
        if isinstance(pred, Comparison):
            return self._comparison_selectivity(pred, stats)
        if isinstance(pred, BetweenPredicate):
            return stats.selectivity_range(float(pred.low.value), float(pred.high.value))
        if isinstance(pred, InPredicate):
            sel = sum(stats.selectivity_eq(v.value) for v in pred.values)
            return min(sel, 1.0)
        if isinstance(pred, LikePredicate):
            sel = DEFAULT_LIKE_SELECTIVITY
            return 1.0 - sel if pred.negated else sel
        if isinstance(pred, IsNullPredicate):
            frac = stats.null_fraction
            return 1.0 - frac if pred.negated else frac
        raise PlanError(f"cannot estimate selectivity of {type(pred).__name__}")

    def _comparison_selectivity(self, pred: Comparison, stats: ColumnStatistics) -> float:
        value = pred.value.value
        if pred.op == CompareOp.EQ:
            return stats.selectivity_eq(value)
        if pred.op == CompareOp.NE:
            return max(0.0, 1.0 - stats.selectivity_eq(value) - stats.null_fraction)
        if stats.dtype.is_numeric:
            v = float(value)
            if pred.op == CompareOp.LT:
                return stats.selectivity_range(None, v, high_inclusive=False)
            if pred.op == CompareOp.LE:
                return stats.selectivity_range(None, v, high_inclusive=True)
            if pred.op == CompareOp.GT:
                return stats.selectivity_range(v, None, low_inclusive=False)
            return stats.selectivity_range(v, None, low_inclusive=True)
        return 1.0 / 3.0  # string inequality: classic default

    def conjunction_selectivity(self, predicates) -> float:
        """Independence-assumption product of per-predicate selectivities."""
        sel = 1.0
        for pred in predicates:
            sel *= self.predicate_selectivity(pred)
        return sel

    # -- join estimation -------------------------------------------------------
    def join_cardinality(self, left_rows: float, right_rows: float,
                         condition: JoinCondition | None) -> float:
        """Classic equi-join estimate ``|L||R| / max(ndv_l, ndv_r)``."""
        if condition is None:
            return left_rows * right_rows
        ndv_l = max(self.column_stats(condition.left).ndv, 1)
        ndv_r = max(self.column_stats(condition.right).ndv, 1)
        return (left_rows * right_rows) / max(ndv_l, ndv_r)

    def scan_cardinality(self, alias: str, predicates) -> float:
        """Rows surviving the pushed-down filters of one scan."""
        return self.table_rows(alias) * self.conjunction_selectivity(predicates)

    def aggregate_cardinality(self, input_rows: float, group_by) -> float:
        """Output rows of an aggregation: 1 (global) or bounded NDV product."""
        if not group_by:
            return 1.0
        groups = 1.0
        for col in group_by:
            groups *= max(self.column_stats(col).ndv, 1)
        return min(groups, input_rows)
