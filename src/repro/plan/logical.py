"""Logical plan algebra (the optimizer's intermediate representation).

A logical plan is a tree of relational operators produced from a parsed
:class:`~repro.sql.ast.SelectStatement` by :mod:`repro.plan.builder`,
rewritten by :mod:`repro.plan.optimizer`, and lowered to physical plans
by :mod:`repro.plan.enumerator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sql.ast import (
    AggregateExpr,
    ColumnRef,
    JoinCondition,
    OrderItem,
)

__all__ = [
    "LogicalNode",
    "LogicalScan",
    "LogicalFilter",
    "LogicalProject",
    "LogicalJoin",
    "LogicalAggregate",
    "LogicalSort",
    "LogicalLimit",
]


@dataclass
class LogicalNode:
    """Base class for logical operators."""

    @property
    def children(self) -> list["LogicalNode"]:
        """Child operators (overridden by subclasses)."""
        return []

    def tables(self) -> set[str]:
        """Set of table names (aliases) this subtree produces."""
        out: set[str] = set()
        for child in self.children:
            out |= child.tables()
        return out

    def describe(self, indent: int = 0) -> str:
        """Multi-line, indented plan rendering (EXPLAIN-style)."""
        lines = ["  " * indent + str(self)]
        for child in self.children:
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)


@dataclass
class LogicalScan(LogicalNode):
    """Base-table scan. ``alias`` is how the query refers to the table."""

    table: str
    alias: str
    columns: list[str] = field(default_factory=list)

    def tables(self) -> set[str]:
        return {self.alias}

    def __str__(self) -> str:
        cols = f" [{', '.join(self.columns)}]" if self.columns else ""
        return f"Scan {self.table} as {self.alias}{cols}"


@dataclass
class LogicalFilter(LogicalNode):
    """Conjunctive single-table filter."""

    child: LogicalNode
    predicates: list = field(default_factory=list)

    @property
    def children(self) -> list[LogicalNode]:
        return [self.child]

    def __str__(self) -> str:
        return "Filter " + " and ".join(str(p) for p in self.predicates)


@dataclass
class LogicalProject(LogicalNode):
    """Column projection."""

    child: LogicalNode
    columns: list[ColumnRef] = field(default_factory=list)

    @property
    def children(self) -> list[LogicalNode]:
        return [self.child]

    def __str__(self) -> str:
        return "Project " + ", ".join(str(c) for c in self.columns)


@dataclass
class LogicalJoin(LogicalNode):
    """Inner equi-join of two subtrees."""

    left: LogicalNode
    right: LogicalNode
    condition: JoinCondition | None = None  # None = cross join

    @property
    def children(self) -> list[LogicalNode]:
        return [self.left, self.right]

    def __str__(self) -> str:
        cond = f" on {self.condition}" if self.condition else " (cross)"
        return f"Join{cond}"


@dataclass
class LogicalAggregate(LogicalNode):
    """Grouped or global aggregation."""

    child: LogicalNode
    group_by: list[ColumnRef] = field(default_factory=list)
    aggregates: list[AggregateExpr] = field(default_factory=list)

    @property
    def children(self) -> list[LogicalNode]:
        return [self.child]

    def __str__(self) -> str:
        aggs = ", ".join(str(a) for a in self.aggregates)
        if self.group_by:
            keys = ", ".join(str(c) for c in self.group_by)
            return f"Aggregate [{keys}] [{aggs}]"
        return f"Aggregate [{aggs}]"


@dataclass
class LogicalSort(LogicalNode):
    """ORDER BY."""

    child: LogicalNode
    keys: list[OrderItem] = field(default_factory=list)

    @property
    def children(self) -> list[LogicalNode]:
        return [self.child]

    def __str__(self) -> str:
        return "Sort " + ", ".join(str(k) for k in self.keys)


@dataclass
class LogicalLimit(LogicalNode):
    """LIMIT n."""

    child: LogicalNode
    count: int = 0

    @property
    def children(self) -> list[LogicalNode]:
        return [self.child]

    def __str__(self) -> str:
        return f"Limit {self.count}"
