"""Physical plan enumeration: one logical query → many candidate plans.

Mirrors how the paper obtains its training plans: "In Catalyst, the
optimized logical plan develops multiple physical execution plans. We
fetch each physical execution plan of each query and evaluate them."

Candidates differ in:

* **join order** — connected left-deep orders over the join graph;
* **join algorithm** — SortMergeJoin (exchange + sort both sides) vs.
  BroadcastHashJoin (broadcast the build side) per join;
* **scan style** — filters pushed into the ``FileScan`` vs. kept in a
  separate ``Filter`` operator (this is why the paper's single-table
  query has exactly two physical plans).

:func:`default_plan` reproduces the *rule-based Catalyst choice* (the
"default cost model" of the paper's Fig. 1): greedy smallest-first join
order and broadcast when the build side's estimated size is under the
``spark.sql.autoBroadcastJoinThreshold``-style threshold.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.data.catalog import Catalog
from repro.errors import PlanError
from repro.plan.builder import AnalyzedQuery
from repro.plan.cardinality import CardinalityEstimator
from repro.plan.physical import (
    BroadcastExchange,
    BroadcastHashJoin,
    BroadcastNestedLoopJoin,
    ExchangeHashPartition,
    ExchangeSinglePartition,
    FileScan,
    FilterExec,
    HashAggregate,
    LimitExec,
    PhysicalNode,
    PhysicalPlan,
    ProjectExec,
    SortExec,
    SortMergeJoin,
)
from repro.sql.ast import AggregateExpr, ColumnRef, JoinCondition, SelectStatement

__all__ = [
    "EnumeratorConfig",
    "enumerate_plans",
    "default_plan",
    "required_columns",
    "annotate_estimates",
]

DEFAULT_BROADCAST_THRESHOLD = 512 * 1024  # bytes; scaled to our data sizes

#: Spark's stock ``autoBroadcastJoinThreshold`` is 10 MB of *real* data;
#: with the simulator's 6000x volume amplification that corresponds to
#: ~1.7 KB of unscaled bytes. The non-CBO default plan uses this, which
#: makes it broadcast-shy on anything but tiny dimensions — the realistic
#: behaviour the paper's Fig. 1 baseline exhibits.
SPARK_NON_CBO_THRESHOLD = 10e6 / 6000.0


@dataclass
class EnumeratorConfig:
    """Knobs controlling plan enumeration."""

    max_plans: int = 12
    max_join_orders: int = 4
    broadcast_threshold: float = DEFAULT_BROADCAST_THRESHOLD
    include_unpushed_scan_variant: bool = True


def required_columns(query: AnalyzedQuery) -> dict[str, list[str]]:
    """Columns each alias must provide (projection pruning).

    Union of join keys, filter columns, and SELECT/GROUP BY/ORDER BY
    references, per alias, in deterministic order.
    """
    stmt = query.statement
    needed: dict[str, list[str]] = {alias: [] for alias in query.aliases}

    def add(ref: ColumnRef | None) -> None:
        if ref is None or ref.table is None:
            return
        cols = needed[ref.table]
        if ref.column not in cols:
            cols.append(ref.column)

    for pred in stmt.filters:
        add(pred.column)
    for join in stmt.joins:
        add(join.left)
        add(join.right)
    for item in stmt.select_items:
        if isinstance(item.expr, AggregateExpr):
            add(item.expr.argument)
        else:
            add(item.expr)
    for col in stmt.group_by:
        add(col)
    for order in stmt.order_by:
        add(order.column)
    return needed


class _JoinGraph:
    """Adjacency view of the query's equi-join conditions."""

    def __init__(self, aliases: list[str], joins: list[JoinCondition]) -> None:
        self.aliases = list(aliases)
        self.joins = list(joins)
        self.adjacency: dict[str, set[str]] = {a: set() for a in aliases}
        for jc in joins:
            self.adjacency[jc.left.table].add(jc.right.table)
            self.adjacency[jc.right.table].add(jc.left.table)

    def connected_orders(self, first_sorted: list[str], limit: int) -> list[list[str]]:
        """Left-deep orders where each step joins a connected table.

        ``first_sorted`` supplies the preference order (e.g. ascending
        estimated size); the greedy order built from it comes first.
        """
        if len(self.aliases) == 1:
            return [list(self.aliases)]
        orders: list[list[str]] = []
        seen: set[tuple[str, ...]] = set()

        def extend(prefix: list[str], joined: set[str]) -> None:
            if len(orders) >= limit:
                return
            if len(prefix) == len(self.aliases):
                key = tuple(prefix)
                if key not in seen:
                    seen.add(key)
                    orders.append(list(prefix))
                return
            candidates = [a for a in first_sorted if a not in joined]
            connected = [a for a in candidates if self.adjacency[a] & joined]
            for alias in connected or candidates:
                extend(prefix + [alias], joined | {alias})
                if len(orders) >= limit:
                    return

        for start in first_sorted:
            extend([start], {start})
            if len(orders) >= limit:
                break
        return orders


def _scan_node(alias: str, table: str, columns: list[str], predicates: list,
               pushed: bool) -> PhysicalNode:
    """Build FileScan [+ Filter] for one table access."""
    if pushed:
        return FileScan(table=table, alias=alias, columns=columns,
                        pushed_filters=list(predicates))
    scan = FileScan(table=table, alias=alias, columns=columns)
    if predicates:
        return FilterExec(child=scan, predicates=list(predicates))
    return scan


def _join_key(condition: JoinCondition | None, side_aliases: set[str]) -> list[ColumnRef]:
    """The join key column(s) owned by one side of the join."""
    if condition is None:
        return []
    for ref in (condition.left, condition.right):
        if ref.table in side_aliases:
            return [ref]
    raise PlanError(f"join condition {condition} does not touch {side_aliases}")


def _apply_join(left: PhysicalNode, left_aliases: set[str],
                right: PhysicalNode, right_alias: str,
                condition: JoinCondition | None, algorithm: str) -> PhysicalNode:
    """Wire one join step with the operators its algorithm requires."""
    if condition is None:
        return BroadcastNestedLoopJoin(left=left, right=BroadcastExchange(child=right))
    if algorithm == "smj":
        lkey = _join_key(condition, left_aliases)
        rkey = _join_key(condition, {right_alias})
        left_sorted = SortExec(child=ExchangeHashPartition(child=left, keys=lkey), keys=lkey)
        right_sorted = SortExec(child=ExchangeHashPartition(child=right, keys=rkey), keys=rkey)
        return SortMergeJoin(left=left_sorted, right=right_sorted, condition=condition)
    if algorithm == "bhj":
        return BroadcastHashJoin(left=left, right=BroadcastExchange(child=right),
                                 condition=condition)
    raise PlanError(f"unknown join algorithm {algorithm!r}")


def _finish_plan(node: PhysicalNode, stmt: SelectStatement) -> PhysicalNode:
    """Add aggregation / projection / sort / limit above the join tree."""
    if stmt.has_aggregates or stmt.group_by:
        aggs = [i.expr for i in stmt.select_items if isinstance(i.expr, AggregateExpr)]
        node = HashAggregate(child=node, group_by=list(stmt.group_by),
                             aggregates=aggs, mode="partial")
        if stmt.group_by:
            node = ExchangeHashPartition(child=node, keys=list(stmt.group_by))
        else:
            node = ExchangeSinglePartition(child=node)
        node = HashAggregate(child=node, group_by=list(stmt.group_by),
                             aggregates=aggs, mode="final")
    else:
        cols = [i.expr for i in stmt.select_items if isinstance(i.expr, ColumnRef)]
        if cols:
            node = ProjectExec(child=node, columns=cols)
    if stmt.order_by:
        node = SortExec(child=ExchangeSinglePartition(child=node), keys=list(stmt.order_by))
    if stmt.limit is not None:
        node = LimitExec(child=node, count=stmt.limit)
    return node


def _build_plan(query: AnalyzedQuery, catalog: Catalog, order: list[str],
                algorithms: list[str], pushed: bool, label: str) -> PhysicalPlan:
    """Assemble a complete physical plan for one (order, algorithms) choice."""
    stmt = query.statement
    graph = _JoinGraph(query.aliases, stmt.joins)
    columns = required_columns(query)
    per_alias_preds = {
        alias: [p for p in stmt.filters if p.column.table == alias]
        for alias in query.aliases
    }

    def scan_for(alias: str) -> PhysicalNode:
        table = query.table_of(alias)
        # A scan must read at least one column; fall back to the first
        # schema column for aliases the query never references.
        cols = columns[alias] or [catalog.schema(table).column_names[0]]
        return _scan_node(alias, table, cols, per_alias_preds[alias], pushed)

    current = scan_for(order[0])
    joined = {order[0]}
    used: set[int] = set()
    for step, alias in enumerate(order[1:]):
        cond = None
        for jc in graph.joins:
            if id(jc) in used:
                continue
            sides = {jc.left.table, jc.right.table}
            if alias in sides and bool((sides - {alias}) & joined):
                cond = jc
                break
        if cond is not None:
            used.add(id(cond))
        current = _apply_join(current, joined, scan_for(alias), alias,
                              cond, algorithms[step] if cond else "bnlj")
        joined.add(alias)
    root = _finish_plan(current, stmt)
    return PhysicalPlan(root, query.alias_to_table, label=label)


def annotate_estimates(plan: PhysicalPlan, estimator: CardinalityEstimator) -> None:
    """Fill ``est_rows`` / ``est_bytes`` on every node, bottom-up."""

    def width_of(node: PhysicalNode) -> float:
        if isinstance(node, FileScan):
            return max(8.0 * len(node.columns), 8.0)
        kids = node.children
        if isinstance(node, (SortMergeJoin, BroadcastHashJoin, BroadcastNestedLoopJoin)):
            return sum(width_of(k) for k in kids)
        if isinstance(node, (HashAggregate,)):
            return 8.0 * (len(node.group_by) + len(node.aggregates) + 1)
        return width_of(kids[0]) if kids else 8.0

    def visit(node: PhysicalNode) -> float:
        child_rows = [visit(c) for c in node.children]
        if isinstance(node, FileScan):
            rows = estimator.scan_cardinality(node.alias, node.pushed_filters)
        elif isinstance(node, FilterExec):
            rows = child_rows[0] * estimator.conjunction_selectivity(node.predicates)
        elif isinstance(node, (SortMergeJoin, BroadcastHashJoin)):
            rows = estimator.join_cardinality(child_rows[0], child_rows[1], node.condition)
        elif isinstance(node, BroadcastNestedLoopJoin):
            rows = child_rows[0] * child_rows[1]
        elif isinstance(node, HashAggregate):
            if node.mode == "final":
                rows = estimator.aggregate_cardinality(child_rows[0], node.group_by)
            else:
                # Partial aggregation emits up to one group per partition;
                # the exact number is runtime-dependent, bounded by input.
                groups = estimator.aggregate_cardinality(child_rows[0], node.group_by)
                rows = min(child_rows[0], groups * 8.0)
        elif isinstance(node, LimitExec):
            rows = min(child_rows[0], float(node.count))
        else:  # Exchange, Sort, Broadcast, Project: cardinality-preserving
            rows = child_rows[0]
        node.est_rows = float(max(rows, 0.0))
        node.est_bytes = node.est_rows * width_of(node)
        return node.est_rows

    visit(plan.root)


def _algorithm_choices(num_joins: int, default: list[str], cap: int) -> list[list[str]]:
    """Default combo first, then single flips, then all-SMJ / all-BHJ."""
    if num_joins == 0:
        return [[]]
    combos: list[list[str]] = [list(default)]
    for i in range(num_joins):
        flipped = list(default)
        flipped[i] = "bhj" if flipped[i] == "smj" else "smj"
        combos.append(flipped)
    for uniform in (["smj"] * num_joins, ["bhj"] * num_joins):
        combos.append(uniform)
    unique: list[list[str]] = []
    for combo in combos:
        if combo not in unique:
            unique.append(combo)
    return unique[:cap]


def enumerate_plans(
    query: AnalyzedQuery,
    catalog: Catalog,
    config: EnumeratorConfig | None = None,
) -> list[PhysicalPlan]:
    """Generate candidate physical plans, most Catalyst-like first.

    Every returned plan has its cardinality estimates annotated. The
    first plan is exactly :func:`default_plan`'s choice.
    """
    config = config or EnumeratorConfig()
    estimator = CardinalityEstimator(catalog, query.alias_to_table)
    stmt = query.statement
    graph = _JoinGraph(query.aliases, stmt.joins)

    per_alias_rows = {
        alias: estimator.scan_cardinality(
            alias, [p for p in stmt.filters if p.column.table == alias])
        for alias in query.aliases
    }
    size_order = sorted(query.aliases, key=lambda a: per_alias_rows[a])
    # Prefer starting from the *largest* filtered table (Spark streams the
    # big fact table and broadcasts/builds on smaller ones).
    probe_first = sorted(query.aliases, key=lambda a: -per_alias_rows[a])
    orders = graph.connected_orders(probe_first, config.max_join_orders)

    plans: list[PhysicalPlan] = []
    signatures: set[str] = set()
    for order_idx, order in enumerate(orders):
        default_algos = _default_algorithms(query, order, estimator,
                                            config.broadcast_threshold)
        combos = _algorithm_choices(len(order) - 1, default_algos,
                                    cap=max(config.max_plans - len(plans), 1))
        scan_styles = [True]
        if config.include_unpushed_scan_variant:
            scan_styles.append(False)
        for algos, pushed in itertools.product(combos, scan_styles):
            label = (f"order{order_idx}-" + ("-".join(algos) or "scan")
                     + ("-pushed" if pushed else "-filter"))
            plan = _build_plan(query, catalog, order, algos, pushed, label)
            sig = plan.signature()
            if sig in signatures:
                continue
            signatures.add(sig)
            annotate_estimates(plan, estimator)
            plans.append(plan)
            if len(plans) >= config.max_plans:
                return plans
    return plans


def _default_algorithms(query: AnalyzedQuery, order: list[str],
                        estimator: CardinalityEstimator,
                        threshold: float,
                        use_filter_stats: bool = True) -> list[str]:
    """Catalyst's rule: broadcast when the build side is small enough.

    ``use_filter_stats=False`` reproduces Spark *without* CBO, where a
    filtered relation's ``sizeInBytes`` defaults to the unfiltered base
    size — the realistic weakness of the rule-based default.
    """
    stmt = query.statement
    algos: list[str] = []
    for alias in order[1:]:
        if use_filter_stats:
            preds = [p for p in stmt.filters if p.column.table == alias]
            rows = estimator.scan_cardinality(alias, preds)
        else:
            rows = estimator.table_rows(alias)
        build_bytes = rows * estimator.row_width(alias)
        algos.append("bhj" if build_bytes <= threshold else "smj")
    return algos


def default_plan(query: AnalyzedQuery, catalog: Catalog,
                 config: EnumeratorConfig | None = None) -> PhysicalPlan:
    """The plan a rule-based Catalyst-style optimizer would pick."""
    config = config or EnumeratorConfig()
    plans = enumerate_plans(query, catalog, EnumeratorConfig(
        max_plans=1,
        max_join_orders=1,
        broadcast_threshold=config.broadcast_threshold,
        include_unpushed_scan_variant=False,
    ))
    return plans[0]


def spark_default_plan(query: AnalyzedQuery, catalog: Catalog,
                       config: EnumeratorConfig | None = None) -> PhysicalPlan:
    """The plan Spark's *non-CBO* rule engine would pick.

    Identical to :func:`default_plan` except the broadcast decision
    sees unfiltered base-relation sizes (Spark's ``sizeInBytes``
    without cost-based optimization) — the realistic weakness the
    paper's Fig. 1 compares against.
    """
    config = config or EnumeratorConfig()
    estimator = CardinalityEstimator(catalog, query.alias_to_table)
    stmt = query.statement
    graph = _JoinGraph(query.aliases, stmt.joins)
    per_alias_rows = {
        alias: estimator.scan_cardinality(
            alias, [p for p in stmt.filters if p.column.table == alias])
        for alias in query.aliases
    }
    probe_first = sorted(query.aliases, key=lambda a: -per_alias_rows[a])
    order = graph.connected_orders(probe_first, 1)[0]
    algos = _default_algorithms(query, order, estimator,
                                SPARK_NON_CBO_THRESHOLD,
                                use_filter_stats=False)
    plan = _build_plan(query, catalog, order, algos, True, "spark-default")
    annotate_estimates(plan, estimator)
    return plan
