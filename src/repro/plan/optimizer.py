"""Rule-based logical optimization (Catalyst's optimize phase).

The builder already produces reasonably-placed operators; these rules
normalize arbitrary logical plans so the enumerator can assume:

* filters sit directly on their scans (:class:`PushDownFilters`);
* scans read only needed columns (:class:`PruneColumns`);
* provably-empty or always-true predicates are folded
  (:class:`SimplifyFilters`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlanError
from repro.plan.logical import (
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
)
from repro.sql.ast import AggregateExpr, BetweenPredicate, ColumnRef

__all__ = ["Rule", "PushDownFilters", "SimplifyFilters", "PruneColumns", "optimize"]


class Rule:
    """A logical-plan rewrite rule."""

    name = "rule"

    def apply(self, plan: LogicalNode) -> LogicalNode:
        raise NotImplementedError


def _rebuild(node: LogicalNode, new_children: list[LogicalNode]) -> LogicalNode:
    """Return a copy of ``node`` with replaced children."""
    if isinstance(node, LogicalScan):
        return node
    if isinstance(node, LogicalFilter):
        return LogicalFilter(child=new_children[0], predicates=list(node.predicates))
    if isinstance(node, LogicalProject):
        return LogicalProject(child=new_children[0], columns=list(node.columns))
    if isinstance(node, LogicalJoin):
        return LogicalJoin(left=new_children[0], right=new_children[1],
                           condition=node.condition)
    if isinstance(node, LogicalAggregate):
        return LogicalAggregate(child=new_children[0], group_by=list(node.group_by),
                                aggregates=list(node.aggregates))
    if isinstance(node, LogicalSort):
        return LogicalSort(child=new_children[0], keys=list(node.keys))
    if isinstance(node, LogicalLimit):
        return LogicalLimit(child=new_children[0], count=node.count)
    raise PlanError(f"cannot rebuild node of type {type(node).__name__}")


def _transform_up(plan: LogicalNode, fn) -> LogicalNode:
    """Apply ``fn`` to every node, children first."""
    new_children = [_transform_up(c, fn) for c in plan.children]
    if new_children:
        plan = _rebuild(plan, new_children)
    return fn(plan)


@dataclass
class PushDownFilters(Rule):
    """Move single-table filter predicates below joins onto their scans."""

    name = "push-down-filters"

    def apply(self, plan: LogicalNode) -> LogicalNode:
        def push(node: LogicalNode) -> LogicalNode:
            if not isinstance(node, LogicalFilter):
                return node
            child = node.child
            if not isinstance(child, LogicalJoin):
                return node
            left_tables = child.left.tables()
            right_tables = child.right.tables()
            stay, go_left, go_right = [], [], []
            for pred in node.predicates:
                table = getattr(pred.column, "table", None) if hasattr(pred, "column") else None
                if table in left_tables:
                    go_left.append(pred)
                elif table in right_tables:
                    go_right.append(pred)
                else:
                    stay.append(pred)
            if not go_left and not go_right:
                return node
            new_left = LogicalFilter(child=child.left, predicates=go_left) if go_left else child.left
            new_right = LogicalFilter(child=child.right, predicates=go_right) if go_right else child.right
            new_join = LogicalJoin(left=new_left, right=new_right, condition=child.condition)
            if stay:
                return LogicalFilter(child=new_join, predicates=stay)
            return new_join

        # Iterate to fixpoint: a filter may need to sink through several joins.
        for _ in range(16):
            new_plan = _transform_up(plan, push)
            if new_plan.describe() == plan.describe():
                return new_plan
            plan = new_plan
        return plan


@dataclass
class SimplifyFilters(Rule):
    """Constant-fold trivial predicates (e.g. BETWEEN with low > high)."""

    name = "simplify-filters"

    def apply(self, plan: LogicalNode) -> LogicalNode:
        def simplify(node: LogicalNode) -> LogicalNode:
            if not isinstance(node, LogicalFilter):
                return node
            kept = []
            for pred in node.predicates:
                if isinstance(pred, BetweenPredicate):
                    lo, hi = pred.low.value, pred.high.value
                    if not pred.low.is_string and float(lo) > float(hi):
                        # Contradiction: keep it (it filters everything);
                        # real systems replace the subtree with an empty
                        # relation, which our executor handles naturally.
                        kept.append(pred)
                        continue
                kept.append(pred)
            if not kept:
                return node.child
            return LogicalFilter(child=node.child, predicates=kept)

        return _transform_up(plan, simplify)


@dataclass
class PruneColumns(Rule):
    """Record per-scan required columns (join keys + predicates + output)."""

    name = "prune-columns"

    def apply(self, plan: LogicalNode) -> LogicalNode:
        needed: dict[str, set[str]] = {}

        def note(ref) -> None:
            if isinstance(ref, ColumnRef) and ref.table is not None:
                needed.setdefault(ref.table, set()).add(ref.column)

        def collect(node: LogicalNode) -> None:
            if isinstance(node, LogicalFilter):
                for pred in node.predicates:
                    if hasattr(pred, "column"):
                        note(pred.column)
                    if hasattr(pred, "left"):
                        note(pred.left)
                        note(pred.right)
            elif isinstance(node, LogicalJoin) and node.condition is not None:
                note(node.condition.left)
                note(node.condition.right)
            elif isinstance(node, LogicalProject):
                for col in node.columns:
                    note(col)
            elif isinstance(node, LogicalAggregate):
                for col in node.group_by:
                    note(col)
                for agg in node.aggregates:
                    if isinstance(agg, AggregateExpr):
                        note(agg.argument)
            elif isinstance(node, LogicalSort):
                for key in node.keys:
                    note(key.column)
            for child in node.children:
                collect(child)

        collect(plan)

        def set_columns(node: LogicalNode) -> LogicalNode:
            if isinstance(node, LogicalScan):
                return LogicalScan(table=node.table, alias=node.alias,
                                   columns=sorted(needed.get(node.alias, set())))
            return node

        return _transform_up(plan, set_columns)


DEFAULT_RULES: list[Rule] = [PushDownFilters(), SimplifyFilters(), PruneColumns()]


def optimize(plan: LogicalNode, rules: list[Rule] | None = None) -> LogicalNode:
    """Run the rule pipeline over a logical plan."""
    for rule in rules if rules is not None else DEFAULT_RULES:
        plan = rule.apply(plan)
    return plan
