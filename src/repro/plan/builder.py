"""Analyzer + logical plan builder (AST → logical plan).

Mirrors Catalyst's analysis phase: resolves aliases against the catalog,
qualifies bare column references, type-checks predicates, and emits an
unoptimized logical plan (scans → filters → left-deep joins in FROM
order → aggregate/sort/limit).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.data.catalog import Catalog
from repro.data.schema import DataType
from repro.errors import AnalysisError
from repro.plan.logical import (
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
)
from repro.sql.ast import (
    AggregateExpr,
    AggregateFunc,
    BetweenPredicate,
    ColumnRef,
    Comparison,
    JoinCondition,
    LikePredicate,
    OrderItem,
    SelectStatement,
)

__all__ = ["AnalyzedQuery", "analyze", "build_logical_plan"]


@dataclass
class AnalyzedQuery:
    """A validated query with every column reference fully qualified.

    ``alias_to_table`` maps FROM-list names (alias or bare table name)
    to catalog table names; all predicates/joins below reference columns
    as ``ColumnRef(column, alias)``.
    """

    statement: SelectStatement
    alias_to_table: dict[str, str]

    @property
    def aliases(self) -> list[str]:
        """FROM-list names in declaration order."""
        return [t.name for t in self.statement.tables]

    def table_of(self, alias: str) -> str:
        """Catalog table name behind an alias."""
        if alias not in self.alias_to_table:
            raise AnalysisError(f"unknown table alias {alias!r}")
        return self.alias_to_table[alias]


def _qualify(ref: ColumnRef, alias_to_table: dict[str, str], catalog: Catalog) -> ColumnRef:
    """Resolve a column reference to a specific FROM-list alias."""
    if ref.table is not None:
        if ref.table not in alias_to_table:
            raise AnalysisError(f"unknown table alias {ref.table!r} in {ref}")
        table = alias_to_table[ref.table]
        if not catalog.schema(table).has_column(ref.column):
            raise AnalysisError(f"table {table!r} has no column {ref.column!r}")
        return ref
    owners = [a for a, t in alias_to_table.items()
              if catalog.schema(t).has_column(ref.column)]
    if not owners:
        raise AnalysisError(f"column {ref.column!r} not found in any FROM table")
    if len(owners) > 1:
        raise AnalysisError(f"column {ref.column!r} is ambiguous across {sorted(owners)}")
    return ColumnRef(column=ref.column, table=owners[0])


def _check_predicate_type(pred, alias_to_table: dict[str, str], catalog: Catalog) -> None:
    """Reject type mismatches like numeric comparisons on string columns."""
    col = pred.column
    table = alias_to_table[col.table]
    dtype = catalog.schema(table).column(col.column).dtype
    if isinstance(pred, Comparison):
        literal_is_string = pred.value.is_string
        if literal_is_string != (dtype == DataType.STRING):
            raise AnalysisError(
                f"type mismatch: {col} is {dtype.value} but literal is "
                f"{'string' if literal_is_string else 'numeric'}"
            )
    elif isinstance(pred, BetweenPredicate):
        if dtype == DataType.STRING:
            raise AnalysisError(f"BETWEEN on string column {col} is not supported")
    elif isinstance(pred, LikePredicate):
        if dtype != DataType.STRING:
            raise AnalysisError(f"LIKE on non-string column {col}")


def analyze(statement: SelectStatement, catalog: Catalog) -> AnalyzedQuery:
    """Validate ``statement`` against ``catalog`` and qualify all columns."""
    alias_to_table: dict[str, str] = {}
    for ref in statement.tables:
        if not catalog.has_table(ref.table):
            raise AnalysisError(f"unknown table {ref.table!r}")
        alias_to_table[ref.name] = ref.table

    def fix_col(ref: ColumnRef) -> ColumnRef:
        return _qualify(ref, alias_to_table, catalog)

    filters = []
    for pred in statement.filters:
        pred = replace(pred, column=fix_col(pred.column))
        _check_predicate_type(pred, alias_to_table, catalog)
        filters.append(pred)

    joins = []
    for join in statement.joins:
        left, right = fix_col(join.left), fix_col(join.right)
        if left.table == right.table:
            raise AnalysisError(f"join condition {join} references a single table")
        joins.append(JoinCondition(left=left, right=right))

    select_items = []
    for item in statement.select_items:
        expr = item.expr
        if isinstance(expr, AggregateExpr):
            if expr.argument is not None:
                arg = fix_col(expr.argument)
                if expr.func != AggregateFunc.COUNT:
                    table = alias_to_table[arg.table]
                    dtype = catalog.schema(table).column(arg.column).dtype
                    if dtype == DataType.STRING and expr.func in (
                            AggregateFunc.SUM, AggregateFunc.AVG):
                        raise AnalysisError(f"{expr.func.value}() on string column {arg}")
                expr = AggregateExpr(expr.func, arg)
        else:
            expr = fix_col(expr)
        select_items.append(replace(item, expr=expr))

    group_by = [fix_col(c) for c in statement.group_by]
    order_by = [OrderItem(column=fix_col(o.column), descending=o.descending)
                for o in statement.order_by]

    if statement.has_aggregates:
        for item in select_items:
            if isinstance(item.expr, ColumnRef) and item.expr not in group_by:
                raise AnalysisError(
                    f"non-aggregated column {item.expr} must appear in GROUP BY"
                )

    analyzed = SelectStatement(
        select_items=select_items,
        tables=list(statement.tables),
        filters=filters,
        joins=joins,
        group_by=group_by,
        order_by=order_by,
        limit=statement.limit,
    )
    return AnalyzedQuery(statement=analyzed, alias_to_table=alias_to_table)


def build_logical_plan(query: AnalyzedQuery) -> LogicalNode:
    """Lower an analyzed query to an unoptimized logical plan.

    Joins are taken in FROM order (left-deep); the optimizer and the
    physical enumerator may reorder them later.
    """
    stmt = query.statement
    # One scan (+ its filters) per FROM entry.
    subplans: dict[str, LogicalNode] = {}
    for ref in stmt.tables:
        node: LogicalNode = LogicalScan(table=ref.table, alias=ref.name)
        preds = [p for p in stmt.filters if p.column.table == ref.name]
        if preds:
            node = LogicalFilter(child=node, predicates=preds)
        subplans[ref.name] = node

    # Left-deep joins in FROM order, picking an applicable condition for
    # each step; genuinely disconnected tables become cross joins.
    aliases = query.aliases
    current = subplans[aliases[0]]
    joined = {aliases[0]}
    remaining_conditions = list(stmt.joins)
    for alias in aliases[1:]:
        cond = None
        for jc in remaining_conditions:
            sides = {jc.left.table, jc.right.table}
            if alias in sides and (sides - {alias}) <= joined:
                cond = jc
                break
        if cond is not None:
            remaining_conditions.remove(cond)
        current = LogicalJoin(left=current, right=subplans[alias], condition=cond)
        joined.add(alias)
    # Any leftover conditions become post-join filters... they should not
    # exist for connected queries; apply them as additional joins merged in.
    for jc in remaining_conditions:
        current = LogicalFilter(child=current, predicates=[jc])

    if stmt.has_aggregates or stmt.group_by:
        aggs = [i.expr for i in stmt.select_items if isinstance(i.expr, AggregateExpr)]
        current = LogicalAggregate(child=current, group_by=stmt.group_by, aggregates=aggs)
    else:
        cols = [i.expr for i in stmt.select_items if isinstance(i.expr, ColumnRef)]
        current = LogicalProject(child=current, columns=cols)

    if stmt.order_by:
        current = LogicalSort(child=current, keys=stmt.order_by)
    if stmt.limit is not None:
        current = LogicalLimit(child=current, count=stmt.limit)
    return current
