"""Physical plan operators with Spark SQL's operator vocabulary.

A physical plan is a tree of :class:`PhysicalNode` objects. Each node
renders itself as the *execution statements* Spark shows in its plan
output (e.g. ``FileScan``, ``Filter``, ``SortMergeJoin``) — these
strings are what the word2vec node-semantic encoder consumes — and
carries cardinality annotations:

* ``est_rows`` / ``est_bytes`` — optimizer estimates (set by
  :func:`annotate_estimates`);
* ``obs_rows`` / ``obs_bytes`` — true values observed by the execution
  engine (set by :func:`repro.engine.executor.execute_plan`); the
  cluster simulator consumes these.

Node ordering follows the paper: nodes are numbered bottom-up in
execution order (post-order traversal), children before parents.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import PlanError
from repro.sql.ast import (
    AggregateExpr,
    ColumnRef,
    Comparison,
    BetweenPredicate,
    InPredicate,
    IsNullPredicate,
    JoinCondition,
    LikePredicate,
    OrderItem,
)

__all__ = [
    "PhysicalNode",
    "FileScan",
    "FilterExec",
    "ProjectExec",
    "SortExec",
    "ExchangeHashPartition",
    "ExchangeSinglePartition",
    "BroadcastExchange",
    "SortMergeJoin",
    "BroadcastHashJoin",
    "BroadcastNestedLoopJoin",
    "HashAggregate",
    "SortAggregate",
    "LimitExec",
    "PhysicalPlan",
]


def _render_predicate(pred) -> str:
    """Spark-style rendering, e.g. ``(isnotnull(x) && (x > 2))``."""
    col = f"{pred.column.table}.{pred.column.column}"
    if isinstance(pred, Comparison):
        return f"(isnotnull({col}) && ({col} {pred.op.value} {pred.value}))"
    if isinstance(pred, BetweenPredicate):
        return f"(isnotnull({col}) && ({col} >= {pred.low}) && ({col} <= {pred.high}))"
    if isinstance(pred, InPredicate):
        vals = ",".join(str(v) for v in pred.values)
        return f"({col} IN ({vals}))"
    if isinstance(pred, LikePredicate):
        neg = "NOT " if pred.negated else ""
        return f"({neg}{col} LIKE '{pred.pattern}')"
    if isinstance(pred, IsNullPredicate):
        return f"(isnotnull({col}))" if pred.negated else f"(isnull({col}))"
    return str(pred)


@dataclass
class PhysicalNode:
    """Base physical operator."""

    est_rows: float = field(default=0.0, init=False)
    est_bytes: float = field(default=0.0, init=False)
    obs_rows: float | None = field(default=None, init=False)
    obs_bytes: float | None = field(default=None, init=False)

    @property
    def op_name(self) -> str:
        """Operator name as Spark prints it."""
        return type(self).__name__.removesuffix("Exec")

    @property
    def children(self) -> list["PhysicalNode"]:
        """Child operators."""
        return []

    def statements(self) -> list[str]:
        """Execution statements describing this node (for the encoder)."""
        return [self.op_name]

    @property
    def rows(self) -> float:
        """Observed rows when available, else the estimate."""
        return self.obs_rows if self.obs_rows is not None else self.est_rows

    @property
    def bytes(self) -> float:
        """Observed bytes when available, else the estimate."""
        return self.obs_bytes if self.obs_bytes is not None else self.est_bytes

    def describe(self, indent: int = 0) -> str:
        """EXPLAIN-style rendering of the subtree."""
        info = f"  (est_rows={self.est_rows:.0f}"
        if self.obs_rows is not None:
            info += f", obs_rows={self.obs_rows:.0f}"
        info += ")"
        lines = ["  " * indent + "; ".join(self.statements()) + info]
        for child in self.children:
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)


@dataclass
class FileScan(PhysicalNode):
    """Columnar file scan with optional pushed-down filters."""

    table: str
    alias: str
    columns: list[str] = field(default_factory=list)
    pushed_filters: list = field(default_factory=list)

    @property
    def op_name(self) -> str:
        return "FileScan"

    def statements(self) -> list[str]:
        cols = ", ".join(f"{self.alias}.{c}" for c in self.columns)
        stmts = [f"FileScan {self.table} ({cols})"]
        if self.pushed_filters:
            conds = " && ".join(_render_predicate(p) for p in self.pushed_filters)
            stmts.append(f"PushedFilters {conds}")
        return stmts


@dataclass
class FilterExec(PhysicalNode):
    """Row filter applied after a scan (non-pushed predicates)."""

    child: PhysicalNode
    predicates: list = field(default_factory=list)

    @property
    def children(self) -> list[PhysicalNode]:
        return [self.child]

    def statements(self) -> list[str]:
        conds = " && ".join(_render_predicate(p) for p in self.predicates)
        return [f"Filter {conds}"]


@dataclass
class ProjectExec(PhysicalNode):
    """Column projection."""

    child: PhysicalNode
    columns: list[ColumnRef] = field(default_factory=list)

    @property
    def children(self) -> list[PhysicalNode]:
        return [self.child]

    def statements(self) -> list[str]:
        return ["Project [" + ", ".join(str(c) for c in self.columns) + "]"]


@dataclass
class SortExec(PhysicalNode):
    """Per-partition sort (below SMJ or for ORDER BY)."""

    child: PhysicalNode
    keys: list = field(default_factory=list)  # ColumnRef or OrderItem

    @property
    def children(self) -> list[PhysicalNode]:
        return [self.child]

    def statements(self) -> list[str]:
        rendered = []
        for key in self.keys:
            if isinstance(key, OrderItem):
                rendered.append(f"{key.column} {'DESC' if key.descending else 'ASC'}")
            else:
                rendered.append(f"{key} ASC")
        return ["Sort [" + ", ".join(rendered) + "]"]


@dataclass
class ExchangeHashPartition(PhysicalNode):
    """Shuffle: hash-partition rows by key across executors."""

    child: PhysicalNode
    keys: list[ColumnRef] = field(default_factory=list)

    @property
    def op_name(self) -> str:
        return "ExchangeHashPartition"

    @property
    def children(self) -> list[PhysicalNode]:
        return [self.child]

    def statements(self) -> list[str]:
        keys = ", ".join(str(k) for k in self.keys)
        return [f"Exchange hashpartitioning({keys})"]


@dataclass
class ExchangeSinglePartition(PhysicalNode):
    """Shuffle everything to a single partition (global aggregation)."""

    child: PhysicalNode

    @property
    def op_name(self) -> str:
        return "ExchangeSinglePartition"

    @property
    def children(self) -> list[PhysicalNode]:
        return [self.child]

    def statements(self) -> list[str]:
        return ["Exchange SinglePartition"]


@dataclass
class BroadcastExchange(PhysicalNode):
    """Broadcast the child relation to every executor."""

    child: PhysicalNode

    @property
    def children(self) -> list[PhysicalNode]:
        return [self.child]

    def statements(self) -> list[str]:
        return ["BroadcastExchange HashedRelationBroadcastMode"]


@dataclass
class SortMergeJoin(PhysicalNode):
    """Sort-merge join; both inputs must be sorted on the join key."""

    left: PhysicalNode
    right: PhysicalNode
    condition: JoinCondition | None = None

    @property
    def children(self) -> list[PhysicalNode]:
        return [self.left, self.right]

    def statements(self) -> list[str]:
        cond = str(self.condition) if self.condition else "true"
        return [f"SortMergeJoin [{cond}] Inner"]


@dataclass
class BroadcastHashJoin(PhysicalNode):
    """Hash join with a broadcast build side (the right child)."""

    left: PhysicalNode
    right: PhysicalNode
    condition: JoinCondition | None = None

    @property
    def children(self) -> list[PhysicalNode]:
        return [self.left, self.right]

    def statements(self) -> list[str]:
        cond = str(self.condition) if self.condition else "true"
        return [f"BroadcastHashJoin [{cond}] Inner BuildRight"]


@dataclass
class BroadcastNestedLoopJoin(PhysicalNode):
    """Nested-loop join for cross joins (no equi-condition)."""

    left: PhysicalNode
    right: PhysicalNode
    condition: JoinCondition | None = None

    @property
    def children(self) -> list[PhysicalNode]:
        return [self.left, self.right]

    def statements(self) -> list[str]:
        return ["BroadcastNestedLoopJoin BuildRight Cross"]


@dataclass
class HashAggregate(PhysicalNode):
    """Hash-based aggregation (partial below an exchange, final above)."""

    child: PhysicalNode
    group_by: list[ColumnRef] = field(default_factory=list)
    aggregates: list[AggregateExpr] = field(default_factory=list)
    mode: str = "final"  # "partial" | "final"

    def __post_init__(self) -> None:
        if self.mode not in ("partial", "final"):
            raise PlanError(f"invalid aggregate mode {self.mode!r}")

    @property
    def children(self) -> list[PhysicalNode]:
        return [self.child]

    def statements(self) -> list[str]:
        keys = ", ".join(str(c) for c in self.group_by)
        aggs = ", ".join(f"{self.mode}_{a}" for a in self.aggregates)
        return [f"HashAggregate(keys=[{keys}], functions=[{aggs}])"]


@dataclass
class SortAggregate(PhysicalNode):
    """Sort-based aggregation (used when hash tables would not fit)."""

    child: PhysicalNode
    group_by: list[ColumnRef] = field(default_factory=list)
    aggregates: list[AggregateExpr] = field(default_factory=list)
    mode: str = "final"

    @property
    def children(self) -> list[PhysicalNode]:
        return [self.child]

    def statements(self) -> list[str]:
        keys = ", ".join(str(c) for c in self.group_by)
        aggs = ", ".join(f"{self.mode}_{a}" for a in self.aggregates)
        return [f"SortAggregate(keys=[{keys}], functions=[{aggs}])"]


@dataclass
class LimitExec(PhysicalNode):
    """Global limit."""

    child: PhysicalNode
    count: int = 0

    @property
    def children(self) -> list[PhysicalNode]:
        return [self.child]

    def statements(self) -> list[str]:
        return [f"GlobalLimit {self.count}"]


class PhysicalPlan:
    """A complete physical plan: root node + per-query metadata.

    ``nodes()`` returns operators in execution order (post-order), the
    ordering both the structure encoder and the simulator rely on.
    """

    _ids = itertools.count()

    def __init__(self, root: PhysicalNode, alias_to_table: dict[str, str],
                 label: str = "") -> None:
        self.root = root
        self.alias_to_table = dict(alias_to_table)
        self.label = label
        self.plan_id = next(PhysicalPlan._ids)

    def nodes(self) -> list[PhysicalNode]:
        """Post-order (bottom-up execution order) list of operators."""
        out: list[PhysicalNode] = []

        def visit(node: PhysicalNode) -> None:
            for child in node.children:
                visit(child)
            out.append(node)

        visit(self.root)
        return out

    def node_index(self) -> dict[int, int]:
        """Map ``id(node)`` → position in :meth:`nodes` order."""
        return {id(node): i for i, node in enumerate(self.nodes())}

    def edges(self) -> list[tuple[int, int]]:
        """(child_index, parent_index) pairs in execution order."""
        index = self.node_index()
        out: list[tuple[int, int]] = []
        for node in self.nodes():
            for child in node.children:
                out.append((index[id(child)], index[id(node)]))
        return out

    @property
    def num_nodes(self) -> int:
        """Number of operators in the plan."""
        return len(self.nodes())

    def operator_counts(self) -> dict[str, int]:
        """Histogram of operator names (useful for tests/debugging)."""
        counts: dict[str, int] = {}
        for node in self.nodes():
            counts[node.op_name] = counts.get(node.op_name, 0) + 1
        return counts

    def signature(self) -> str:
        """Stable string identifying the plan's structure and statements."""
        parts = []
        for i, node in enumerate(self.nodes()):
            parts.append(f"{i}:{';'.join(node.statements())}")
        return "|".join(parts)

    def describe(self) -> str:
        """EXPLAIN-style rendering."""
        header = f"PhysicalPlan {self.label or self.plan_id}"
        return header + "\n" + self.root.describe(1)

    def __repr__(self) -> str:
        return f"PhysicalPlan(label={self.label!r}, nodes={self.num_nodes})"
