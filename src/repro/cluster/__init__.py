"""Spark cluster simulator: resources, stage model, cost functions."""

from repro.cluster.costfuncs import OperatorCost, SimulatorParams, operator_cost
from repro.cluster.resources import (
    MAX_CLUSTER,
    PAPER_CLUSTER,
    RESOURCE_FEATURE_NAMES,
    ResourceProfile,
    ResourceSampler,
)
from repro.cluster.simulator import SimulationResult, SparkSimulator, StageTime
from repro.cluster.stages import Stage, split_stages

__all__ = [
    "ResourceProfile",
    "ResourceSampler",
    "PAPER_CLUSTER",
    "MAX_CLUSTER",
    "RESOURCE_FEATURE_NAMES",
    "SimulatorParams",
    "OperatorCost",
    "operator_cost",
    "Stage",
    "split_stages",
    "SparkSimulator",
    "SimulationResult",
    "StageTime",
]
