"""Cluster resource profiles (the paper's Table I configuration space).

A :class:`ResourceProfile` captures everything the resource manager
allocates to one Spark application: cluster shape (nodes, cores), the
executors granted (count, cores each, memory each), and the I/O
throughputs between/within nodes. :class:`ResourceSampler` draws the
varied resource states the paper collects training data under.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import ResourceError

__all__ = ["ResourceProfile", "ResourceSampler", "PAPER_CLUSTER", "MAX_CLUSTER", "RESOURCE_FEATURE_NAMES"]

RESOURCE_FEATURE_NAMES = [
    "node",
    "core",
    "executor",
    "e_core",
    "e_memory_gb",
    "n_throughput_mbps",
    "d_throughput_mbps",
]


@dataclass(frozen=True)
class ResourceProfile:
    """One concrete resource allocation (paper Table I).

    Parameters
    ----------
    nodes:
        Number of worker nodes in the cluster.
    cores_per_node:
        Physical cores per node.
    executors:
        Executor processes granted to the application.
    executor_cores:
        Concurrent task slots per executor ("E-Core").
    executor_memory_gb:
        Heap per executor in GB ("E-Memory").
    network_throughput_mbps:
        Inter-node network throughput ("N-throughput"), MB/s.
    disk_throughput_mbps:
        Per-node disk read/write throughput ("D-throughput"), MB/s.
    """

    nodes: int = 4
    cores_per_node: int = 4
    executors: int = 2
    executor_cores: int = 2
    executor_memory_gb: float = 4.0
    network_throughput_mbps: float = 120.0
    disk_throughput_mbps: float = 150.0

    def __post_init__(self) -> None:
        if self.nodes < 1 or self.cores_per_node < 1:
            raise ResourceError("cluster must have at least one node and core")
        if self.executors < 1 or self.executor_cores < 1:
            raise ResourceError("application needs at least one executor and core")
        if self.executor_memory_gb <= 0:
            raise ResourceError("executor memory must be positive")
        if self.network_throughput_mbps <= 0 or self.disk_throughput_mbps <= 0:
            raise ResourceError("throughputs must be positive")

    # -- derived quantities -------------------------------------------------
    @property
    def physical_cores(self) -> int:
        """Total physical cores in the cluster."""
        return self.nodes * self.cores_per_node

    @property
    def task_slots(self) -> int:
        """Concurrent task slots, capped by physical cores."""
        return min(self.executors * self.executor_cores, self.physical_cores)

    @property
    def oversubscribed(self) -> bool:
        """Whether requested slots exceed physical cores."""
        return self.executors * self.executor_cores > self.physical_cores

    @property
    def executor_memory_bytes(self) -> float:
        """Executor heap in bytes."""
        return self.executor_memory_gb * 1e9

    @property
    def execution_memory_per_task(self) -> float:
        """Unified-memory execution budget per concurrent task, bytes.

        Spark reserves ~40% of the heap for storage/internal use; the
        rest is shared by the executor's concurrent tasks.
        """
        return 0.6 * self.executor_memory_bytes / self.executor_cores

    @property
    def total_memory_gb(self) -> float:
        """Memory granted to the application across executors."""
        return self.executors * self.executor_memory_gb

    # -- feature extraction (paper eq. 1) --------------------------------
    def as_features(self, maxima: "ResourceProfile | None" = None) -> np.ndarray:
        """Normalize each resource into [0, 1] (paper eq. 1).

        ``maxima`` is the profile describing the system's maximum
        available resources; defaults to :data:`PAPER_CLUSTER` limits.
        """
        maxima = maxima or MAX_CLUSTER
        raw = np.array([
            self.nodes, self.cores_per_node, self.executors, self.executor_cores,
            self.executor_memory_gb, self.network_throughput_mbps,
            self.disk_throughput_mbps,
        ], dtype=np.float64)
        caps = np.array([
            maxima.nodes, maxima.cores_per_node, maxima.executors,
            maxima.executor_cores, maxima.executor_memory_gb,
            maxima.network_throughput_mbps, maxima.disk_throughput_mbps,
        ], dtype=np.float64)
        return np.clip(raw / caps, 0.0, 1.0)

    def with_memory(self, memory_gb: float) -> "ResourceProfile":
        """Copy with a different executor memory (used by sweeps)."""
        return replace(self, executor_memory_gb=memory_gb)

    def __str__(self) -> str:
        return (f"{self.executors}x(cores={self.executor_cores}, "
                f"mem={self.executor_memory_gb:g}GB) on {self.nodes}x"
                f"{self.cores_per_node}c nodes")


#: The cloud cluster of the paper's Table III (4 nodes, 4 cores, 16 GB).
PAPER_CLUSTER = ResourceProfile(
    nodes=4, cores_per_node=4, executors=2, executor_cores=2,
    executor_memory_gb=4.0, network_throughput_mbps=120.0,
    disk_throughput_mbps=150.0,
)

#: Normalization caps: "the maximum available r_j of the system".
MAX_CLUSTER = ResourceProfile(
    nodes=8, cores_per_node=8, executors=8, executor_cores=8,
    executor_memory_gb=16.0, network_throughput_mbps=1000.0,
    disk_throughput_mbps=500.0,
)


@dataclass
class ResourceSampler:
    """Samples the varied resource states queries run under in the cloud.

    Mirrors the paper's data collection: "To approximate the variation
    of resources in a real scenario, we run all queries in multiple
    resource states." Executor count, executor cores, memory, and the
    throughputs all vary within realistic ranges of the base cluster.
    """

    base: ResourceProfile = field(default_factory=lambda: PAPER_CLUSTER)
    executor_choices: tuple[int, ...] = (1, 2, 3, 4)
    core_choices: tuple[int, ...] = (1, 2, 4)
    memory_choices_gb: tuple[float, ...] = (1.0, 2.0, 3.0, 4.0, 5.0, 6.0)
    throughput_jitter: float = 0.25

    def sample(self, rng: np.random.Generator) -> ResourceProfile:
        """Draw one resource state."""
        jitter = lambda v: float(v * rng.uniform(1.0 - self.throughput_jitter,
                                                 1.0 + self.throughput_jitter))
        return ResourceProfile(
            nodes=self.base.nodes,
            cores_per_node=self.base.cores_per_node,
            executors=int(rng.choice(self.executor_choices)),
            executor_cores=int(rng.choice(self.core_choices)),
            executor_memory_gb=float(rng.choice(self.memory_choices_gb)),
            network_throughput_mbps=jitter(self.base.network_throughput_mbps),
            disk_throughput_mbps=jitter(self.base.disk_throughput_mbps),
        )

    def sample_many(self, n: int, rng: np.random.Generator) -> list[ResourceProfile]:
        """Draw ``n`` resource states."""
        return [self.sample(rng) for _ in range(n)]
