"""Per-operator cost primitives for the cluster simulator.

Each function converts an operator's data volume (rows/bytes, observed
by the execution engine) plus the resource profile into low-level work:
CPU seconds, disk bytes, network bytes, and per-task memory demand.
The simulator aggregates these per stage and converts them to time.

The parameters are calibrated to produce *plausible Spark-like* times
at our data scales, not to match any specific hardware. What matters
for the reproduction is the relative structure: scans are I/O-bound,
sorts are n·log n and spill under memory pressure, broadcasts trade
network volume for shuffle avoidance but cliff when the build side no
longer fits in executor memory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cluster.resources import ResourceProfile
from repro.errors import SimulationError
from repro.plan.physical import (
    BroadcastExchange,
    BroadcastHashJoin,
    BroadcastNestedLoopJoin,
    ExchangeHashPartition,
    ExchangeSinglePartition,
    FileScan,
    FilterExec,
    HashAggregate,
    LimitExec,
    PhysicalNode,
    ProjectExec,
    SortAggregate,
    SortExec,
    SortMergeJoin,
)

__all__ = ["SimulatorParams", "OperatorCost", "operator_cost"]


@dataclass(frozen=True)
class SimulatorParams:
    """Tunable constants of the execution model (all times in seconds)."""

    # Volume amplification: each executed row stands for ``data_scale``
    # rows of the paper's full-size dataset. Execution on the small
    # synthetic catalog yields exact cardinality *structure*; the
    # amplification puts the simulator in the same data-to-memory
    # regime as the paper (GB-scale inputs vs. 1-6 GB executors), so
    # spill and broadcast cliffs appear at realistic memory sizes.
    data_scale: float = 6000.0
    # CPU cost per row, by kind of work (seconds/row).
    cpu_scan_row: float = 90e-9
    cpu_filter_row: float = 45e-9
    cpu_project_row: float = 25e-9
    cpu_sort_row: float = 28e-9          # multiplied by log2(n)
    cpu_hash_build_row: float = 130e-9
    cpu_hash_probe_row: float = 65e-9
    cpu_merge_row: float = 55e-9
    cpu_agg_row: float = 70e-9
    cpu_serialize_row: float = 35e-9
    cpu_nested_loop_pair: float = 9e-9
    # Memory model.
    hash_table_overhead: float = 2.0     # hash build bytes per input byte
    broadcast_memory_fraction: float = 0.35  # of executor heap
    spill_write_read_factor: float = 2.0     # spilled bytes hit disk twice
    broadcast_fallback_io_factor: float = 9.0
    broadcast_fallback_cpu_factor: float = 4.0
    # JVM/GC: extra CPU per second of work per GB of heap.
    gc_cost_per_gb: float = 0.03
    # Scheduling.
    bytes_per_task: float = 32e6
    max_tasks_per_stage: int = 400
    # Reduce-side stages read a fixed number of shuffle partitions (the
    # spark.sql.shuffle.partitions analogue); with skewed join keys the
    # largest partition holds several times the average volume.
    shuffle_partitions: int = 4
    partition_skew: float = 5.0
    map_side_skew: float = 1.3
    task_overhead: float = 0.004
    wave_overhead: float = 0.03
    job_overhead: float = 0.25
    executor_startup: float = 0.08
    skew_factor: float = 0.3
    # Resource allocation mechanism (paper Sec. II-A): "static" holds
    # all granted executors for the application's lifetime; "dynamic"
    # holds only the executors a stage can use, releasing the rest, at
    # the price of re-acquisition latency when later stages scale up.
    allocation: str = "static"
    executor_acquire_latency: float = 0.35
    # Stochastic cloud contention (lognormal sigma per stage).
    noise_sigma: float = 0.06
    # I/O overlap: fraction of non-bottleneck work hidden by pipelining.
    overlap_fraction: float = 0.7


@dataclass
class OperatorCost:
    """Low-level work an operator contributes to its stage."""

    cpu_seconds: float = 0.0
    disk_bytes: float = 0.0
    network_bytes: float = 0.0
    spilled_bytes: float = 0.0
    broadcast_fallback: bool = False

    def add(self, other: "OperatorCost") -> None:
        """Accumulate another operator's work into this one."""
        self.cpu_seconds += other.cpu_seconds
        self.disk_bytes += other.disk_bytes
        self.network_bytes += other.network_bytes
        self.spilled_bytes += other.spilled_bytes
        self.broadcast_fallback |= other.broadcast_fallback


def _spill_bytes(data_bytes: float, memory_per_task: float, tasks: int,
                 params: SimulatorParams, skew: float = 1.0) -> float:
    """Disk traffic caused by spilling when per-task data exceeds memory.

    ``skew`` scales the average per-task volume up to the largest
    partition's volume, which is what actually overflows first.
    """
    per_task = min(data_bytes / max(tasks, 1) * skew, 0.8 * data_bytes)
    if per_task <= memory_per_task:
        return 0.0
    overflow_fraction = 1.0 - memory_per_task / per_task
    # Multi-pass external algorithms touch overflow data on each pass.
    passes = max(1.0, math.log2(max(per_task / memory_per_task, 2.0)))
    return data_bytes * overflow_fraction * passes * params.spill_write_read_factor


def _rows(node: PhysicalNode, params: SimulatorParams) -> float:
    """Amplified row count of a node's output."""
    return max(node.rows, 0.0) * params.data_scale


def _node_bytes(node: PhysicalNode, params: SimulatorParams) -> float:
    """Amplified byte volume of a node's output."""
    return max(node.bytes, 8.0 * max(node.rows, 1.0)) * params.data_scale


def operator_cost(node: PhysicalNode, resources: ResourceProfile,
                  params: SimulatorParams, tasks: int,
                  skew: float = 1.0) -> OperatorCost:
    """Work contributed by one operator, given its observed volumes.

    ``tasks`` is the parallelism of the operator's stage and ``skew``
    the largest-partition multiplier (spilling is per-task and gated by
    the biggest partition).
    """
    rows = _rows(node, params)
    bytes_ = _node_bytes(node, params)
    mem_per_task = resources.execution_memory_per_task
    cost = OperatorCost()

    if isinstance(node, FileScan):
        raw_rows = rows
        # A scan reads the base table from disk; pushed filters reduce
        # CPU row work only after the read.
        cost.disk_bytes += bytes_ if not node.pushed_filters else bytes_ * 1.15
        cost.cpu_seconds += raw_rows * params.cpu_scan_row
        if node.pushed_filters:
            cost.cpu_seconds += raw_rows * params.cpu_filter_row * len(node.pushed_filters)
    elif isinstance(node, FilterExec):
        input_rows = _rows(node.child, params)
        cost.cpu_seconds += input_rows * params.cpu_filter_row * max(len(node.predicates), 1)
    elif isinstance(node, ProjectExec):
        cost.cpu_seconds += rows * params.cpu_project_row
    elif isinstance(node, SortExec):
        n = max(rows, 2.0)
        cost.cpu_seconds += n * params.cpu_sort_row * math.log2(n)
        spilled = _spill_bytes(bytes_, mem_per_task, tasks, params, skew)
        cost.disk_bytes += spilled
        cost.spilled_bytes += spilled
    elif isinstance(node, (ExchangeHashPartition, ExchangeSinglePartition)):
        child_rows = _rows(node.child, params)
        child_bytes = _node_bytes(node.child, params)
        cost.cpu_seconds += child_rows * params.cpu_serialize_row * 2  # ser + deser
        cost.network_bytes += child_bytes
        cost.disk_bytes += child_bytes  # shuffle files hit local disk
    elif isinstance(node, BroadcastExchange):
        build_bytes = _node_bytes(node.child, params)
        # Collect at driver, then push to every executor.
        cost.network_bytes += build_bytes * (1 + resources.executors)
        cost.cpu_seconds += _rows(node.child, params) * params.cpu_serialize_row * 2
        needed = build_bytes * params.hash_table_overhead
        budget = params.broadcast_memory_fraction * resources.executor_memory_bytes
        if needed > budget:
            # The broadcast relation does not fit: Spark degenerates into
            # disk-backed lookups; model a severe I/O + CPU penalty.
            cost.broadcast_fallback = True
            cost.disk_bytes += build_bytes * params.broadcast_fallback_io_factor
    elif isinstance(node, BroadcastHashJoin):
        build = node.right  # BroadcastExchange subtree
        build_source = build.children[0] if build.children else build
        build_rows = _rows(build_source, params)
        probe_rows = _rows(node.left, params)
        cpu = (build_rows * params.cpu_hash_build_row
               + probe_rows * params.cpu_hash_probe_row
               + rows * params.cpu_project_row)
        needed = _node_bytes(build_source, params) * params.hash_table_overhead
        budget = params.broadcast_memory_fraction * resources.executor_memory_bytes
        if needed > budget:
            cpu *= params.broadcast_fallback_cpu_factor
        cost.cpu_seconds += cpu
    elif isinstance(node, SortMergeJoin):
        cost.cpu_seconds += (_rows(node.left, params)
                             + _rows(node.right, params)) * params.cpu_merge_row
        cost.cpu_seconds += rows * params.cpu_project_row
    elif isinstance(node, BroadcastNestedLoopJoin):
        pairs = _rows(node.left, params) * max(_rows(node.right, params), 1.0)
        cost.cpu_seconds += pairs * params.cpu_nested_loop_pair
    elif isinstance(node, (HashAggregate, SortAggregate)):
        input_rows = _rows(node.child, params)
        cost.cpu_seconds += input_rows * params.cpu_agg_row
        table_bytes = max(_node_bytes(node, params), 64.0)
        if isinstance(node, HashAggregate):
            table_bytes *= params.hash_table_overhead
            spilled = _spill_bytes(table_bytes, mem_per_task, tasks, params, skew)
        else:
            spilled = _spill_bytes(
                _node_bytes(node.child, params), mem_per_task, tasks, params, skew)
        cost.disk_bytes += spilled
        cost.spilled_bytes += spilled
    elif isinstance(node, LimitExec):
        cost.cpu_seconds += rows * params.cpu_project_row
    else:
        raise SimulationError(f"no cost model for operator {type(node).__name__}")
    return cost
