"""The Spark cluster simulator: (plan, resources) → execution time.

This is the reproduction's stand-in for the paper's real Tencent/Ali
cloud clusters. It executes the Spark stage model:

1. the plan splits into stages at exchange boundaries;
2. each stage runs its tasks in waves over the application's task
   slots, with quantization (a final partial wave wastes slots), skew
   (the slowest task gates the wave), and scheduling overhead;
3. per-stage work comes from the per-operator primitives in
   :mod:`repro.cluster.costfuncs`, which convert observed data volumes
   into CPU/disk/network demand given the memory available per task;
4. CPU time is inflated by a heap-proportional GC term, and stage time
   combines the bottleneck resource with partially-overlapped I/O;
5. a lognormal contention factor models noisy cloud neighbours.

These mechanisms jointly reproduce the paper's Sec. III observations:
runtime is non-monotone in executor memory (spill savings saturate
while GC overhead keeps growing), and the best plan flips with memory
(the broadcast-join cliff moves as the build side fits or not).
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.costfuncs import OperatorCost, SimulatorParams, operator_cost
from repro.cluster.resources import ResourceProfile
from repro.cluster.stages import Stage, split_stages
from repro.errors import SimulationError
from repro.plan.physical import PhysicalPlan

__all__ = ["StageTime", "SimulationResult", "SparkSimulator"]


@dataclass
class StageTime:
    """Timing breakdown of one simulated stage."""

    stage_id: int
    tasks: int
    waves: int
    cpu_seconds: float
    disk_seconds: float
    network_seconds: float
    overhead_seconds: float
    total_seconds: float
    spilled_bytes: float
    broadcast_fallback: bool


@dataclass
class SimulationResult:
    """Outcome of simulating one plan under one resource profile."""

    runtime_seconds: float
    stage_times: list[StageTime] = field(default_factory=list)

    @property
    def total_spilled_bytes(self) -> float:
        """Bytes spilled to disk across all stages."""
        return sum(s.spilled_bytes for s in self.stage_times)

    @property
    def any_broadcast_fallback(self) -> bool:
        """Whether any broadcast relation failed to fit in memory."""
        return any(s.broadcast_fallback for s in self.stage_times)


class SparkSimulator:
    """Simulates plan execution on a cluster.

    Parameters
    ----------
    params:
        Execution-model constants; defaults are calibrated for this
        repo's data scales.
    seed:
        Seed for the contention-noise stream. Two simulators with the
        same seed produce identical runtimes for identical inputs.
    """

    def __init__(self, params: SimulatorParams | None = None, seed: int = 0) -> None:
        self.params = params or SimulatorParams()
        if self.params.allocation not in ("static", "dynamic"):
            raise SimulationError(
                f"unknown allocation mechanism {self.params.allocation!r}")
        self._seed = seed

    # -- public API ---------------------------------------------------------
    def execute(self, plan: PhysicalPlan, resources: ResourceProfile,
                run_id: int = 0) -> SimulationResult:
        """Simulate ``plan`` under ``resources``.

        Every node must carry cardinality annotations (observed ones
        from :func:`repro.engine.execute_plan`, or at least estimates).
        ``run_id`` varies the contention noise between repeated runs of
        the same (plan, resources) pair.
        """
        for node in plan.nodes():
            if node.obs_rows is None and node.est_rows == 0.0:
                # Plans should be executed (or at least estimated) first;
                # zero-volume plans would simulate as free.
                raise SimulationError(
                    f"node {node.op_name} has no cardinality annotation; "
                    "run execute_plan() or annotate_estimates() first"
                )
        stages = split_stages(plan)
        # Key the contention noise on the plan *content* (not object
        # identity) so equal plans cost the same across processes and
        # repeated pipeline constructions.
        plan_key = zlib.crc32(plan.signature().encode())
        rng = np.random.default_rng(
            (self._seed * 1_000_003 + plan_key * 7919 + run_id) % (2 ** 63))
        stage_times = [self._simulate_stage(stage, resources, rng) for stage in stages]
        startup_executors = (1 if self.params.allocation == "dynamic"
                             else resources.executors)
        overhead = (self.params.job_overhead
                    + self.params.executor_startup * startup_executors)
        runtime = overhead + sum(s.total_seconds for s in stage_times)
        return SimulationResult(runtime_seconds=runtime, stage_times=stage_times)

    def execute_mean(self, plan: PhysicalPlan, resources: ResourceProfile,
                     runs: int = 3) -> float:
        """Average runtime over ``runs`` simulations (as the paper does)."""
        if runs < 1:
            raise SimulationError("runs must be >= 1")
        total = 0.0
        for run_id in range(runs):
            total += self.execute(plan, resources, run_id=run_id).runtime_seconds
        return total / runs

    # -- internals ----------------------------------------------------------
    def _task_count(self, stage: Stage, resources: ResourceProfile) -> tuple[int, float]:
        """(tasks, skew) for one stage.

        Map-side stages split their scan input adaptively; reduce-side
        stages read the fixed shuffle-partition count (Spark's
        ``spark.sql.shuffle.partitions``), whose largest partition is
        ``partition_skew`` times the average under skewed keys. A stage
        fed only by a single-partition exchange runs as one task.
        """
        from repro.plan.physical import (
            ExchangeHashPartition,
            ExchangeSinglePartition,
        )
        boundaries = [type(c.boundary) for c in stage.children
                      if c.boundary is not None]
        reads_hash = ExchangeHashPartition in boundaries
        reads_single = ExchangeSinglePartition in boundaries
        if reads_hash:
            return self.params.shuffle_partitions, self.params.partition_skew
        if reads_single:
            return 1, 1.0
        input_bytes = sum(node.bytes for node in stage.nodes if not node.children)
        input_bytes *= self.params.data_scale
        tasks = max(1, int(math.ceil(input_bytes / self.params.bytes_per_task)))
        return min(tasks, self.params.max_tasks_per_stage), self.params.map_side_skew

    def _simulate_stage(self, stage: Stage, resources: ResourceProfile,
                        rng: np.random.Generator) -> StageTime:
        params = self.params
        tasks, partition_skew = self._task_count(stage, resources)
        total = OperatorCost()
        for node in stage.nodes:
            total.add(operator_cost(node, resources, params, tasks, partition_skew))

        acquire_time = 0.0
        if params.allocation == "dynamic":
            # Under dynamic allocation the application holds only the
            # executors this stage can use; scaling up costs latency.
            wanted = max(1, math.ceil(tasks / resources.executor_cores))
            active_executors = min(resources.executors, wanted)
            acquire_time = params.executor_acquire_latency * active_executors
            slots = min(active_executors * resources.executor_cores,
                        resources.physical_cores)
        else:
            active_executors = resources.executors
            slots = resources.task_slots
        waves = max(1, int(math.ceil(tasks / slots)))
        # Quantization: the final partial wave still takes a full wave.
        effective_parallelism = tasks / waves
        # Straggler skew: the slowest task gates each wave.
        skew = 1.0 + params.skew_factor * (1.0 - 1.0 / tasks)
        # GC: heap-proportional CPU inflation (bigger heaps pause longer).
        gc_factor = 1.0 + params.gc_cost_per_gb * resources.executor_memory_gb
        cpu_time = total.cpu_seconds / max(effective_parallelism, 1.0) * skew * gc_factor

        # Disk parallelism is per node actually hosting executors.
        active_nodes = min(active_executors, resources.nodes)
        disk_time = total.disk_bytes / (resources.disk_throughput_mbps * 1e6 * active_nodes)
        network_time = total.network_bytes / (
            resources.network_throughput_mbps * 1e6 * active_nodes)

        # Pipelining hides most of the non-bottleneck work.
        components = sorted([cpu_time, disk_time, network_time], reverse=True)
        busy = components[0] + (1.0 - params.overlap_fraction) * sum(components[1:])

        overhead = (params.wave_overhead * waves + params.task_overhead * tasks
                    + acquire_time)
        noise = float(rng.lognormal(mean=0.0, sigma=params.noise_sigma))
        total_seconds = (busy + overhead) * noise
        return StageTime(
            stage_id=stage.stage_id,
            tasks=tasks,
            waves=waves,
            cpu_seconds=cpu_time,
            disk_seconds=disk_time,
            network_seconds=network_time,
            overhead_seconds=overhead,
            total_seconds=total_seconds,
            spilled_bytes=total.spilled_bytes,
            broadcast_fallback=total.broadcast_fallback,
        )
