"""Stage decomposition of physical plans (Spark's DAG scheduler model).

Spark splits a physical plan into *stages* at exchange boundaries: the
subtree feeding an ``Exchange`` runs as one stage (map side + shuffle
write), and the operators above it read the shuffled data in a later
stage. ``BroadcastExchange`` likewise ends the build-side stage.

The simulator charges each stage its task-parallel execution time and
charges the boundary its shuffle/broadcast transfer time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.plan.physical import (
    BroadcastExchange,
    ExchangeHashPartition,
    ExchangeSinglePartition,
    PhysicalNode,
    PhysicalPlan,
)

__all__ = ["Stage", "split_stages"]

_BOUNDARY_TYPES = (ExchangeHashPartition, ExchangeSinglePartition, BroadcastExchange)


@dataclass
class Stage:
    """A pipeline of operators executed as one wave-scheduled task set.

    ``boundary`` is the exchange node that terminates this stage (its
    shuffle write / broadcast), or ``None`` for the result stage.
    ``children`` are the stages whose output this stage reads.
    """

    stage_id: int
    nodes: list[PhysicalNode] = field(default_factory=list)
    boundary: PhysicalNode | None = None
    children: list["Stage"] = field(default_factory=list)

    @property
    def is_result_stage(self) -> bool:
        """Whether this stage produces the final query result."""
        return self.boundary is None

    @property
    def is_broadcast(self) -> bool:
        """Whether this stage feeds a broadcast exchange."""
        return isinstance(self.boundary, BroadcastExchange)

    def input_rows(self) -> float:
        """Rows this stage reads from base tables and child exchanges."""
        total = 0.0
        for node in self.nodes:
            if not node.children:  # leaf: FileScan
                total += node.rows
        for child in self.children:
            if child.boundary is not None:
                total += child.boundary.rows
        return total

    def output_rows(self) -> float:
        """Rows this stage emits through its boundary (or as the result)."""
        if self.boundary is not None:
            return self.boundary.rows
        return self.nodes[-1].rows if self.nodes else 0.0

    def __repr__(self) -> str:
        kind = "result" if self.is_result_stage else self.boundary.op_name
        ops = ",".join(n.op_name for n in self.nodes)
        return f"Stage#{self.stage_id}({kind}: {ops})"


def split_stages(plan: PhysicalPlan) -> list[Stage]:
    """Split ``plan`` into stages; children precede parents in the list.

    Each exchange node belongs to the *child* stage (it models the
    shuffle write); the parent stage lists that child stage in its
    ``children``.
    """
    stages: list[Stage] = []
    counter = [0]

    def new_stage(boundary: PhysicalNode | None) -> Stage:
        stage = Stage(stage_id=counter[0], boundary=boundary)
        counter[0] += 1
        return stage

    def walk(node: PhysicalNode, stage: Stage) -> None:
        # Children first so nodes end up in execution order.
        for child in node.children:
            if isinstance(child, _BOUNDARY_TYPES):
                child_stage = new_stage(child)
                walk(child, child_stage)
                stages.append(child_stage)
                stage.children.append(child_stage)
            else:
                walk(child, stage)
        stage.nodes.append(node)

    result_stage = new_stage(None)
    walk(plan.root, result_stage)
    stages.append(result_stage)
    return stages
