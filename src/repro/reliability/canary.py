"""Shadow-sampling accuracy canary for degraded precision tiers.

The f32/int8 tiers were validated offline against a drift budget, but
nothing guarantees the deployed bundle stays inside it — a corrupted
quantization cache, an in-place weight mutation the fingerprint missed,
or simply a workload the budget was never measured on. The canary
watches for exactly that: while the ladder serves a degraded tier, a
seeded ~1% sample of requests is *shadow-scored* on the full-precision
f64 path and the relative drift between the two answers is recorded.
A sample past ``budget`` trips the ladder back up (and quarantines the
drifting rung) — silent accuracy loss becomes a visible, self-healing
event.

Sampling is seeded so tests and benchmarks are reproducible; the
decision stream is shared across threads under a lock (sampling is a
few hundred nanoseconds against a model forward's milliseconds).
"""

from __future__ import annotations

import threading

import numpy as np

from repro import obs
from repro.errors import ReproError
from repro.obs.metrics import DRIFT_BUCKETS

__all__ = ["AccuracyCanary"]


class AccuracyCanary:
    """Seeded shadow-sampler comparing degraded answers to the f64 path.

    Parameters
    ----------
    sample_rate:
        Fraction of degraded-tier requests to shadow-score (default 1%).
    budget:
        Max tolerated relative drift versus the f64 answer (default 5%,
        the tier qualification budget from DESIGN.md).
    seed:
        Seed of the sampling RNG, for reproducible canary streams.
    """

    def __init__(self, sample_rate: float = 0.01, budget: float = 0.05,
                 seed: int = 0) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ReproError(
                f"sample_rate must be in [0, 1], got {sample_rate}")
        if budget <= 0:
            raise ReproError(f"budget must be > 0, got {budget}")
        self.sample_rate = float(sample_rate)
        self.budget = float(budget)
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()
        self.samples = 0
        self.trips = 0
        self.last_drift: float | None = None

    def should_sample(self) -> bool:
        """Whether this degraded request joins the shadow sample."""
        if self.sample_rate <= 0.0:
            return False
        if self.sample_rate >= 1.0:
            return True
        with self._lock:
            return bool(self._rng.random() < self.sample_rate)

    @staticmethod
    def drift(degraded: np.ndarray, reference: np.ndarray) -> float:
        """Max relative deviation of ``degraded`` from ``reference``."""
        degraded = np.asarray(degraded, dtype=np.float64)
        reference = np.asarray(reference, dtype=np.float64)
        denom = np.maximum(np.abs(reference), 1e-9)
        return float(np.max(np.abs(degraded - reference) / denom))

    def observe(self, degraded: np.ndarray, reference: np.ndarray,
                tier: str) -> bool:
        """Record one shadow comparison; ``True`` means the budget broke.

        Emits the ``canary.drift_ratio`` histogram sample and, on a
        breach, the ``canary.trips_total`` counter plus a
        ``canary_trip`` event (the caller steps the ladder).
        """
        drift = self.drift(degraded, reference)
        with self._lock:
            self.samples += 1
            self.last_drift = drift
            tripped = drift > self.budget
            if tripped:
                self.trips += 1
        obs.inc("canary.samples_total",
                help="Degraded predictions shadow-scored against f64")
        obs.observe("canary.drift_ratio", drift, buckets=DRIFT_BUCKETS,
                    help="Relative drift of degraded tiers vs the f64 path")
        if tripped:
            obs.inc("canary.trips_total",
                    help="Canary drift-budget breaches")
            obs.emit_event("canary", "canary_trip", tier=tier,
                           drift=drift, budget=self.budget)
        return tripped

    def snapshot(self) -> dict:
        """Point-in-time accounting for ``repro doctor`` and tests."""
        with self._lock:
            return {"samples": self.samples, "trips": self.trips,
                    "last_drift": self.last_drift,
                    "sample_rate": self.sample_rate, "budget": self.budget}
