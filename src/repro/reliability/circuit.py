"""Per-stage circuit breaker for the guarded prediction chain.

Classic three-state breaker:

* **closed** — calls flow normally; consecutive failures are counted.
* **open** — after ``failure_threshold`` consecutive failures the stage
  is skipped outright (no call is made) until ``cooldown_seconds`` have
  elapsed.
* **half-open** — after the cooldown one probe call is allowed through;
  success closes the breaker, failure re-opens it (and restarts the
  cooldown).

The clock is injectable so tests drive state transitions
deterministically, without sleeping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.errors import ReproError

__all__ = ["BreakerConfig", "CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Trip threshold and recovery cooldown of one breaker."""

    failure_threshold: int = 3
    cooldown_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ReproError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}")
        if self.cooldown_seconds < 0:
            raise ReproError("cooldown_seconds must be non-negative")


class CircuitBreaker:
    """Tracks the health of one fallback-chain stage.

    ``on_transition(old, new)`` is invoked whenever the state actually
    changes (never on same-state updates) — the telemetry layer uses it
    to emit breaker-transition events without the breaker knowing about
    telemetry.
    """

    def __init__(self, config: BreakerConfig | None = None,
                 clock: Callable[[], float] = time.monotonic,
                 on_transition: Callable[[str, str], None] | None = None) -> None:
        self.config = config or BreakerConfig()
        self._clock = clock
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self.on_transition = on_transition

    def _set_state(self, new_state: str) -> None:
        old_state, self._state = self._state, new_state
        if old_state != new_state and self.on_transition is not None:
            self.on_transition(old_state, new_state)

    @property
    def state(self) -> str:
        """Current state (``closed`` / ``open`` / ``half_open``).

        Reading the state does not advance it; only :meth:`allow` moves
        an open breaker to half-open once the cooldown has elapsed.
        """
        return self._state

    @property
    def consecutive_failures(self) -> int:
        """Failures recorded since the last success."""
        return self._consecutive_failures

    def allow(self) -> bool:
        """Whether the protected call may run now.

        An open breaker transitions to half-open (permitting one probe)
        once the cooldown has elapsed.
        """
        if self._state == OPEN:
            if self._clock() - self._opened_at >= self.config.cooldown_seconds:
                self._set_state(HALF_OPEN)
                return True
            return False
        return True

    def record_success(self) -> None:
        """Protected call succeeded: reset to closed."""
        self._set_state(CLOSED)
        self._consecutive_failures = 0

    def record_failure(self) -> None:
        """Protected call failed: count it, trip or re-open as needed."""
        self._consecutive_failures += 1
        if (self._state == HALF_OPEN
                or self._consecutive_failures >= self.config.failure_threshold):
            self._set_state(OPEN)
            self._opened_at = self._clock()

    def reset(self) -> None:
        """Force the breaker back to pristine closed state."""
        self._set_state(CLOSED)
        self._consecutive_failures = 0
        self._opened_at = 0.0
