"""Admission control: bounded in-flight work with shed-on-full.

Under overload a prediction service must choose between queueing
(latency grows without bound) and shedding (a few callers fail fast,
the rest stay inside their deadline). :class:`AdmissionController`
implements the shedding policy:

* at most ``max_in_flight`` requests hold an execution slot at once;
* at most ``max_queue_depth`` further requests may wait for a slot,
  each for at most ``max_wait_seconds`` (clamped to the request's
  deadline, when it carries one);
* everything beyond that is shed *immediately* with the typed
  :class:`~repro.errors.Overloaded` — no lock convoy, no model work.

The controller is a standalone primitive (usable around any callable);
:class:`~repro.reliability.guard.GuardedCostPredictor` wraps its RAAL
stage in one so a saturated model falls back to the analytic chain (or
rejects, in ``shed_mode="reject"``) instead of queueing unboundedly.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

from repro import obs
from repro.errors import Overloaded, ReproError
from repro.reliability.deadline import Deadline

__all__ = ["AdmissionConfig", "AdmissionController", "Overloaded"]


@dataclass(frozen=True)
class AdmissionConfig:
    """Concurrency and queueing limits of one admission controller."""

    #: Requests allowed to execute concurrently.
    max_in_flight: int = 4
    #: Requests allowed to wait for a slot; beyond this, shed instantly.
    max_queue_depth: int = 8
    #: Longest any request may wait for a slot before being shed.
    max_wait_seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.max_in_flight < 1:
            raise ReproError(
                f"max_in_flight must be >= 1, got {self.max_in_flight}")
        if self.max_queue_depth < 0:
            raise ReproError(
                f"max_queue_depth must be >= 0, got {self.max_queue_depth}")
        if self.max_wait_seconds < 0:
            raise ReproError("max_wait_seconds must be non-negative")


class AdmissionController:
    """Bounded in-flight semaphore + bounded wait queue, shed-on-full.

    Thread-safe; one controller fronts all serving threads of a
    predictor. Sheds raise :class:`Overloaded` and are counted in
    ``predict.shed_total`` plus the controller's own tallies
    (:meth:`snapshot`).
    """

    def __init__(self, config: AdmissionConfig | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.config = config or AdmissionConfig()
        self._clock = clock
        self._cv = threading.Condition(threading.Lock())
        self._in_flight = 0
        self._waiting = 0
        self._admitted_total = 0
        self._shed_queue_full = 0
        self._shed_wait_timeout = 0

    # -- introspection -----------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Requests currently holding an execution slot."""
        return self._in_flight

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for a slot."""
        return self._waiting

    @property
    def shed_total(self) -> int:
        """Requests shed since construction (queue-full + wait-timeout)."""
        return self._shed_queue_full + self._shed_wait_timeout

    def snapshot(self) -> dict[str, int]:
        """Point-in-time accounting for ``repro doctor`` and tests."""
        with self._cv:
            return {
                "in_flight": self._in_flight,
                "queue_depth": self._waiting,
                "admitted_total": self._admitted_total,
                "shed_queue_full": self._shed_queue_full,
                "shed_wait_timeout": self._shed_wait_timeout,
            }

    # -- the gate ----------------------------------------------------------
    def acquire(self, deadline: Deadline | None = None) -> None:
        """Take an execution slot or raise :class:`Overloaded`.

        Waits at most ``max_wait_seconds`` (further clamped to the
        request's remaining deadline) when the queue has room; sheds
        instantly when it does not. Callers must pair every successful
        acquire with :meth:`release` — prefer :meth:`admit`.
        """
        start = self._clock()
        with self._cv:
            if self._in_flight < self.config.max_in_flight:
                self._in_flight += 1
                self._admitted_total += 1
                self._note_gauges()
                return
            budget = self.config.max_wait_seconds
            if deadline is not None:
                budget = min(budget, max(deadline.remaining(), 0.0))
            if self._waiting >= self.config.max_queue_depth or budget <= 0:
                self._shed_queue_full += 1
                self._shed("queue full", start)
            self._waiting += 1
            self._note_gauges()
            try:
                wait_until = self._clock() + budget
                while self._in_flight >= self.config.max_in_flight:
                    left = wait_until - self._clock()
                    if left <= 0:
                        self._shed_wait_timeout += 1
                        self._shed(
                            f"no slot within {budget * 1e3:.0f}ms", start)
                    self._cv.wait(left)
                self._in_flight += 1
                self._admitted_total += 1
            finally:
                self._waiting -= 1
                self._note_gauges()
        obs.observe("admission.wait_seconds", self._clock() - start,
                    help="Time spent queued for an execution slot")

    def release(self) -> None:
        """Return an execution slot and wake one queued waiter."""
        with self._cv:
            if self._in_flight <= 0:
                raise ReproError("release() without a matching acquire()")
            self._in_flight -= 1
            self._note_gauges()
            self._cv.notify()

    @contextmanager
    def admit(self, deadline: Deadline | None = None) -> Iterator[None]:
        """Context-managed :meth:`acquire` / :meth:`release` pair."""
        self.acquire(deadline)
        try:
            yield
        finally:
            self.release()

    def _note_gauges(self) -> None:
        obs.set_gauge("admission.in_flight", self._in_flight,
                      help="Requests currently executing")
        obs.set_gauge("admission.queue_depth", self._waiting,
                      help="Requests currently queued for a slot")

    def _shed(self, why: str, start: float) -> None:
        """Reject one request (caller holds the condition's lock)."""
        obs.inc("predict.shed_total",
                help="Requests shed by admission control")
        obs.emit_event("admission", "shed", reason=why,
                       in_flight=self._in_flight, waiting=self._waiting)
        raise Overloaded(
            f"admission control shed request ({why}; "
            f"in_flight={self._in_flight}, waiting={self._waiting}, "
            f"waited {(self._clock() - start) * 1e3:.1f}ms)")
