"""Request deadlines: a latency budget carried through the predict path.

A :class:`Deadline` is an absolute expiry on an injectable monotonic
clock. It travels with one request from the public predictor API down
into :class:`~repro.core.execution.BucketExecutor`, which checks it
cooperatively between length buckets (serial path) and enforces it with
a watchdog wait on the bucket futures (threaded path). Expiry raises
the typed :class:`~repro.errors.DeadlineExceeded`, which the guarded
chain maps to the analytic GPSJ fallback — a late answer from the
learned model is treated exactly like a failed one.

Deadlines are cheap value objects: create one per request
(:meth:`Deadline.after` / :meth:`Deadline.from_ms`), never reuse them
across requests.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.errors import DeadlineExceeded, ReproError

__all__ = ["Deadline", "DeadlineExceeded"]


class Deadline:
    """One request's latency budget on a monotonic clock.

    Parameters
    ----------
    expires_at:
        Absolute expiry in the clock's timebase.
    clock:
        Injectable monotonic clock (tests drive expiry without
        sleeping).
    budget_seconds:
        The original budget, kept for error messages and accounting.
    """

    __slots__ = ("expires_at", "budget_seconds", "_clock")

    def __init__(self, expires_at: float,
                 clock: Callable[[], float] = time.monotonic,
                 budget_seconds: float | None = None) -> None:
        self.expires_at = float(expires_at)
        self.budget_seconds = budget_seconds
        self._clock = clock

    @classmethod
    def after(cls, seconds: float,
              clock: Callable[[], float] = time.monotonic) -> "Deadline":
        """A deadline expiring ``seconds`` from now."""
        if seconds < 0:
            raise ReproError(f"deadline budget must be >= 0, got {seconds}")
        return cls(clock() + seconds, clock=clock, budget_seconds=float(seconds))

    @classmethod
    def from_ms(cls, milliseconds: float,
                clock: Callable[[], float] = time.monotonic) -> "Deadline":
        """A deadline expiring ``milliseconds`` from now."""
        return cls.after(milliseconds / 1e3, clock=clock)

    def remaining(self) -> float:
        """Seconds left before expiry (may be negative once expired)."""
        return self.expires_at - self._clock()

    def expired(self) -> bool:
        """Whether the budget has been consumed."""
        return self._clock() >= self.expires_at

    def check(self, where: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the deadline has passed.

        ``where`` names the checkpoint (e.g. ``"between buckets"``) so
        provenance reasons say where the budget ran out.
        """
        if self.expired():
            budget = (f"{self.budget_seconds * 1e3:.0f}ms budget"
                      if self.budget_seconds is not None else "deadline")
            at = f" at {where}" if where else ""
            raise DeadlineExceeded(
                f"{budget} exceeded{at} "
                f"(overrun {-self.remaining() * 1e3:.1f}ms)")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Deadline(remaining={self.remaining():.4f}s, "
                f"budget={self.budget_seconds})")
