"""Guarded cost prediction: the learned model may never sink a query.

A learned cost model sitting inside the optimizer loop (plan selection,
resource recommendation) must degrade, not crash: a corrupt checkpoint,
a poisoned vocabulary, an oversized plan, or a NaN forward should fall
back to the analytic GPSJ estimate — and if even that fails, to a
static heuristic that cannot fail. :class:`GuardedCostPredictor` wraps
a :class:`~repro.core.predictor.CostPredictor` with exactly that chain:

    RAAL (learned) → GPSJ (analytic) → static heuristic

Every stage is protected by a circuit breaker (skip a stage outright
after K consecutive failures, re-probe after a cooldown) and the RAAL
stage additionally retries transient faults with bounded backoff.
Every answer carries provenance: which stage produced it and, when the
chain degraded, why.

On top of the fault chain sits the overload-resilience layer (all
optional, all default-off):

* **Deadlines** — every predict call accepts a
  :class:`~repro.reliability.deadline.Deadline` (or synthesizes one
  from ``default_deadline_ms``); the learned stage abandons work past
  the budget and the chain serves the analytic answer instead. A blown
  deadline is *load*, not model failure — it never trips the breaker
  and is never retried.
* **Admission control** — an :class:`~repro.reliability.admission.
  AdmissionController` bounds learned-model concurrency; shed requests
  either fall through to the analytic chain (``shed_mode="fallback"``,
  default) or raise :class:`~repro.errors.Overloaded` within
  milliseconds (``shed_mode="reject"``).
* **Degradation ladder** — a :class:`~repro.reliability.ladder.
  DegradationLadder` fed with learned-stage latencies picks the
  serving precision tier (f64 → f32 → int8 → analytic-only) and is
  pinned to its bottom rung while the RAAL breaker is open. The ladder
  assumes the configured base tier is ``f64``.
* **Accuracy canary** — while degraded, an
  :class:`~repro.reliability.canary.AccuracyCanary` shadow-scores a
  seeded ~1% sample on the f64 path and trips the ladder back up when
  relative drift breaches the budget.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from repro import obs
from repro.baselines.gpsj import GPSJCostModel
from repro.cluster.resources import ResourceProfile
from repro.core.predictor import CostPredictor
from repro.encoding.plan_encoder import plan_fingerprint
from repro.errors import DeadlineExceeded, Overloaded, PredictionError
from repro.obs.audit import AuditTrail
from repro.obs.quality import DRIFT, AccuracyTracker
from repro.obs.slo import SLOTracker
from repro.plan.physical import PhysicalPlan
from repro.reliability.admission import AdmissionController
from repro.reliability.canary import AccuracyCanary
from repro.reliability.circuit import BreakerConfig, CircuitBreaker
from repro.reliability.deadline import Deadline
from repro.reliability.ladder import DegradationLadder
from repro.reliability.retry import RetryPolicy, retry_call

__all__ = [
    "GuardedPrediction",
    "ExplainedPredictions",
    "GuardedCostPredictor",
    "static_heuristic_cost",
    "DEFAULT_CHAIN",
    "SHED_MODES",
]

#: How admission-control sheds surface: degrade to the analytic chain,
#: or reject the request with :class:`~repro.errors.Overloaded`.
SHED_MODES = ("fallback", "reject")

DEFAULT_CHAIN = ("raal", "gpsj", "heuristic")

#: Fallback-of-last-resort cost when even the heuristic inputs are junk.
_FLOOR_SECONDS = 1.0


def static_heuristic_cost(plan: PhysicalPlan, resources: ResourceProfile) -> float:
    """Total-function cost estimate used when every model is down.

    A crude linear model — per-operator overhead plus scan volume over
    aggregate disk bandwidth — clamped to a positive finite value. It
    exists to keep plan selection *ranked sanely* (bigger plans cost
    more), not to be accurate.
    """
    try:
        nodes = plan.nodes()
        total_bytes = 0.0
        for node in nodes:
            est = float(node.est_bytes)
            if np.isfinite(est) and est > 0:
                total_bytes += est
        slots = max(int(resources.task_slots), 1)
        disk = float(resources.disk_throughput_mbps)
        if not np.isfinite(disk) or disk <= 0:
            disk = 100.0
        seconds = 0.5 * len(nodes) + total_bytes * 6000.0 / (disk * 1e6 * slots)
        if not np.isfinite(seconds) or seconds <= 0:
            return _FLOOR_SECONDS
        return float(seconds)
    except Exception:
        return _FLOOR_SECONDS


@dataclass(frozen=True)
class GuardedPrediction:
    """One guarded cost estimate with provenance."""

    seconds: float
    source: str
    reason: str | None = None
    #: Audit-trail handle for closing the feedback loop (present when
    #: an :class:`~repro.obs.audit.AuditTrail` is configured).
    request_id: str | None = None

    @property
    def degraded(self) -> bool:
        """Whether the answer came from a fallback stage."""
        return self.source != DEFAULT_CHAIN[0]


@dataclass(frozen=True)
class ExplainedPredictions:
    """A batch of guarded cost estimates with shared provenance.

    All costs in one call come from the same stage — the chain degrades
    per *request*, not per sample, so a selector never ranks plans
    scored by different models against each other.
    """

    costs: np.ndarray
    source: str
    reason: str | None = None
    #: Audit-trail handle for closing the feedback loop (present when
    #: an :class:`~repro.obs.audit.AuditTrail` is configured).
    request_id: str | None = None


@dataclass
class _StageStats:
    """Per-stage call accounting (observability for tests and doctor)."""

    served: int = 0
    failures: int = 0
    skipped_open: int = 0
    rejected_input: int = 0
    # Overload-resilience accounting (only the learned stage uses these).
    deadline_exceeded: int = 0
    shed: int = 0
    degraded_precision: int = 0
    ladder_fallback: int = 0


class GuardedCostPredictor:
    """Fallback-chain wrapper around a trained :class:`CostPredictor`.

    Duck-type compatible with :class:`CostPredictor` (``predict``,
    ``predict_many``, ``predict_grid``), so :class:`PlanSelector` and
    :class:`ResourceAdvisor` accept it unchanged — and when they detect
    the ``*_explained`` variants they surface provenance in their
    results.

    Parameters
    ----------
    predictor:
        The trained learned-model predictor (the "raal" stage).
    gpsj:
        Analytic fallback model; when ``None`` the "gpsj" stage reports
        itself unavailable and the chain skips to the heuristic.
    chain:
        Stage order; a subset/reordering of ``("raal", "gpsj",
        "heuristic")``.
    breaker_config:
        Trip threshold / cooldown shared by each stage's breaker.
    retry_policy:
        Bounded-backoff retry applied to the RAAL stage only (the
        analytic stages are deterministic — retrying them is pointless).
        Blown deadlines and shed requests are never retried.
    admission:
        Optional :class:`AdmissionController` bounding learned-model
        concurrency; sheds surface per ``shed_mode``.
    ladder:
        Optional :class:`DegradationLadder` choosing the serving
        precision tier from rolling learned-stage latency; coupled to
        the RAAL breaker (open ⇒ ladder pinned to FALLBACK).
    canary:
        Optional :class:`AccuracyCanary` shadow-scoring degraded-tier
        answers against the f64 path; a drift breach trips the ladder
        back up.
    quality:
        Optional :class:`~repro.obs.quality.AccuracyTracker` fed
        (prediction, observed runtime) pairs via
        :meth:`record_observation`; its drift detector — when drifting
        — trips the ladder to FALLBACK (the learned model itself is
        wrong, so no precision tier helps).
    audit:
        Optional :class:`~repro.obs.audit.AuditTrail`; every served
        request gets audit records (one per pair up to the trail's
        per-request cap) and a ``request_id`` in its result for later
        ground-truth attachment.
    slo:
        Optional :class:`~repro.obs.slo.SLOTracker`; serving latency is
        recorded to an SLO named ``latency`` and feedback q-errors to
        one named ``qerror`` (either optional — absent names are
        skipped).
    workload:
        Static workload-class label stamped onto audit records and
        per-workload quality statistics.
    default_deadline_ms:
        When set, every predict call without an explicit deadline gets
        a fresh one with this budget.
    shed_mode:
        ``"fallback"`` (default) serves shed requests from the analytic
        chain; ``"reject"`` raises :class:`~repro.errors.Overloaded`.
    clock / sleep:
        Injectable time sources for deterministic tests.
    """

    def __init__(
        self,
        predictor: CostPredictor,
        gpsj: GPSJCostModel | None = None,
        chain: tuple[str, ...] = DEFAULT_CHAIN,
        breaker_config: BreakerConfig | None = None,
        retry_policy: RetryPolicy | None = None,
        admission: AdmissionController | None = None,
        ladder: DegradationLadder | None = None,
        canary: AccuracyCanary | None = None,
        quality: AccuracyTracker | None = None,
        audit: AuditTrail | None = None,
        slo: SLOTracker | None = None,
        workload: str | None = None,
        default_deadline_ms: float | None = None,
        shed_mode: str = "fallback",
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        unknown = set(chain) - set(DEFAULT_CHAIN)
        if unknown:
            raise PredictionError(f"unknown fallback stages: {sorted(unknown)}")
        if not chain:
            raise PredictionError("fallback chain cannot be empty")
        if shed_mode not in SHED_MODES:
            raise PredictionError(
                f"unknown shed_mode {shed_mode!r}; expected one of {SHED_MODES}")
        if default_deadline_ms is not None and default_deadline_ms <= 0:
            raise PredictionError(
                f"default_deadline_ms must be > 0, got {default_deadline_ms}")
        self.predictor = predictor
        self.gpsj = gpsj
        self.chain = tuple(chain)
        self.retry_policy = retry_policy or RetryPolicy(attempts=2, base_delay=0.0)
        self.admission = admission
        self.ladder = ladder
        self.canary = canary
        self.quality = quality
        self.audit = audit
        self.slo = slo
        self.workload = workload
        self.default_deadline_ms = default_deadline_ms
        self.shed_mode = shed_mode
        self._clock = clock
        self._sleep = sleep
        self._tier_predictors: dict[str, CostPredictor] = {}
        self.breakers = {
            stage: CircuitBreaker(config=breaker_config, clock=clock,
                                  on_transition=self._breaker_listener(stage))
            for stage in self.chain
        }
        self.stats = {stage: _StageStats() for stage in self.chain}

    def _breaker_listener(self, stage: str) -> Callable[[str, str], None]:
        """Telemetry hook for one stage's breaker state changes.

        The RAAL stage's transitions additionally drive the degradation
        ladder: an open breaker pins it to FALLBACK, the half-open
        probe releases it.
        """
        def _on_transition(old: str, new: str) -> None:
            obs.inc(f"guard.{stage}.breaker_transitions_total",
                    help="Circuit breaker state changes")
            obs.emit_event("guard", "breaker_transition",
                           stage=stage, old=old, new=new)
            if stage == "raal" and self.ladder is not None:
                self.ladder.on_breaker_transition(old, new)
        return _on_transition

    # -- CostPredictor-compatible surface ---------------------------------
    @property
    def encoder(self):
        """The wrapped predictor's encoder (CostPredictor compatibility)."""
        return self.predictor.encoder

    @property
    def trainer(self):
        """The wrapped predictor's trainer (CostPredictor compatibility)."""
        return self.predictor.trainer

    def close(self) -> None:
        """Release worker pools held by the base and tier predictors."""
        self.predictor.close()
        for predictor in self._tier_predictors.values():
            predictor.close()

    def predict(self, plan: PhysicalPlan, resources: ResourceProfile,
                deadline: Deadline | None = None) -> float:
        """Guarded cost (seconds) of one (plan, resources) pair."""
        return self.predict_explained(plan, resources, deadline=deadline).seconds

    def predict_explained(self, plan: PhysicalPlan,
                          resources: ResourceProfile,
                          deadline: Deadline | None = None) -> GuardedPrediction:
        """Guarded cost of one pair, with provenance."""
        explained = self.predict_many_explained([(plan, resources)],
                                                deadline=deadline)
        return GuardedPrediction(
            seconds=float(explained.costs[0]),
            source=explained.source,
            reason=explained.reason,
            request_id=explained.request_id,
        )

    def predict_many(self, pairs: list[tuple[PhysicalPlan, ResourceProfile]],
                     fast: bool = True,
                     deadline: Deadline | None = None) -> np.ndarray:
        """Guarded cost vector (drop-in for ``CostPredictor.predict_many``)."""
        return self.predict_many_explained(pairs, fast=fast,
                                           deadline=deadline).costs

    def predict_grid(self, plans: list[PhysicalPlan],
                     profiles: list[ResourceProfile],
                     fast: bool = True,
                     deadline: Deadline | None = None) -> np.ndarray:
        """Guarded cost matrix (drop-in for ``CostPredictor.predict_grid``)."""
        return self.predict_grid_explained(plans, profiles, fast=fast,
                                           deadline=deadline).costs

    def predict_grid_explained(self, plans: list[PhysicalPlan],
                               profiles: list[ResourceProfile],
                               fast: bool = True,
                               deadline: Deadline | None = None,
                               ) -> ExplainedPredictions:
        """Guarded ``(len(profiles), len(plans))`` grid with provenance."""
        pairs = [(plan, profile) for profile in profiles for plan in plans]
        explained = self.predict_many_explained(pairs, fast=fast,
                                                deadline=deadline)
        return ExplainedPredictions(
            costs=explained.costs.reshape(len(profiles), len(plans)),
            source=explained.source,
            reason=explained.reason,
            request_id=explained.request_id,
        )

    def degradation_counts(self) -> dict[str, int]:
        """Cumulative fallback accounting across the predictor's lifetime.

        Mirrors the ``guard.*`` registry counters for callers that hold
        the predictor but not the telemetry bundle (``repro doctor``,
        tests). ``degraded`` counts answers served by any stage other
        than the chain's first.
        """
        served = {stage: s.served for stage, s in self.stats.items()}
        total = sum(served.values())
        counts = {"requests_served": total,
                  "degraded": total - served.get(self.chain[0], 0)}
        for stage, stat in self.stats.items():
            counts[f"{stage}.served"] = stat.served
            counts[f"{stage}.failures"] = stat.failures
            counts[f"{stage}.skipped_open"] = stat.skipped_open
            counts[f"{stage}.rejected_input"] = stat.rejected_input
        raal = self.stats.get("raal")
        if raal is not None:
            counts["deadline_exceeded"] = raal.deadline_exceeded
            counts["shed"] = raal.shed
            counts["degraded_precision"] = raal.degraded_precision
            counts["ladder_fallback"] = raal.ladder_fallback
        return counts

    def health_state(self) -> dict[str, object]:
        """Live overload-resilience posture (``repro doctor`` and tests).

        Summarizes the ladder rung, breaker states, and admission /
        canary snapshots in one JSON-friendly dict.
        """
        state: dict[str, object] = {
            "ladder": self.ladder.state if self.ladder is not None else "healthy",
            "precision": (self.ladder.precision() if self.ladder is not None
                          else self.predictor.config.precision),
            "breakers": {stage: breaker.state
                         for stage, breaker in self.breakers.items()},
            "shed_mode": self.shed_mode,
            "default_deadline_ms": self.default_deadline_ms,
        }
        if self.admission is not None:
            state["admission"] = self.admission.snapshot()
        if self.canary is not None:
            state["canary"] = self.canary.snapshot()
        if self.quality is not None:
            state["quality"] = self.quality.snapshot()
        if self.audit is not None:
            state["audit"] = self.audit.snapshot()
        if self.slo is not None:
            state["slo"] = self.slo.snapshot()
        return state

    # -- the chain ---------------------------------------------------------
    def predict_many_explained(
        self, pairs: list[tuple[PhysicalPlan, ResourceProfile]],
        fast: bool = True,
        deadline: Deadline | None = None,
    ) -> ExplainedPredictions:
        """Run the fallback chain for a batch of (plan, resources) pairs.

        Tries each stage in order. A stage is skipped without running
        when its breaker is open; input-validation rejections (bad
        *request*, e.g. an oversized plan) skip the RAAL stage without
        counting against its breaker, since they say nothing about the
        model's health. Blown deadlines and admission sheds likewise
        degrade without tripping the breaker — they are load signals,
        not model failures. Raises :class:`PredictionError` only when
        every stage fails (or :class:`~repro.errors.Overloaded` when a
        shed occurs under ``shed_mode="reject"``).
        """
        if not pairs:
            return ExplainedPredictions(costs=np.zeros(0), source=self.chain[0])
        if deadline is None and self.default_deadline_ms is not None:
            deadline = Deadline.from_ms(self.default_deadline_ms,
                                        clock=self._clock)
        started = self._clock()
        with obs.span("guarded_predict", pairs=len(pairs)) as sp:
            obs.inc("guard.requests_total", help="Guarded prediction requests")
            reasons: list[str] = []
            for stage in self.chain:
                breaker = self.breakers[stage]
                stats = self.stats[stage]
                tier: str | None = None
                if stage == "raal":
                    problem = self._validate_inputs(pairs)
                    if problem is not None:
                        stats.rejected_input += 1
                        obs.inc("guard.raal.rejected_input_total",
                                help="Requests the learned model refused")
                        obs.emit_event("guard", "rejected_input",
                                       stage="raal", reason=problem)
                        reasons.append(f"raal: {problem}")
                        continue
                    if self.ladder is not None and fast:
                        tier = self.ladder.precision()
                        if tier is None:
                            stats.ladder_fallback += 1
                            obs.inc("guard.raal.ladder_fallback_total",
                                    help="Requests routed past the learned "
                                         "model while the ladder sat in "
                                         "FALLBACK")
                            reasons.append("raal: ladder in fallback")
                            continue
                        if tier in ("f64", self.predictor.config.precision):
                            tier = None  # healthy rung serves the base tier
                if not breaker.allow():
                    stats.skipped_open += 1
                    obs.inc(f"guard.{stage}.skipped_open_total",
                            help="Stage skipped while breaker open")
                    reasons.append(f"{stage}: circuit open")
                    continue
                try:
                    if stage == "raal":
                        costs = self._guarded_raal(pairs, fast=fast,
                                                   deadline=deadline, tier=tier)
                    else:
                        costs = self._run_stage(stage, pairs, fast=fast)
                except Overloaded as exc:
                    stats.shed += 1
                    obs.emit_event("guard", "shed", stage="raal",
                                   error=str(exc))
                    reasons.append(f"raal: shed — {exc}")
                    if self.shed_mode == "reject":
                        raise
                    continue
                except DeadlineExceeded as exc:
                    stats.deadline_exceeded += 1
                    obs.inc("guard.raal.deadline_exceeded_total",
                            help="Learned-stage attempts abandoned past "
                                 "their deadline")
                    obs.emit_event("guard", "deadline_exceeded",
                                   stage="raal", error=str(exc))
                    reasons.append(f"raal: deadline_exceeded — {exc}")
                    continue
                except Exception as exc:  # reliability boundary: degrade, never crash
                    breaker.record_failure()
                    stats.failures += 1
                    obs.inc(f"guard.{stage}.failures_total",
                            help="Stage failures")
                    obs.emit_event("guard", "stage_failure",
                                   stage=stage, error=str(exc))
                    reasons.append(f"{stage}: {exc}")
                    continue
                breaker.record_success()
                stats.served += 1
                obs.inc(f"guard.{stage}.served_total",
                        help="Requests answered by this stage")
                if stage == "raal" and tier is not None:
                    stats.degraded_precision += 1
                    obs.inc("guard.raal.degraded_precision_total",
                            help="Learned answers served at a ladder-"
                                 "degraded precision tier")
                    reasons.append(f"raal: degraded_precision:{tier}")
                degraded = stage != self.chain[0]
                sp.annotate(source=stage, degraded=degraded)
                if degraded:
                    obs.inc("guard.degraded_total",
                            help="Requests served by a fallback stage")
                    obs.emit_event("guard", "fallback", source=stage,
                                   reason="; ".join(reasons) or None)
                reason = "; ".join(reasons) or None
                request_id = self._record_served(
                    pairs, costs, stage=stage, tier=tier, reason=reason,
                    latency=self._clock() - started)
                return ExplainedPredictions(
                    costs=costs, source=stage, reason=reason,
                    request_id=request_id,
                )
            obs.inc("guard.exhausted_total",
                    help="Requests for which every stage failed")
            obs.emit_event("guard", "chain_exhausted",
                           reason="; ".join(reasons))
            raise PredictionError(
                "all fallback stages failed: " + "; ".join(reasons))

    # -- the feedback loop -------------------------------------------------
    def _record_served(self, pairs, costs: np.ndarray, stage: str,
                       tier: str | None, reason: str | None,
                       latency: float) -> str | None:
        """Audit the served answers and feed the latency SLO (best effort)."""
        obs.observe("guard.latency_seconds", latency,
                    help="End-to-end guarded request latency")
        if self.slo is not None and "latency" in self.slo.names():
            self.slo.record("latency", latency)
        if self.audit is None:
            return None
        request_id = self.audit.next_request_id()
        if stage == "raal":
            served_tier = tier or self.predictor.config.precision
        else:
            served_tier = None
        for i, (plan, resources) in enumerate(pairs):
            try:
                fingerprint = plan_fingerprint(plan)
                nodes = int(plan.num_nodes)
            except Exception:
                fingerprint, nodes = None, None
            record = self.audit.record(
                request_id, index=i,
                plan_fingerprint=fingerprint, plan_nodes=nodes,
                resources={
                    "executors": resources.executors,
                    "executor_cores": resources.executor_cores,
                    "executor_memory_gb": resources.executor_memory_gb,
                },
                tier=served_tier, source=stage, latency_seconds=latency,
                prediction_seconds=float(costs[i]),
                workload=self.workload, reason=reason)
            if record is None:
                break  # per-request cap reached; the trail counted it
        return request_id

    def record_observation(self, request_id: str, observed_seconds: float,
                           index: int = 0) -> float | None:
        """Close the loop: attach an observed runtime to a served answer.

        Looks the prediction up in the audit trail by ``(request_id,
        index)``, records the ground truth there, feeds the q-error to
        the quality tracker (learned-stage answers only — the tracker
        measures the model, not the analytic fallbacks) and the
        ``qerror`` SLO (every served answer — users experience fallback
        inaccuracy too), and couples a drifting detector into the
        ladder. Returns the sample's q-error, or ``None`` when the
        record is unknown/evicted or ground truth is unusable.
        """
        if self.audit is None:
            raise PredictionError(
                "record_observation requires an AuditTrail (pass audit=... "
                "to GuardedCostPredictor)")
        record = self.audit.observe(request_id, observed_seconds, index=index)
        if record is None or record.q_error is None:
            return None
        if self.quality is not None and record.source == "raal":
            self.quality.record(record.prediction_seconds, observed_seconds,
                                tier=record.tier, workload=record.workload)
            self._couple_drift()
        if self.slo is not None and "qerror" in self.slo.names():
            self.slo.record("qerror", record.q_error)
        return record.q_error

    def _couple_drift(self) -> None:
        """Drifting accuracy drops the ladder to its analytic fallback.

        Called after every quality-tracked feedback sample: while the
        detector reports drift, the learned model's answers are not
        trusted at *any* precision tier, so the ladder is (re-)tripped
        to FALLBACK. The ladder's dwell probe still climbs back
        periodically; if the feedback stream keeps drifting the next
        sample trips it again, and once the detector recovers the probe
        sticks.
        """
        if self.quality is None or self.ladder is None:
            return
        detector = self.quality.drift
        if detector is not None and detector.state == DRIFT:
            self.ladder.trip_drift(detector.last_reason or "accuracy drift")

    # -- stages ------------------------------------------------------------
    def _run_stage(self, stage: str, pairs, fast: bool) -> np.ndarray:
        if stage == "gpsj":
            return self._gpsj_costs(pairs)
        return self._heuristic_costs(pairs)

    def _guarded_raal(self, pairs, fast: bool, deadline: Deadline | None,
                      tier: str | None) -> np.ndarray:
        """Admission-gated, ladder-tiered, retried learned prediction.

        Learned-stage latency feeds the ladder on success *and* on a
        blown deadline — overruns are exactly the signal that should
        push it down. Generic failures do not feed it (the breaker owns
        those).
        """
        def _on_retry(retry_index: int, exc: BaseException) -> None:
            obs.inc("guard.raal.retry_attempts_total",
                    help="Transient-fault retries of the learned model")
            obs.emit_event("guard", "retry", stage="raal",
                           attempt=retry_index + 1, error=str(exc))

        admit = (self.admission.admit(deadline)
                 if self.admission is not None else nullcontext())
        with admit:
            start = self._clock()
            try:
                costs = retry_call(
                    lambda: self._raal_costs(pairs, fast=fast,
                                             deadline=deadline, tier=tier),
                    policy=self.retry_policy, sleep=self._sleep,
                    give_up_on=(DeadlineExceeded, Overloaded),
                    on_retry=_on_retry)
            except DeadlineExceeded:
                if self.ladder is not None:
                    self.ladder.record(self._clock() - start)
                raise
            if self.ladder is not None:
                self.ladder.record(self._clock() - start)
            return costs

    def _tier_predictor(self, tier: str | None) -> CostPredictor:
        """The serving predictor for a ladder tier (base config when None)."""
        if tier is None or tier == self.predictor.config.precision:
            return self.predictor
        cached = self._tier_predictors.get(tier)
        if cached is None:
            cached = self.predictor.configured(
                replace(self.predictor.config, precision=tier))
            self._tier_predictors[tier] = cached
        return cached

    def _raal_costs(self, pairs, fast: bool, deadline: Deadline | None = None,
                    tier: str | None = None) -> np.ndarray:
        encoded = self.predictor.encoder.encode_many(pairs)
        bad = [i for i, e in enumerate(encoded)
               if not (np.all(np.isfinite(e.node_features))
                       and np.all(np.isfinite(e.resources))
                       and np.all(np.isfinite(e.extras)))]
        if bad:
            raise PredictionError(
                f"non-finite encoded features for {len(bad)} of "
                f"{len(encoded)} samples (first at index {bad[0]})")
        if deadline is not None:
            deadline.check("after encode")
        # Route through the (possibly ladder-degraded) configured engine
        # so precision tier and bucket threading apply under the guard.
        serving = self._tier_predictor(tier)
        costs = serving.predict_encoded(encoded, fast=fast, deadline=deadline)
        if not np.all(np.isfinite(costs)):
            raise PredictionError("model produced non-finite costs")
        saturated = getattr(self.predictor.trainer, "last_saturated", 0)
        if saturated:
            raise PredictionError(
                f"model output saturated the log-cost clamp for "
                f"{saturated} of {len(costs)} samples")
        if (tier is not None and self.canary is not None
                and self.canary.should_sample()):
            self._shadow_canary(encoded, costs, tier)
        return costs

    def _shadow_canary(self, encoded, costs: np.ndarray, tier: str) -> None:
        """Shadow-score a degraded answer on the f64 path (best effort).

        Runs without a deadline — the shadow is sampled bookkeeping, not
        part of the serving path — and swallows its own failures.
        """
        try:
            reference = self._tier_predictor("f64").predict_encoded(encoded)
        except Exception as exc:
            obs.inc("canary.errors_total",
                    help="Canary shadow predictions that failed")
            obs.emit_event("canary", "shadow_error", error=str(exc))
            return
        tripped = self.canary.observe(np.asarray(costs),
                                      np.asarray(reference), tier)
        if tripped and self.ladder is not None:
            self.ladder.trip_accuracy(f"canary drift on tier {tier}")

    def _gpsj_costs(self, pairs) -> np.ndarray:
        if self.gpsj is None:
            raise PredictionError("no GPSJ model configured")
        costs = np.array([self.gpsj.estimate(plan, resources)
                          for plan, resources in pairs])
        if not np.all(np.isfinite(costs)) or np.any(costs < 0):
            raise PredictionError("GPSJ produced non-finite or negative costs")
        return costs

    def _heuristic_costs(self, pairs) -> np.ndarray:
        return np.array([static_heuristic_cost(plan, resources)
                         for plan, resources in pairs])

    # -- input validation --------------------------------------------------
    def _validate_inputs(self, pairs) -> str | None:
        """Reason string when the request cannot go to the learned model."""
        structure = self.predictor.encoder.structure
        max_nodes = structure.max_nodes if structure is not None else None
        for i, (plan, resources) in enumerate(pairs):
            if max_nodes is not None and plan.num_nodes > max_nodes:
                return (f"plan {i} has {plan.num_nodes} nodes, exceeding "
                        f"the encoder's max_nodes={max_nodes}")
            features = resources.as_features()
            if not np.all(np.isfinite(features)):
                return f"resource profile {i} has non-finite features"
            if resources.executor_memory_gb <= 0 or resources.task_slots < 1:
                return f"resource profile {i} has non-positive resources"
            for node in plan.nodes():
                if not (np.isfinite(node.est_rows) and np.isfinite(node.est_bytes)):
                    return f"plan {i} carries non-finite cardinality estimates"
        return None
