"""Guarded cost prediction: the learned model may never sink a query.

A learned cost model sitting inside the optimizer loop (plan selection,
resource recommendation) must degrade, not crash: a corrupt checkpoint,
a poisoned vocabulary, an oversized plan, or a NaN forward should fall
back to the analytic GPSJ estimate — and if even that fails, to a
static heuristic that cannot fail. :class:`GuardedCostPredictor` wraps
a :class:`~repro.core.predictor.CostPredictor` with exactly that chain:

    RAAL (learned) → GPSJ (analytic) → static heuristic

Every stage is protected by a circuit breaker (skip a stage outright
after K consecutive failures, re-probe after a cooldown) and the RAAL
stage additionally retries transient faults with bounded backoff.
Every answer carries provenance: which stage produced it and, when the
chain degraded, why.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.baselines.gpsj import GPSJCostModel
from repro.cluster.resources import ResourceProfile
from repro.core.predictor import CostPredictor
from repro.errors import PredictionError
from repro.plan.physical import PhysicalPlan
from repro.reliability.circuit import BreakerConfig, CircuitBreaker
from repro.reliability.retry import RetryPolicy, retry_call

__all__ = [
    "GuardedPrediction",
    "ExplainedPredictions",
    "GuardedCostPredictor",
    "static_heuristic_cost",
    "DEFAULT_CHAIN",
]

DEFAULT_CHAIN = ("raal", "gpsj", "heuristic")

#: Fallback-of-last-resort cost when even the heuristic inputs are junk.
_FLOOR_SECONDS = 1.0


def static_heuristic_cost(plan: PhysicalPlan, resources: ResourceProfile) -> float:
    """Total-function cost estimate used when every model is down.

    A crude linear model — per-operator overhead plus scan volume over
    aggregate disk bandwidth — clamped to a positive finite value. It
    exists to keep plan selection *ranked sanely* (bigger plans cost
    more), not to be accurate.
    """
    try:
        nodes = plan.nodes()
        total_bytes = 0.0
        for node in nodes:
            est = float(node.est_bytes)
            if np.isfinite(est) and est > 0:
                total_bytes += est
        slots = max(int(resources.task_slots), 1)
        disk = float(resources.disk_throughput_mbps)
        if not np.isfinite(disk) or disk <= 0:
            disk = 100.0
        seconds = 0.5 * len(nodes) + total_bytes * 6000.0 / (disk * 1e6 * slots)
        if not np.isfinite(seconds) or seconds <= 0:
            return _FLOOR_SECONDS
        return float(seconds)
    except Exception:
        return _FLOOR_SECONDS


@dataclass(frozen=True)
class GuardedPrediction:
    """One guarded cost estimate with provenance."""

    seconds: float
    source: str
    reason: str | None = None

    @property
    def degraded(self) -> bool:
        """Whether the answer came from a fallback stage."""
        return self.source != DEFAULT_CHAIN[0]


@dataclass(frozen=True)
class ExplainedPredictions:
    """A batch of guarded cost estimates with shared provenance.

    All costs in one call come from the same stage — the chain degrades
    per *request*, not per sample, so a selector never ranks plans
    scored by different models against each other.
    """

    costs: np.ndarray
    source: str
    reason: str | None = None


@dataclass
class _StageStats:
    """Per-stage call accounting (observability for tests and doctor)."""

    served: int = 0
    failures: int = 0
    skipped_open: int = 0
    rejected_input: int = 0


class GuardedCostPredictor:
    """Fallback-chain wrapper around a trained :class:`CostPredictor`.

    Duck-type compatible with :class:`CostPredictor` (``predict``,
    ``predict_many``, ``predict_grid``), so :class:`PlanSelector` and
    :class:`ResourceAdvisor` accept it unchanged — and when they detect
    the ``*_explained`` variants they surface provenance in their
    results.

    Parameters
    ----------
    predictor:
        The trained learned-model predictor (the "raal" stage).
    gpsj:
        Analytic fallback model; when ``None`` the "gpsj" stage reports
        itself unavailable and the chain skips to the heuristic.
    chain:
        Stage order; a subset/reordering of ``("raal", "gpsj",
        "heuristic")``.
    breaker_config:
        Trip threshold / cooldown shared by each stage's breaker.
    retry_policy:
        Bounded-backoff retry applied to the RAAL stage only (the
        analytic stages are deterministic — retrying them is pointless).
    clock / sleep:
        Injectable time sources for deterministic tests.
    """

    def __init__(
        self,
        predictor: CostPredictor,
        gpsj: GPSJCostModel | None = None,
        chain: tuple[str, ...] = DEFAULT_CHAIN,
        breaker_config: BreakerConfig | None = None,
        retry_policy: RetryPolicy | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        unknown = set(chain) - set(DEFAULT_CHAIN)
        if unknown:
            raise PredictionError(f"unknown fallback stages: {sorted(unknown)}")
        if not chain:
            raise PredictionError("fallback chain cannot be empty")
        self.predictor = predictor
        self.gpsj = gpsj
        self.chain = tuple(chain)
        self.retry_policy = retry_policy or RetryPolicy(attempts=2, base_delay=0.0)
        self._sleep = sleep
        self.breakers = {
            stage: CircuitBreaker(config=breaker_config, clock=clock)
            for stage in self.chain
        }
        self.stats = {stage: _StageStats() for stage in self.chain}

    # -- CostPredictor-compatible surface ---------------------------------
    @property
    def encoder(self):
        """The wrapped predictor's encoder (CostPredictor compatibility)."""
        return self.predictor.encoder

    @property
    def trainer(self):
        """The wrapped predictor's trainer (CostPredictor compatibility)."""
        return self.predictor.trainer

    def predict(self, plan: PhysicalPlan, resources: ResourceProfile) -> float:
        """Guarded cost (seconds) of one (plan, resources) pair."""
        return self.predict_explained(plan, resources).seconds

    def predict_explained(self, plan: PhysicalPlan,
                          resources: ResourceProfile) -> GuardedPrediction:
        """Guarded cost of one pair, with provenance."""
        explained = self.predict_many_explained([(plan, resources)])
        return GuardedPrediction(
            seconds=float(explained.costs[0]),
            source=explained.source,
            reason=explained.reason,
        )

    def predict_many(self, pairs: list[tuple[PhysicalPlan, ResourceProfile]],
                     fast: bool = True) -> np.ndarray:
        """Guarded cost vector (drop-in for ``CostPredictor.predict_many``)."""
        return self.predict_many_explained(pairs, fast=fast).costs

    def predict_grid(self, plans: list[PhysicalPlan],
                     profiles: list[ResourceProfile],
                     fast: bool = True) -> np.ndarray:
        """Guarded cost matrix (drop-in for ``CostPredictor.predict_grid``)."""
        return self.predict_grid_explained(plans, profiles, fast=fast).costs

    def predict_grid_explained(self, plans: list[PhysicalPlan],
                               profiles: list[ResourceProfile],
                               fast: bool = True) -> ExplainedPredictions:
        """Guarded ``(len(profiles), len(plans))`` grid with provenance."""
        pairs = [(plan, profile) for profile in profiles for plan in plans]
        explained = self.predict_many_explained(pairs, fast=fast)
        return ExplainedPredictions(
            costs=explained.costs.reshape(len(profiles), len(plans)),
            source=explained.source,
            reason=explained.reason,
        )

    # -- the chain ---------------------------------------------------------
    def predict_many_explained(
        self, pairs: list[tuple[PhysicalPlan, ResourceProfile]],
        fast: bool = True,
    ) -> ExplainedPredictions:
        """Run the fallback chain for a batch of (plan, resources) pairs.

        Tries each stage in order. A stage is skipped without running
        when its breaker is open; input-validation rejections (bad
        *request*, e.g. an oversized plan) skip the RAAL stage without
        counting against its breaker, since they say nothing about the
        model's health. Raises :class:`PredictionError` only when every
        stage fails.
        """
        if not pairs:
            return ExplainedPredictions(costs=np.zeros(0), source=self.chain[0])
        reasons: list[str] = []
        for stage in self.chain:
            breaker = self.breakers[stage]
            stats = self.stats[stage]
            if stage == "raal":
                problem = self._validate_inputs(pairs)
                if problem is not None:
                    stats.rejected_input += 1
                    reasons.append(f"raal: {problem}")
                    continue
            if not breaker.allow():
                stats.skipped_open += 1
                reasons.append(f"{stage}: circuit open")
                continue
            try:
                costs = self._run_stage(stage, pairs, fast=fast)
            except Exception as exc:  # reliability boundary: degrade, never crash
                breaker.record_failure()
                stats.failures += 1
                reasons.append(f"{stage}: {exc}")
                continue
            breaker.record_success()
            stats.served += 1
            return ExplainedPredictions(
                costs=costs, source=stage,
                reason="; ".join(reasons) or None,
            )
        raise PredictionError(
            "all fallback stages failed: " + "; ".join(reasons))

    # -- stages ------------------------------------------------------------
    def _run_stage(self, stage: str, pairs, fast: bool) -> np.ndarray:
        if stage == "raal":
            return retry_call(
                lambda: self._raal_costs(pairs, fast=fast),
                policy=self.retry_policy, sleep=self._sleep)
        if stage == "gpsj":
            return self._gpsj_costs(pairs)
        return self._heuristic_costs(pairs)

    def _raal_costs(self, pairs, fast: bool) -> np.ndarray:
        encoded = self.predictor.encoder.encode_many(pairs)
        bad = [i for i, e in enumerate(encoded)
               if not (np.all(np.isfinite(e.node_features))
                       and np.all(np.isfinite(e.resources))
                       and np.all(np.isfinite(e.extras)))]
        if bad:
            raise PredictionError(
                f"non-finite encoded features for {len(bad)} of "
                f"{len(encoded)} samples (first at index {bad[0]})")
        costs = self.predictor.trainer.predict_seconds(encoded, fast=fast)
        if not np.all(np.isfinite(costs)):
            raise PredictionError("model produced non-finite costs")
        saturated = getattr(self.predictor.trainer, "last_saturated", 0)
        if saturated:
            raise PredictionError(
                f"model output saturated the log-cost clamp for "
                f"{saturated} of {len(costs)} samples")
        return costs

    def _gpsj_costs(self, pairs) -> np.ndarray:
        if self.gpsj is None:
            raise PredictionError("no GPSJ model configured")
        costs = np.array([self.gpsj.estimate(plan, resources)
                          for plan, resources in pairs])
        if not np.all(np.isfinite(costs)) or np.any(costs < 0):
            raise PredictionError("GPSJ produced non-finite or negative costs")
        return costs

    def _heuristic_costs(self, pairs) -> np.ndarray:
        return np.array([static_heuristic_cost(plan, resources)
                         for plan, resources in pairs])

    # -- input validation --------------------------------------------------
    def _validate_inputs(self, pairs) -> str | None:
        """Reason string when the request cannot go to the learned model."""
        structure = self.predictor.encoder.structure
        max_nodes = structure.max_nodes if structure is not None else None
        for i, (plan, resources) in enumerate(pairs):
            if max_nodes is not None and plan.num_nodes > max_nodes:
                return (f"plan {i} has {plan.num_nodes} nodes, exceeding "
                        f"the encoder's max_nodes={max_nodes}")
            features = resources.as_features()
            if not np.all(np.isfinite(features)):
                return f"resource profile {i} has non-finite features"
            if resources.executor_memory_gb <= 0 or resources.task_slots < 1:
                return f"resource profile {i} has non-positive resources"
            for node in plan.nodes():
                if not (np.isfinite(node.est_rows) and np.isfinite(node.est_bytes)):
                    return f"plan {i} carries non-finite cardinality estimates"
        return None
