"""Reliability layer: the learned cost model may degrade, never crash.

Four pieces, composed by :class:`GuardedCostPredictor`:

* :mod:`repro.reliability.guard` — the RAAL → GPSJ → heuristic fallback
  chain with input validation and per-answer provenance;
* :mod:`repro.reliability.circuit` — per-stage circuit breakers;
* :mod:`repro.reliability.retry` — bounded retry with backoff;
* :mod:`repro.reliability.faults` — deterministic fault injection used
  by the test suite to prove every degradation path engages.
"""

from repro.reliability.circuit import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerConfig,
    CircuitBreaker,
)
from repro.reliability.faults import FaultInjector
from repro.reliability.guard import (
    DEFAULT_CHAIN,
    ExplainedPredictions,
    GuardedCostPredictor,
    GuardedPrediction,
    static_heuristic_cost,
)
from repro.reliability.retry import RetryPolicy, compute_backoff, retry_call

__all__ = [
    "BreakerConfig",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "FaultInjector",
    "GuardedCostPredictor",
    "GuardedPrediction",
    "ExplainedPredictions",
    "static_heuristic_cost",
    "DEFAULT_CHAIN",
    "RetryPolicy",
    "compute_backoff",
    "retry_call",
]
