"""Reliability layer: the learned cost model may degrade, never crash.

Composed by :class:`GuardedCostPredictor`:

* :mod:`repro.reliability.guard` — the RAAL → GPSJ → heuristic fallback
  chain with input validation and per-answer provenance;
* :mod:`repro.reliability.circuit` — per-stage circuit breakers;
* :mod:`repro.reliability.retry` — bounded retry with backoff;
* :mod:`repro.reliability.deadline` — per-request latency budgets that
  abandon learned-model work past the deadline;
* :mod:`repro.reliability.admission` — bounded-concurrency admission
  control that sheds requests fast under saturation;
* :mod:`repro.reliability.ladder` — the adaptive precision-degradation
  ladder (f64 → f32 → int8 → analytic-only) driven by rolling p99;
* :mod:`repro.reliability.canary` — the accuracy canary shadow-scoring
  degraded answers against the f64 path;
* :mod:`repro.reliability.faults` — deterministic fault injection used
  by the test suite to prove every degradation path engages.
"""

from repro.reliability.admission import AdmissionConfig, AdmissionController
from repro.reliability.canary import AccuracyCanary
from repro.reliability.circuit import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerConfig,
    CircuitBreaker,
)
from repro.reliability.deadline import Deadline
from repro.reliability.faults import FaultInjector
from repro.reliability.guard import (
    DEFAULT_CHAIN,
    SHED_MODES,
    ExplainedPredictions,
    GuardedCostPredictor,
    GuardedPrediction,
    static_heuristic_cost,
)
from repro.reliability.ladder import (
    LADDER_STATES,
    DegradationLadder,
    LadderConfig,
    LadderTransition,
)
from repro.reliability.retry import RetryPolicy, compute_backoff, retry_call

__all__ = [
    "BreakerConfig",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "AdmissionConfig",
    "AdmissionController",
    "AccuracyCanary",
    "Deadline",
    "DegradationLadder",
    "LadderConfig",
    "LadderTransition",
    "LADDER_STATES",
    "FaultInjector",
    "GuardedCostPredictor",
    "GuardedPrediction",
    "ExplainedPredictions",
    "static_heuristic_cost",
    "DEFAULT_CHAIN",
    "SHED_MODES",
    "RetryPolicy",
    "compute_backoff",
    "retry_call",
]
