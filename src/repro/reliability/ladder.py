"""Adaptive precision-degradation ladder: trade accuracy for headroom.

Under sustained load the cheapest way to restore latency headroom is to
serve from a cheaper precision tier. :class:`DegradationLadder` is a
small hysteretic state machine over the engine's tiers:

    HEALTHY (f64) → DEGRADED_F32 → DEGRADED_INT8 → FALLBACK (analytic)

* **Step down** when the rolling p99 of learned-model latency exceeds
  ``degrade_p99`` (with at least ``min_samples`` observations at the
  current rung).
* **Step up** hysteretically: only after ``hold_seconds`` at the
  current rung *and* a rolling p99 below ``recover_p99`` (default half
  the degrade threshold) — so the ladder does not flap around the
  threshold.
* **FALLBACK** means "skip the learned model entirely" (the guarded
  chain serves GPSJ/heuristic). It auto-probes back up to the int8
  rung after ``hold_seconds``, so a recovered system climbs out even
  though no learned-model samples accrue while fully degraded.
* **Breaker coupling**: when the RAAL stage's circuit breaker opens the
  ladder drops straight to FALLBACK; the breaker's own half-open probe
  machinery then governs re-entry.
* **Accuracy quarantine**: the shadow canary
  (:class:`~repro.reliability.canary.AccuracyCanary`) trips the ladder
  back *up* one rung when a degraded tier drifts past its accuracy
  budget, and quarantines the drifting rung for
  ``quarantine_seconds`` so latency pressure cannot immediately push
  the ladder back onto a tier that is returning wrong answers.

Every transition updates the ``health.state`` gauge (the rung index:
0 = healthy … 3 = fallback) and emits a ``ladder_transition`` event.
The window is cleared on every transition so each rung is judged only
by its own samples.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro import obs
from repro.errors import ReproError
from repro.reliability.circuit import HALF_OPEN, OPEN

__all__ = ["LadderConfig", "DegradationLadder", "LADDER_STATES"]

#: Rung order: state name → precision tier served at that rung
#: (``None`` = skip the learned model entirely).
LADDER_STATES: tuple[tuple[str, str | None], ...] = (
    ("healthy", "f64"),
    ("degraded_f32", "f32"),
    ("degraded_int8", "int8"),
    ("fallback", None),
)


@dataclass(frozen=True)
class LadderConfig:
    """Thresholds and hysteresis of one degradation ladder."""

    #: Rolling p99 (seconds) above which the ladder steps down a rung.
    degrade_p99: float = 0.050
    #: Rolling p99 below which the ladder may step back up; defaults to
    #: ``degrade_p99 / 2`` (hysteresis band).
    recover_p99: float | None = None
    #: Rolling window size (latency samples) per rung.
    window: int = 64
    #: Samples required at the current rung before any transition.
    min_samples: int = 16
    #: Minimum dwell time between transitions; also the FALLBACK
    #: auto-probe interval.
    hold_seconds: float = 2.0
    #: How long an accuracy-tripped rung stays off-limits.
    quarantine_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.degrade_p99 <= 0:
            raise ReproError(f"degrade_p99 must be > 0, got {self.degrade_p99}")
        recover = self.effective_recover_p99
        if recover >= self.degrade_p99:
            raise ReproError(
                f"recover_p99 ({recover}) must be below degrade_p99 "
                f"({self.degrade_p99}) for hysteresis")
        if self.window < self.min_samples or self.min_samples < 1:
            raise ReproError(
                f"need window >= min_samples >= 1, got window={self.window}, "
                f"min_samples={self.min_samples}")
        if self.hold_seconds < 0 or self.quarantine_seconds < 0:
            raise ReproError("hold/quarantine durations must be non-negative")

    @property
    def effective_recover_p99(self) -> float:
        """The step-up threshold (explicit, or half the degrade bar)."""
        return (self.recover_p99 if self.recover_p99 is not None
                else self.degrade_p99 / 2.0)


@dataclass(frozen=True)
class LadderTransition:
    """One recorded state change (for tests, doctor, and benchmarks)."""

    at: float
    old: str
    new: str
    reason: str


class DegradationLadder:
    """Hysteretic health state machine over the precision tiers."""

    def __init__(self, config: LadderConfig | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.config = config or LadderConfig()
        self._clock = clock
        self._lock = threading.RLock()
        self._rung = 0
        self._samples: deque[float] = deque(maxlen=self.config.window)
        self._last_transition = clock()
        self._max_rung = len(LADDER_STATES) - 1   # quarantine ceiling
        self._quarantine_expires = -np.inf
        self._breaker_open = False
        self.history: list[LadderTransition] = []
        obs.set_gauge("health.state", self._rung,
                      help="Degradation ladder rung (0=healthy..3=fallback)")

    # -- introspection -----------------------------------------------------
    @property
    def state(self) -> str:
        """Current rung name (``healthy`` … ``fallback``)."""
        return LADDER_STATES[self._rung][0]

    @property
    def rung(self) -> int:
        """Current rung index (0 = healthy … 3 = fallback)."""
        return self._rung

    def precision(self) -> str | None:
        """Tier to serve the next request at (``None`` = skip RAAL).

        Reading the tier also advances time-driven transitions (the
        FALLBACK auto-probe), so a fully degraded ladder climbs back
        even when no learned-model latencies are being recorded.
        """
        with self._lock:
            self._evaluate()
            return LADDER_STATES[self._rung][1]

    # -- inputs ------------------------------------------------------------
    def record(self, latency_seconds: float) -> None:
        """Feed one learned-model latency sample and re-evaluate."""
        with self._lock:
            self._samples.append(float(latency_seconds))
            self._evaluate()

    def trip_accuracy(self, reason: str) -> None:
        """Canary drift breach: step *up* and quarantine the bad rung."""
        with self._lock:
            if self._rung == 0:
                return
            now = self._clock()
            self._max_rung = self._rung - 1
            self._quarantine_expires = now + self.config.quarantine_seconds
            obs.inc("ladder.accuracy_trips_total",
                    help="Canary-driven precision promotions")
            self._transition(self._rung - 1, f"accuracy trip: {reason}")

    def trip_drift(self, reason: str) -> None:
        """Model-wide accuracy drift: drop to FALLBACK (analytic serve).

        Unlike :meth:`trip_accuracy` — which blames the *degraded tier*
        and promotes back toward f64 — a drift trip means the learned
        model itself has stopped matching reality, so no precision tier
        is trustworthy and the chain should serve its analytic
        fallback. The rung is not pinned: the regular FALLBACK
        auto-probe climbs back after ``hold_seconds``, and as long as
        the feedback stream keeps reporting drift the guard re-trips,
        producing a probe/re-trip cycle until the model is fixed or
        retrained.
        """
        with self._lock:
            bottom = len(LADDER_STATES) - 1
            if self._rung == bottom:
                return
            obs.inc("ladder.drift_trips_total",
                    help="Drift-detector-driven drops to fallback")
            self._transition(bottom, f"drift trip: {reason}")

    def on_breaker_transition(self, old: str, new: str) -> None:
        """Couple the RAAL breaker's state into the ladder.

        An open breaker means the learned model is failing outright —
        no tier will help — so the ladder pins itself to FALLBACK. The
        breaker's half-open probe releases the pin (stepping to the
        int8 rung) so a successful probe can climb the ladder back.
        """
        with self._lock:
            if new == OPEN:
                self._breaker_open = True
                if self._rung != len(LADDER_STATES) - 1:
                    self._transition(len(LADDER_STATES) - 1, "breaker open")
            elif old == OPEN and new == HALF_OPEN:
                self._breaker_open = False
                if self._rung == len(LADDER_STATES) - 1:
                    self._transition(len(LADDER_STATES) - 2,
                                     "breaker half-open probe")
            else:
                self._breaker_open = False

    # -- the state machine -------------------------------------------------
    def _evaluate(self) -> None:
        if self._breaker_open:
            return  # pinned to FALLBACK until the breaker probes
        now = self._clock()
        if now >= self._quarantine_expires:
            self._max_rung = len(LADDER_STATES) - 1
        if now - self._last_transition < self.config.hold_seconds:
            return
        bottom = len(LADDER_STATES) - 1
        if self._rung == bottom:
            # Fully degraded: no learned-model samples accrue, so probe
            # back up on dwell time alone.
            self._transition(bottom - 1, "fallback probe after hold")
            return
        if len(self._samples) < self.config.min_samples:
            return
        p99 = float(np.percentile(np.asarray(self._samples), 99))
        if p99 > self.config.degrade_p99 and self._rung < self._max_rung:
            self._transition(
                self._rung + 1,
                f"p99 {p99 * 1e3:.1f}ms > {self.config.degrade_p99 * 1e3:.1f}ms")
        elif p99 < self.config.effective_recover_p99 and self._rung > 0:
            self._transition(
                self._rung - 1,
                f"p99 {p99 * 1e3:.1f}ms < "
                f"{self.config.effective_recover_p99 * 1e3:.1f}ms")

    def _transition(self, new_rung: int, reason: str) -> None:
        old = self.state
        self._rung = new_rung
        self._samples.clear()
        self._last_transition = self._clock()
        transition = LadderTransition(at=self._last_transition, old=old,
                                      new=self.state, reason=reason)
        self.history.append(transition)
        obs.set_gauge("health.state", new_rung,
                      help="Degradation ladder rung (0=healthy..3=fallback)")
        obs.inc("ladder.transitions_total",
                help="Degradation ladder state changes")
        obs.emit_event("ladder", "ladder_transition", old=old,
                       new=self.state, reason=reason)
