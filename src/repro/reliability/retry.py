"""Bounded retry with exponential backoff.

A small, dependency-free helper used by the guarded prediction path to
absorb transient failures before the fallback chain engages. The sleep
function is injectable so tests run without real delays, and the
backoff schedule is a pure function (:func:`compute_backoff`) that can
be unit-tested in isolation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.errors import ReproError

__all__ = ["RetryPolicy", "compute_backoff", "retry_call"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Shape of a bounded retry loop.

    Parameters
    ----------
    attempts:
        Total number of calls made (first try included); must be >= 1.
    base_delay:
        Sleep before the first retry, in seconds.
    multiplier:
        Exponential growth factor between consecutive retries.
    max_delay:
        Cap on any single sleep, in seconds.
    """

    attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 1.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ReproError(f"retry attempts must be >= 1, got {self.attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ReproError("retry delays must be non-negative")
        if self.multiplier < 1.0:
            raise ReproError(f"retry multiplier must be >= 1, got {self.multiplier}")


def compute_backoff(policy: RetryPolicy, retry_index: int) -> float:
    """Sleep (seconds) before retry number ``retry_index`` (0-based)."""
    return min(policy.base_delay * policy.multiplier ** retry_index,
               policy.max_delay)


def retry_call(
    fn: Callable[[], T],
    policy: RetryPolicy | None = None,
    retry_on: tuple[type[BaseException], ...] = (Exception,),
    give_up_on: tuple[type[BaseException], ...] = (),
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> T:
    """Call ``fn`` up to ``policy.attempts`` times, backing off between tries.

    Exceptions not matching ``retry_on`` propagate immediately, as do
    exceptions matching ``give_up_on`` even when they also match
    ``retry_on`` (a blown deadline or a shed request must never be
    retried — the budget is already gone). The last matching exception
    propagates once attempts are exhausted. ``on_retry(retry_index,
    exc)`` is invoked before each sleep — useful for provenance
    logging.
    """
    policy = policy or RetryPolicy()
    for attempt in range(policy.attempts):
        try:
            return fn()
        except retry_on as exc:
            if give_up_on and isinstance(exc, give_up_on):
                raise
            if attempt == policy.attempts - 1:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            sleep(compute_backoff(policy, attempt))
    raise AssertionError("unreachable")  # pragma: no cover
