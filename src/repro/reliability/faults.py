"""Deterministic fault injection for reliability testing.

Every injector method is seeded (NumPy ``default_rng``) so a test that
corrupts 5% of the model weights corrupts the *same* 5% on every run.
Methods that monkey-patch behaviour return a zero-argument restore
callable, so tests can re-arm the healthy path and exercise breaker
recovery (half-open probe succeeding) without rebuilding fixtures.

The injector only ever touches objects handed to it — it has no global
state and is safe to use against module-scoped fixtures as long as the
restore callables are invoked.
"""

from __future__ import annotations

import os
import pathlib
import time
from typing import Callable

import numpy as np

from repro.errors import EncodingError, ReproError, TrainingError
from repro.nn.layers import Module

__all__ = ["FaultInjector"]


class FaultInjector:
    """Seeded injector of the failure modes the reliability layer guards.

    Parameters
    ----------
    seed:
        Seed of the injector's private RNG; identical seeds reproduce
        identical corruption patterns.
    """

    def __init__(self, seed: int = 0) -> None:
        self.rng = np.random.default_rng(seed)

    # -- model faults ------------------------------------------------------
    def corrupt_weights(self, model: Module, fraction: float = 0.05,
                        value: float = float("nan")) -> list[str]:
        """Overwrite a random ``fraction`` of each parameter with ``value``.

        Returns the names of the corrupted parameters. With the default
        NaN value every forward pass through a touched parameter yields
        non-finite outputs — the "bad checkpoint reached serving"
        scenario.
        """
        if not 0.0 < fraction <= 1.0:
            raise ReproError(f"fraction must be in (0, 1], got {fraction}")
        corrupted = []
        for name, param in model.named_parameters():
            flat = param.data.reshape(-1)
            count = max(1, int(flat.size * fraction))
            idx = self.rng.choice(flat.size, size=count, replace=False)
            flat[idx] = value
            corrupted.append(name)
        return corrupted

    def poison_vocabulary(self, encoder, fraction: float = 0.25,
                          value: float = float("nan")) -> int:
        """Poison rows of the plan encoder's word2vec embedding table.

        Returns the number of poisoned rows. The encoder's plan-side
        cache is cleared so poisoned features cannot be masked by
        earlier clean cache entries.
        """
        semantic = getattr(encoder, "semantic", None)
        if semantic is None or semantic.word2vec is None:
            raise ReproError("encoder has no word2vec vocabulary to poison")
        emb = semantic.word2vec._in_emb
        if emb is None:
            raise ReproError("word2vec model is untrained")
        rows = max(1, int(emb.shape[0] * fraction))
        idx = self.rng.choice(emb.shape[0], size=rows, replace=False)
        emb[idx, :] = value
        if hasattr(encoder, "cache_clear"):
            encoder.cache_clear()
        return int(rows)

    # -- behavioural faults ------------------------------------------------
    def force_encode_errors(self, encoder,
                            message: str = "injected encode fault") -> Callable[[], None]:
        """Make ``encoder.encode``/``encode_many`` raise :class:`EncodingError`.

        Returns a restore callable that re-arms the healthy methods.
        """
        def _boom(*args, **kwargs):
            raise EncodingError(message)

        encoder.encode = _boom
        encoder.encode_many = _boom

        def _restore() -> None:
            encoder.__dict__.pop("encode", None)
            encoder.__dict__.pop("encode_many", None)

        return _restore

    def force_forward_errors(self, model: Module,
                             message: str = "injected forward fault") -> Callable[[], None]:
        """Make the model's forward passes raise :class:`TrainingError`.

        Patches both the autograd ``forward`` and the inference fast
        path. Returns a restore callable.
        """
        def _boom(*args, **kwargs):
            raise TrainingError(message)

        model.forward = _boom
        if hasattr(model, "forward_inference"):
            model.forward_inference = _boom

        def _restore() -> None:
            model.__dict__.pop("forward", None)
            model.__dict__.pop("forward_inference", None)

        return _restore

    def force_bucket_hang(self, model: Module, seconds: float,
                          sleep: Callable[[float], None] = time.sleep,
                          ) -> Callable[[], None]:
        """Stall every inference bucket forward by ``seconds``.

        Wraps the model's fast-path ``forward_inference`` with a sleep
        before delegating — the "slow worker" scenario that deadline
        watchdogs and the degradation ladder must absorb. The hang runs
        *inside* the bucket worker thread, so a threaded
        :class:`~repro.core.execution.BucketExecutor` sees genuinely
        stuck in-flight futures, not a slow submit. Returns a restore
        callable that re-arms the healthy forward.
        """
        if seconds < 0:
            raise ReproError(f"hang seconds must be >= 0, got {seconds}")
        if not hasattr(model, "forward_inference"):
            raise ReproError("model has no inference fast path to stall")
        original = model.forward_inference

        def _stalled(*args, **kwargs):
            sleep(seconds)
            return original(*args, **kwargs)

        model.forward_inference = _stalled

        def _restore() -> None:
            model.__dict__.pop("forward_inference", None)

        return _restore

    def corrupt_precision_cache(self, model: Module, precision: str = "int8",
                                magnitude: float = 0.5) -> int:
        """Skew a cached reduced-precision weight bundle in place.

        Multiplies every dense-head GEMM weight of the model's cached
        ``precision`` bundle by ``1 + magnitude`` **without** touching
        the f64 parameters — the bundle's staleness fingerprint still
        matches, so the corruption survives cache revalidation and only
        an accuracy canary comparing against the f64 path can catch it.
        The bundle must already exist (run one prediction at that tier
        first). Returns the number of arrays corrupted.
        """
        if precision not in ("f32", "int8"):
            raise ReproError(
                f"only cached tiers (f32/int8) can be corrupted, "
                f"got {precision!r}")
        cache = getattr(model, "_inference_weights", None)
        entry = cache.get(precision) if cache else None
        if entry is None:
            raise ReproError(
                f"model has no cached {precision} bundle to corrupt "
                f"(run a prediction at that tier first)")
        weights = entry[1]
        corrupted = 0
        for op in weights.dense:
            if op[0] == "linear":
                gemm = op[1]
                gemm *= 1.0 + magnitude
                corrupted += 1
        if not corrupted:
            raise ReproError("bundle has no dense GEMM weights to corrupt")
        return corrupted

    def force_queue_saturation(self, admission) -> Callable[[], None]:
        """Occupy every admission slot, so real requests queue or shed.

        Acquires ``max_in_flight`` slots on the controller and holds
        them — the "stuck fleet" scenario. Returns a restore callable
        that releases the held slots (idempotent).
        """
        held = 0
        try:
            for _ in range(admission.config.max_in_flight):
                admission.acquire()
                held += 1
        except Exception:
            for _ in range(held):
                admission.release()
            raise

        state = {"held": held}

        def _restore() -> None:
            while state["held"] > 0:
                admission.release()
                state["held"] -= 1

        return _restore

    # -- file faults -------------------------------------------------------
    def truncate_file(self, path: str | os.PathLike,
                      keep_fraction: float = 0.5) -> int:
        """Truncate a file to ``keep_fraction`` of its size (a torn write).

        Returns the new size in bytes. ``keep_fraction=0`` leaves an
        empty file.
        """
        if not 0.0 <= keep_fraction < 1.0:
            raise ReproError(f"keep_fraction must be in [0, 1), got {keep_fraction}")
        p = pathlib.Path(path)
        size = p.stat().st_size
        keep = int(size * keep_fraction)
        with open(p, "rb+") as fh:
            fh.truncate(keep)
        return keep

    def flip_bytes(self, path: str | os.PathLike, count: int = 16) -> list[int]:
        """XOR ``count`` random bytes of a file (silent bit-rot).

        Returns the corrupted offsets. Unlike :meth:`truncate_file` the
        file keeps its size, so only checksum verification catches it.
        """
        p = pathlib.Path(path)
        data = bytearray(p.read_bytes())
        if not data:
            raise ReproError(f"cannot corrupt empty file {p}")
        count = min(count, len(data))
        offsets = sorted(int(i) for i in
                         self.rng.choice(len(data), size=count, replace=False))
        for off in offsets:
            data[off] ^= 0xFF
        p.write_bytes(bytes(data))
        return offsets
