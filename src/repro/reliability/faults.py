"""Deterministic fault injection for reliability testing.

Every injector method is seeded (NumPy ``default_rng``) so a test that
corrupts 5% of the model weights corrupts the *same* 5% on every run.
Methods that monkey-patch behaviour return a zero-argument restore
callable, so tests can re-arm the healthy path and exercise breaker
recovery (half-open probe succeeding) without rebuilding fixtures.

The injector only ever touches objects handed to it — it has no global
state and is safe to use against module-scoped fixtures as long as the
restore callables are invoked.
"""

from __future__ import annotations

import os
import pathlib
from typing import Callable

import numpy as np

from repro.errors import EncodingError, ReproError, TrainingError
from repro.nn.layers import Module

__all__ = ["FaultInjector"]


class FaultInjector:
    """Seeded injector of the failure modes the reliability layer guards.

    Parameters
    ----------
    seed:
        Seed of the injector's private RNG; identical seeds reproduce
        identical corruption patterns.
    """

    def __init__(self, seed: int = 0) -> None:
        self.rng = np.random.default_rng(seed)

    # -- model faults ------------------------------------------------------
    def corrupt_weights(self, model: Module, fraction: float = 0.05,
                        value: float = float("nan")) -> list[str]:
        """Overwrite a random ``fraction`` of each parameter with ``value``.

        Returns the names of the corrupted parameters. With the default
        NaN value every forward pass through a touched parameter yields
        non-finite outputs — the "bad checkpoint reached serving"
        scenario.
        """
        if not 0.0 < fraction <= 1.0:
            raise ReproError(f"fraction must be in (0, 1], got {fraction}")
        corrupted = []
        for name, param in model.named_parameters():
            flat = param.data.reshape(-1)
            count = max(1, int(flat.size * fraction))
            idx = self.rng.choice(flat.size, size=count, replace=False)
            flat[idx] = value
            corrupted.append(name)
        return corrupted

    def poison_vocabulary(self, encoder, fraction: float = 0.25,
                          value: float = float("nan")) -> int:
        """Poison rows of the plan encoder's word2vec embedding table.

        Returns the number of poisoned rows. The encoder's plan-side
        cache is cleared so poisoned features cannot be masked by
        earlier clean cache entries.
        """
        semantic = getattr(encoder, "semantic", None)
        if semantic is None or semantic.word2vec is None:
            raise ReproError("encoder has no word2vec vocabulary to poison")
        emb = semantic.word2vec._in_emb
        if emb is None:
            raise ReproError("word2vec model is untrained")
        rows = max(1, int(emb.shape[0] * fraction))
        idx = self.rng.choice(emb.shape[0], size=rows, replace=False)
        emb[idx, :] = value
        if hasattr(encoder, "cache_clear"):
            encoder.cache_clear()
        return int(rows)

    # -- behavioural faults ------------------------------------------------
    def force_encode_errors(self, encoder,
                            message: str = "injected encode fault") -> Callable[[], None]:
        """Make ``encoder.encode``/``encode_many`` raise :class:`EncodingError`.

        Returns a restore callable that re-arms the healthy methods.
        """
        def _boom(*args, **kwargs):
            raise EncodingError(message)

        encoder.encode = _boom
        encoder.encode_many = _boom

        def _restore() -> None:
            encoder.__dict__.pop("encode", None)
            encoder.__dict__.pop("encode_many", None)

        return _restore

    def force_forward_errors(self, model: Module,
                             message: str = "injected forward fault") -> Callable[[], None]:
        """Make the model's forward passes raise :class:`TrainingError`.

        Patches both the autograd ``forward`` and the inference fast
        path. Returns a restore callable.
        """
        def _boom(*args, **kwargs):
            raise TrainingError(message)

        model.forward = _boom
        if hasattr(model, "forward_inference"):
            model.forward_inference = _boom

        def _restore() -> None:
            model.__dict__.pop("forward", None)
            model.__dict__.pop("forward_inference", None)

        return _restore

    # -- file faults -------------------------------------------------------
    def truncate_file(self, path: str | os.PathLike,
                      keep_fraction: float = 0.5) -> int:
        """Truncate a file to ``keep_fraction`` of its size (a torn write).

        Returns the new size in bytes. ``keep_fraction=0`` leaves an
        empty file.
        """
        if not 0.0 <= keep_fraction < 1.0:
            raise ReproError(f"keep_fraction must be in [0, 1), got {keep_fraction}")
        p = pathlib.Path(path)
        size = p.stat().st_size
        keep = int(size * keep_fraction)
        with open(p, "rb+") as fh:
            fh.truncate(keep)
        return keep

    def flip_bytes(self, path: str | os.PathLike, count: int = 16) -> list[int]:
        """XOR ``count`` random bytes of a file (silent bit-rot).

        Returns the corrupted offsets. Unlike :meth:`truncate_file` the
        file keeps its size, so only checksum verification catches it.
        """
        p = pathlib.Path(path)
        data = bytearray(p.read_bytes())
        if not data:
            raise ReproError(f"cannot corrupt empty file {p}")
        count = min(count, len(data))
        offsets = sorted(int(i) for i in
                         self.rng.choice(len(data), size=count, replace=False))
        for off in offsets:
            data[off] ^= 0xFF
        p.write_bytes(bytes(data))
        return offsets
