"""Micro-model baseline (CLEO / Microlearner style).

The paper's related work covers Microsoft's CLEO and Microlearner,
which estimate cost with "a large number of individual cost models
(micro-model)" — one small learned model per operator type — instead of
one end-to-end network. This module implements that approach as a
third baseline: per-operator ridge regressions over simple features
(log rows in/out, log bytes, resource knobs), summed over the plan.

Its characteristic failure mode, per the paper's argument for
end-to-end models: each micro-model sees its operator in isolation, so
cross-operator interactions (pipelining, shared spills, stage
scheduling) are invisible to it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cluster.resources import ResourceProfile
from repro.errors import TrainingError
from repro.plan.physical import PhysicalNode, PhysicalPlan
from repro.workload.collection import PlanRecord

__all__ = ["MicroModelConfig", "MicroCostModel"]


@dataclass(frozen=True)
class MicroModelConfig:
    """Hyperparameters for the micro-model baseline."""

    ridge_lambda: float = 1e-2
    min_records_per_operator: int = 4


def _node_features(node: PhysicalNode, resources: ResourceProfile) -> np.ndarray:
    """Feature vector of one operator instance.

    Uses *estimated* volumes (like GPSJ, micro-models run at
    optimization time) plus the resource allocation.
    """
    child_rows = sum(max(c.est_rows, 0.0) for c in node.children)
    return np.array([
        1.0,
        math.log1p(max(node.est_rows, 0.0)),
        math.log1p(max(node.est_bytes, 0.0)),
        math.log1p(child_rows),
        resources.executors,
        resources.executor_cores,
        resources.executor_memory_gb,
        math.log1p(resources.network_throughput_mbps),
        math.log1p(resources.disk_throughput_mbps),
    ])


FEATURE_DIM = 9


class MicroCostModel:
    """Sum of per-operator-type ridge regressions.

    Training distributes each record's total (log-)cost across its
    operators proportionally to their estimated byte volume — the
    standard trick micro-model systems use when only end-to-end labels
    are available — then fits one ridge regression per operator type.
    """

    def __init__(self, config: MicroModelConfig | None = None) -> None:
        self.config = config or MicroModelConfig()
        self._weights: dict[str, np.ndarray] = {}
        self._fallback: np.ndarray | None = None

    # -- training ----------------------------------------------------------
    def fit(self, records: list[PlanRecord]) -> "MicroCostModel":
        """Fit per-operator models from plan records."""
        if not records:
            raise TrainingError("micro-model needs at least one record")
        per_op_x: dict[str, list[np.ndarray]] = {}
        per_op_y: dict[str, list[float]] = {}
        all_x: list[np.ndarray] = []
        all_y: list[float] = []
        for record in records:
            nodes = record.plan.nodes()
            volumes = np.array([max(n.est_bytes, 8.0) for n in nodes])
            shares = volumes / volumes.sum()
            log_cost = math.log1p(max(record.cost_seconds, 0.0))
            for node, share in zip(nodes, shares):
                x = _node_features(node, record.resources)
                y = log_cost * float(share)
                per_op_x.setdefault(node.op_name, []).append(x)
                per_op_y.setdefault(node.op_name, []).append(y)
                all_x.append(x)
                all_y.append(y)
        self._fallback = self._ridge(np.array(all_x), np.array(all_y))
        for op_name, xs in per_op_x.items():
            if len(xs) >= self.config.min_records_per_operator:
                self._weights[op_name] = self._ridge(
                    np.array(xs), np.array(per_op_y[op_name]))
        return self

    def _ridge(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        lam = self.config.ridge_lambda
        gram = x.T @ x + lam * np.eye(x.shape[1])
        return np.linalg.solve(gram, x.T @ y)

    # -- prediction ------------------------------------------------------------
    def predict(self, plan: PhysicalPlan, resources: ResourceProfile) -> float:
        """Predicted cost in seconds."""
        if self._fallback is None:
            raise TrainingError("micro-model is not fitted")
        log_cost = 0.0
        for node in plan.nodes():
            weights = self._weights.get(node.op_name, self._fallback)
            log_cost += float(weights @ _node_features(node, resources))
        return float(np.expm1(np.clip(log_cost, 0.0, 25.0)))

    def predict_records(self, records: list[PlanRecord]) -> np.ndarray:
        """Vector of predictions for plan records."""
        return np.array([self.predict(r.plan, r.resources) for r in records])

    @property
    def num_operator_models(self) -> int:
        """How many per-operator micro-models were fitted."""
        return len(self._weights)
