"""Baselines the paper compares against: TLSTM, GPSJ, micro-models."""

from repro.baselines.gpsj import GPSJCostModel, GPSJParameters
from repro.baselines.micromodel import MicroCostModel, MicroModelConfig
from repro.baselines.tlstm import TLSTM, TLSTMConfig, TLSTMTrainer

__all__ = [
    "TLSTM",
    "TLSTMConfig",
    "TLSTMTrainer",
    "GPSJCostModel",
    "GPSJParameters",
    "MicroCostModel",
    "MicroModelConfig",
]
