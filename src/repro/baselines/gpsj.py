"""GPSJ baseline: the analytic Spark SQL cost model (Baldacci &
Golfarelli, 2019).

A hand-crafted cost function over Generalized Projection / Selection /
Join plans, built from cluster and application parameters plus database
statistics — no learning. Per the original's structure, each operator
contributes read, CPU, shuffle-write/read, and broadcast terms derived
from *estimated* cardinalities, and times add up across the pipeline
divided by the application's parallelism.

Its two systematic weaknesses — over-reliance on statistics (it sees
the optimizer's cardinality estimates, not true volumes) and rigid
linear formulas (no spill/broadcast/GC non-linearities) — are exactly
the failure modes the paper attributes to it in Table VI.

``calibrate`` fits the single global scale constant that the original
authors tune by hand ("requires significant person-hours of
engineering"); it does not change the model's shape.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cluster.resources import ResourceProfile
from repro.data.catalog import Catalog
from repro.errors import TrainingError
from repro.plan.physical import (
    BroadcastExchange,
    BroadcastHashJoin,
    BroadcastNestedLoopJoin,
    ExchangeHashPartition,
    ExchangeSinglePartition,
    FileScan,
    FilterExec,
    HashAggregate,
    PhysicalNode,
    PhysicalPlan,
    SortAggregate,
    SortExec,
    SortMergeJoin,
)

__all__ = ["GPSJParameters", "GPSJCostModel"]


@dataclass(frozen=True)
class GPSJParameters:
    """The hand-set constants of the analytic model."""

    cpu_tuple_cost: float = 1e-7       # seconds per tuple of CPU work
    scan_weight: float = 1.0           # disk-read weighting
    shuffle_weight: float = 1.0        # network weighting
    sort_weight: float = 1.5           # sort CPU multiplier (n log n folded in)
    join_weight: float = 1.2
    aggregate_weight: float = 1.0
    broadcast_weight: float = 1.0
    stage_overhead: float = 0.2        # scheduling overhead per blocking op
    data_scale: float = 6000.0         # same row amplification as the cluster


class GPSJCostModel:
    """Analytic cost estimator over physical plans.

    Uses the plan's *estimated* cardinalities (``est_rows`` /
    ``est_bytes``), never the observed ones — matching how the real
    GPSJ model consumes database statistics.
    """

    def __init__(self, catalog: Catalog,
                 params: GPSJParameters | None = None) -> None:
        self.catalog = catalog
        self.params = params or GPSJParameters()
        self.scale_factor = 1.0

    # -- estimation ----------------------------------------------------------
    def estimate(self, plan: PhysicalPlan, resources: ResourceProfile) -> float:
        """Estimated execution time (seconds) of ``plan``."""
        total = 0.0
        for node in plan.nodes():
            total += self._node_cost(node, resources)
        return self.scale_factor * total

    def _node_cost(self, node: PhysicalNode, resources: ResourceProfile) -> float:
        p = self.params
        rows = max(node.est_rows, 1.0) * p.data_scale
        bytes_ = max(node.est_bytes, 8.0) * p.data_scale
        slots = max(resources.task_slots, 1)
        disk = resources.disk_throughput_mbps * 1e6
        net = resources.network_throughput_mbps * 1e6
        active = max(min(resources.executors, resources.nodes), 1)

        if isinstance(node, FileScan):
            return p.scan_weight * bytes_ / (disk * active) \
                + p.cpu_tuple_cost * rows / slots
        if isinstance(node, FilterExec):
            child_rows = max(node.child.est_rows, 1.0) * p.data_scale
            return p.cpu_tuple_cost * child_rows / slots
        if isinstance(node, (ExchangeHashPartition, ExchangeSinglePartition)):
            child_bytes = max(node.child.est_bytes, 8.0) * p.data_scale
            return p.shuffle_weight * child_bytes / (net * active) \
                + p.stage_overhead
        if isinstance(node, BroadcastExchange):
            child_bytes = max(node.child.est_bytes, 8.0) * p.data_scale
            return p.broadcast_weight * child_bytes * resources.executors / net \
                + p.stage_overhead
        if isinstance(node, SortExec):
            n = max(rows, 2.0)
            return p.sort_weight * p.cpu_tuple_cost * n * math.log2(n) / slots
        if isinstance(node, (SortMergeJoin, BroadcastHashJoin)):
            left = max(node.left.est_rows, 1.0) * p.data_scale
            right = max(node.right.est_rows, 1.0) * p.data_scale
            return p.join_weight * p.cpu_tuple_cost * (left + right) / slots
        if isinstance(node, BroadcastNestedLoopJoin):
            left = max(node.left.est_rows, 1.0) * p.data_scale
            right = max(node.right.est_rows, 1.0) * p.data_scale
            return p.join_weight * p.cpu_tuple_cost * left * right / slots
        if isinstance(node, (HashAggregate, SortAggregate)):
            child_rows = max(node.child.est_rows, 1.0) * p.data_scale
            return p.aggregate_weight * p.cpu_tuple_cost * child_rows / slots
        return p.cpu_tuple_cost * rows / slots

    # -- calibration -------------------------------------------------------------
    def calibrate(self, records) -> "GPSJCostModel":
        """Fit the single global scale constant on training records.

        Stands in for the hand-tuning effort the original requires;
        the model's functional form is untouched.
        """
        if not records:
            raise TrainingError("cannot calibrate on zero records")
        self.scale_factor = 1.0
        log_ratios = []
        for record in records:
            raw = self.estimate(record.plan, record.resources)
            if raw > 0 and record.cost_seconds > 0:
                log_ratios.append(np.log(record.cost_seconds / raw))
        if not log_ratios:
            raise TrainingError("all raw estimates were zero")
        # The log-space median minimizes the median absolute log error.
        self.scale_factor = float(np.exp(np.median(log_ratios)))
        return self
