"""TLSTM baseline: tree-structured LSTM cost estimator (Sun & Li, 2019).

The state-of-the-art relational-database cost model the paper compares
against (its Table V). Each plan operator is an LSTM unit; a node's
input is its feature vector and its state combines the states of its
children (child-sum Tree-LSTM):

    h̃   = Σ_k h_k
    i    = σ(W_i x + U_i h̃ + b_i)
    f_k  = σ(W_f x + U_f h_k + b_f)        (one forget gate per child)
    o    = σ(W_o x + U_o h̃ + b_o)
    g    = tanh(W_g x + U_g h̃ + b_g)
    c    = i ⊙ g + Σ_k f_k ⊙ c_k
    h    = o ⊙ tanh(c)

The root's hidden state feeds dense layers that emit the cost. As in
the original, the model is *resource-blind* — exactly the weakness the
paper's RAAL addresses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.encoding.plan_encoder import PlanEncoder
from repro.errors import TrainingError
from repro.nn import Adam, Dropout, Linear, Module, ReLU, Sequential, Tensor
from repro.nn import clip_grad_norm, init, mse_loss, no_grad
from repro.plan.physical import PhysicalNode, PhysicalPlan
from repro.workload.collection import PlanRecord

__all__ = ["TLSTMConfig", "TLSTM", "TLSTMTrainer"]


@dataclass(frozen=True)
class TLSTMConfig:
    """Hyperparameters for the TLSTM baseline."""

    node_dim: int = 60
    hidden_size: int = 48
    dense_sizes: tuple[int, ...] = (48, 24)
    dropout: float = 0.1
    seed: int = 0


class TreeLSTMCell(Module):
    """Child-sum Tree-LSTM cell operating on one node at a time."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        # Fused input projections for i, o, g; f has its own pair.
        self.w_iog = init.xavier_uniform((input_size, 3 * hidden_size), rng)
        self.u_iog = init.orthogonal((hidden_size, 3 * hidden_size), rng)
        self.b_iog = Tensor(np.zeros(3 * hidden_size), requires_grad=True)
        self.w_f = init.xavier_uniform((input_size, hidden_size), rng)
        self.u_f = init.orthogonal((hidden_size, hidden_size), rng)
        self.b_f = Tensor(np.ones(hidden_size), requires_grad=True)

    def forward(self, x: Tensor, child_states: list[tuple[Tensor, Tensor]]) -> tuple[Tensor, Tensor]:
        hs = self.hidden_size
        if child_states:
            h_sum = child_states[0][0]
            for h_k, _ in child_states[1:]:
                h_sum = h_sum + h_k
        else:
            h_sum = Tensor(np.zeros(hs))
        gates = x @ self.w_iog + h_sum @ self.u_iog + self.b_iog
        i = gates[0 * hs : 1 * hs].sigmoid()
        o = gates[1 * hs : 2 * hs].sigmoid()
        g = gates[2 * hs : 3 * hs].tanh()
        c = i * g
        wf_x = x @ self.w_f
        for h_k, c_k in child_states:
            f_k = (wf_x + h_k @ self.u_f + self.b_f).sigmoid()
            c = c + f_k * c_k
        h = o * c.tanh()
        return h, c


class TLSTM(Module):
    """Tree-LSTM cost model over physical plan trees."""

    def __init__(self, config: TLSTMConfig) -> None:
        super().__init__()
        self.config = config
        rng = np.random.default_rng(config.seed)
        self.embedding = Linear(config.node_dim, config.hidden_size, rng)
        self.cell = TreeLSTMCell(config.hidden_size, config.hidden_size, rng)
        layers: list[Module] = []
        in_dim = config.hidden_size
        for size in config.dense_sizes:
            layers.extend([Linear(in_dim, size, rng), ReLU(),
                           Dropout(config.dropout, rng)])
            in_dim = size
        layers.append(Linear(in_dim, 1, rng))
        self.dense = Sequential(*layers)

    def forward(self, plan: PhysicalPlan, node_features: np.ndarray) -> Tensor:
        """Predict the (log-)cost of one plan.

        ``node_features`` rows follow the plan's execution (post-)order.
        """
        nodes = plan.nodes()
        if node_features.shape[0] != len(nodes):
            raise TrainingError(
                f"feature rows {node_features.shape[0]} != plan nodes {len(nodes)}")
        index = plan.node_index()
        states: dict[int, tuple[Tensor, Tensor]] = {}

        def encode(node: PhysicalNode) -> tuple[Tensor, Tensor]:
            if id(node) in states:
                return states[id(node)]
            child_states = [encode(c) for c in node.children]
            x = self.embedding(Tensor(node_features[index[id(node)]])).tanh()
            state = self.cell(x, child_states)
            states[id(node)] = state
            return state

        h_root, _ = encode(plan.root)
        return self.dense(h_root).squeeze()


class TLSTMTrainer:
    """Per-tree SGD training for the TLSTM baseline."""

    def __init__(self, model: TLSTM, epochs: int = 20, learning_rate: float = 2e-3,
                 grad_clip: float = 5.0, seed: int = 0) -> None:
        self.model = model
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.grad_clip = grad_clip
        self.seed = seed
        self.train_losses: list[float] = []

    def _features(self, record: PlanRecord, encoder: PlanEncoder) -> np.ndarray:
        return encoder.encode(record.plan, record.resources).node_features

    def fit(self, records: list[PlanRecord], encoder: PlanEncoder) -> "TLSTMTrainer":
        """Train on plan records (targets in log space, as for RAAL)."""
        if len(records) < 2:
            raise TrainingError("TLSTM needs at least 2 training records")
        rng = np.random.default_rng(self.seed)
        features = [self._features(r, encoder) for r in records]
        targets = [float(np.log1p(max(r.cost_seconds, 0.0))) for r in records]
        optimizer = Adam(self.model.parameters(), lr=self.learning_rate)
        for _ in range(self.epochs):
            self.model.train()
            order = rng.permutation(len(records))
            epoch_loss = 0.0
            for idx in order:
                optimizer.zero_grad()
                pred = self.model(records[idx].plan, features[idx])
                loss = mse_loss(pred, Tensor(targets[idx]))
                loss.backward()
                clip_grad_norm(self.model.parameters(), self.grad_clip)
                optimizer.step()
                epoch_loss += loss.item()
            self.train_losses.append(epoch_loss / len(records))
        self.model.eval()
        return self

    def predict_seconds(self, records: list[PlanRecord], encoder: PlanEncoder) -> np.ndarray:
        """Predicted costs in seconds for plan records."""
        self.model.eval()
        out = []
        with no_grad():
            for record in records:
                pred = self.model(record.plan, self._features(record, encoder))
                out.append(float(np.expm1(np.clip(pred.item(), 0.0, 25.0))))
        return np.array(out)
