"""Quickstart: the full RAAL pipeline in one small script.

Builds a synthetic IMDB catalog, plans and executes a query, simulates
it on a cluster, trains a small RAAL cost model on a generated
workload, and predicts the cost of an unseen plan.

Run with:  python examples/quickstart.py
"""

from repro.cluster import PAPER_CLUSTER, ResourceSampler, SparkSimulator
from repro.core import CostPredictor, RAAL, RAALConfig, Trainer, TrainerConfig
from repro.data import build_imdb_catalog
from repro.encoding import PlanEncoder
from repro.engine import execute_plan
from repro.plan import analyze, enumerate_plans
from repro.sql import parse
from repro.text import Word2VecConfig
from repro.workload import CollectionConfig, DataCollector, QueryGenerator, WorkloadConfig


def main() -> None:
    # 1. A synthetic stand-in for the IMDB database (21 JOB tables).
    catalog = build_imdb_catalog(scale=0.1, seed=7)
    print(f"catalog: {len(catalog.table_names)} tables, {catalog.total_rows()} rows")

    # 2. Parse + plan one query: Catalyst-style enumeration yields
    #    several candidate physical plans.
    sql = """SELECT COUNT(*) FROM title t, movie_keyword mk
             WHERE t.id = mk.movie_id AND mk.keyword_id < 40"""
    query = analyze(parse(sql), catalog)
    plans = enumerate_plans(query, catalog)[:3]
    print(f"\nquery has {len(plans)} candidate plans:")
    for plan in plans:
        print(f"  - {plan.label} ({plan.num_nodes} operators)")

    # 3. Execute the plans to observe true per-operator volumes, then
    #    simulate them on the cluster under two memory settings.
    simulator = SparkSimulator(seed=0)
    for plan in plans:
        result = execute_plan(plan, catalog)
        print(f"\n{plan.label}: count(*) = {result.column('count(*)')[0]:.0f}")
        for memory in (1.0, 6.0):
            resources = PAPER_CLUSTER.with_memory(memory)
            runtime = simulator.execute_mean(plan, resources)
            print(f"  simulated @ {memory:g} GB executors: {runtime:7.2f}s")

    # 4. Collect a small training workload and train RAAL.
    print("\ncollecting training data ...")
    generator = QueryGenerator(catalog, WorkloadConfig(max_joins=3), seed=1)
    collector = DataCollector(
        catalog, simulator, ResourceSampler(),
        CollectionConfig(plans_per_query=3, resource_states_per_plan=4))
    records = collector.collect(generator.generate(60))
    print(f"collected {len(records)} (plan, resources, cost) records")

    encoder = PlanEncoder.fit(
        [r.plan for r in records],
        word2vec_config=Word2VecConfig(dim=16, epochs=2))
    samples = DataCollector.to_samples(records, encoder)
    model = RAAL(RAALConfig(node_dim=encoder.node_dim, hidden_size=32,
                            embedding_dim=32))
    trainer = Trainer(model, TrainerConfig(epochs=30))
    result = trainer.fit(samples)
    print(f"trained {model.num_parameters()} parameters in "
          f"{result.train_seconds:.1f}s; loss "
          f"{result.train_losses[0]:.3f} -> {result.train_losses[-1]:.3f}")

    # 5. Predict the cost of the quickstart query's plans.
    predictor = CostPredictor(encoder, trainer)
    print("\npredicted vs simulated cost @ 4 GB executors:")
    for plan in plans:
        predicted = predictor.predict(plan, PAPER_CLUSTER)
        actual = simulator.execute_mean(plan, PAPER_CLUSTER)
        print(f"  {plan.label}: predicted {predicted:7.2f}s   actual {actual:7.2f}s")


if __name__ == "__main__":
    main()
