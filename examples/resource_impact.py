"""Resource-impact study (paper Sec. III).

Replays the paper's analysis of how executor memory affects the cost of
candidate plans for four representative IMDB queries — single-table,
two-table SMJ, two-table BHJ, and three-table mixed — and reports where
the optimal plan flips.

Run with:  python examples/resource_impact.py
"""

import numpy as np

from repro.cluster import PAPER_CLUSTER, SimulatorParams, SparkSimulator
from repro.data import build_imdb_catalog
from repro.engine import execute_plan
from repro.eval import render_series
from repro.plan import analyze, enumerate_plans
from repro.sql import parse

QUERIES = {
    "single-table": """
        SELECT COUNT(*) FROM movie_keyword mk WHERE mk.keyword_id < 120""",
    "two-table (SMJ-leaning)": """
        SELECT COUNT(*) FROM title t, movie_companies mc
        WHERE t.id = mc.movie_id AND mc.company_id < 600
        AND mc.company_type_id > 1""",
    "two-table (BHJ-leaning)": """
        SELECT COUNT(*) FROM title t, movie_info_idx mi_idx
        WHERE t.id = mi_idx.movie_id AND t.kind_id < 7
        AND t.production_year > 1961 AND mi_idx.info_type_id < 20""",
    "three-table": """
        SELECT COUNT(*) FROM title t, movie_companies mc, movie_keyword mk
        WHERE t.id = mc.movie_id AND t.id = mk.movie_id
        AND mc.company_id = 40 AND mk.keyword_id < 80""",
}

MEMORIES_GB = [1, 2, 3, 4, 5, 6]


def main() -> None:
    catalog = build_imdb_catalog(scale=0.3, seed=7)
    simulator = SparkSimulator(params=SimulatorParams(noise_sigma=0.0), seed=1)

    for name, sql in QUERIES.items():
        query = analyze(parse(sql), catalog)
        plans = enumerate_plans(query, catalog)[:3]
        for plan in plans:
            execute_plan(plan, catalog)

        series = {f"plan{i + 1} ({p.label})": [] for i, p in enumerate(plans)}
        best_per_memory = []
        for memory in MEMORIES_GB:
            resources = PAPER_CLUSTER.with_memory(float(memory))
            times = [simulator.execute_mean(p, resources) for p in plans]
            for key, t in zip(series, times):
                series[key].append(t)
            best_per_memory.append(int(np.argmin(times)) + 1)

        print()
        print(render_series(f"{name}: cost (s) vs executor memory (GB)",
                            "memory_gb", MEMORIES_GB, series))
        flips = len(set(best_per_memory)) > 1
        print(f"best plan per memory: {best_per_memory}"
              + ("   <-- optimal plan flips with memory!" if flips else ""))


if __name__ == "__main__":
    main()
