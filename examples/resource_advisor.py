"""Resource recommendation with the trained cost model.

Uses the RAAL predictor in reverse: given a query, find (a) the
cheapest cloud allocation meeting a latency SLA and (b) the fastest
allocation within an hourly budget — the resource-matching use case the
paper's related work targets, obtained for free from a resource-aware
model.

The whole run executes under an attached telemetry bundle (repro.obs),
so it finishes with a metrics summary — per-epoch training times,
encoder cache efficiency, grid-prediction latency — and the span tree
of the last advisor grid search.

Run with:  python examples/resource_advisor.py
"""

from repro import obs
from repro.cluster import PAPER_CLUSTER
from repro.core import AllocationPrice, CostPredictor, ResourceAdvisor
from repro.eval import render_table
from repro.eval.experiments import ExperimentPipeline, ExperimentScale

SCALE = ExperimentScale(num_queries=80, epochs=30)


def main() -> None:
    telemetry = obs.Telemetry.create()
    with obs.attached(telemetry):
        run_advisor()
    print("\ntelemetry for this run:")
    print(obs.TelemetryReport.from_telemetry(telemetry).render())
    print("\nspan tree of the last grid search:")
    print(telemetry.tracer.last_root().render())


def run_advisor() -> None:
    print("training the cost model ...")
    pipeline = ExperimentPipeline(dataset="imdb", scale=SCALE)
    trained = pipeline.train_variant("RAAL")
    print(f"model quality: {trained.metrics}")

    advisor = ResourceAdvisor(
        CostPredictor(trained.encoder, trained.trainer),
        price=AllocationPrice(per_core_hour=0.05, per_gb_hour=0.01))

    test_sqls = sorted({r.sql for r in pipeline.split.test})[:5]
    rows = []
    for i, sql in enumerate(test_sqls):
        plans = pipeline.collector.plans_for(sql)
        sla = advisor.predictor.predict(plans[0], PAPER_CLUSTER)
        rec = advisor.cheapest_meeting_sla(plans, sla_seconds=sla * 1.2)
        if rec is None:
            rows.append([f"Q{i + 1}", "-", "-", "-", "-"])
            continue
        rows.append([
            f"Q{i + 1}",
            f"{sla * 1.2:.1f}s",
            str(rec.profile),
            f"{rec.predicted_seconds:.1f}s",
            f"${rec.hourly_price:.3f}/h",
        ])

    print()
    print(render_table(
        "Cheapest allocation meeting a 1.2x-of-default SLA, per query",
        ["query", "SLA", "recommended allocation", "predicted", "price"], rows))

    plans = pipeline.collector.plans_for(test_sqls[0])
    print("\nbudget sweep for Q1 (fastest allocation within budget):")
    for budget in (0.1, 0.3, 0.8):
        rec = advisor.fastest_within_budget(plans, max_hourly_price=budget)
        if rec is None:
            print(f"  ${budget:.2f}/h: no affordable allocation")
        else:
            print(f"  ${budget:.2f}/h: {rec.profile} -> {rec.predicted_seconds:.1f}s")


if __name__ == "__main__":
    main()
