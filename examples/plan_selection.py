"""Resource-aware plan selection (the paper's Fig. 1 use case).

Trains a RAAL cost model on a generated IMDB workload, then uses it to
pick execution plans for unseen queries under *different resource
allocations*, comparing against the rule-based Catalyst default choice.

Run with:  python examples/plan_selection.py
"""

import numpy as np

from repro.cluster import PAPER_CLUSTER
from repro.core import CostPredictor, PlanSelector
from repro.eval import render_table
from repro.eval.experiments import ExperimentPipeline, ExperimentScale
from repro.plan import analyze
from repro.sql import parse

SCALE = ExperimentScale(num_queries=80, epochs=30)


def main() -> None:
    print("building pipeline (catalog, workload, collection, training) ...")
    pipeline = ExperimentPipeline(dataset="imdb", scale=SCALE)
    trained = pipeline.train_variant("RAAL")
    print(f"trained RAAL: {trained.metrics}")

    predictor = CostPredictor(trained.encoder, trained.trainer)
    selector = PlanSelector(predictor, pipeline.catalog)

    test_sqls = sorted({r.sql for r in pipeline.split.test})[:8]
    rows = []
    flips = 0
    for i, sql in enumerate(test_sqls):
        query = analyze(parse(sql), pipeline.catalog)
        candidates = pipeline.collector.plans_for(sql)
        chosen_labels = []
        for memory in (1.0, 6.0):
            resources = PAPER_CLUSTER.with_memory(memory)
            result = selector.select(query, resources, candidates=candidates)
            default_t = pipeline.simulator.execute_mean(result.default, resources)
            tuned_t = pipeline.simulator.execute_mean(result.chosen, resources)
            chosen_labels.append(result.chosen.label)
            rows.append([f"Q{i + 1}", f"{memory:g}GB", result.chosen.label,
                         f"{default_t:.2f}", f"{tuned_t:.2f}",
                         f"{(default_t - tuned_t) / default_t * 100:+.1f}%"])
        if chosen_labels[0] != chosen_labels[1]:
            flips += 1

    print()
    print(render_table(
        "Resource-aware plan selection on unseen queries",
        ["query", "memory", "chosen plan", "default (s)", "tuned (s)", "saved"],
        rows))
    print(f"\nqueries whose chosen plan changed with memory: {flips}/{len(test_sqls)}")

    defaults = np.array([float(r[3]) for r in rows])
    tuned = np.array([float(r[4]) for r in rows])
    saving = (defaults.sum() - tuned.sum()) / defaults.sum() * 100
    print(f"total execution time saved by resource-aware selection: {saving:.1f}%")


if __name__ == "__main__":
    main()
