"""Cold-start transfer across datasets (the paper's future-work section).

The paper's conclusion targets "cold-start query optimization when we
need to conduct queries on a newly loaded dataset without training new
models". This example quantifies that gap and one mitigation:

1. train RAAL on the IMDB workload;
2. evaluate it zero-shot on TPC-H (unknown tables/columns fall back to
   the word2vec ``<unk>`` embedding);
3. fine-tune on a small number of TPC-H records and re-evaluate.

Run with:  python examples/cold_start_transfer.py
"""

import numpy as np

from repro.core import Trainer, TrainerConfig, variant
from repro.eval import compute_metrics, render_table
from repro.eval.experiments import ExperimentPipeline, ExperimentScale
from repro.workload import DataCollector

SCALE = ExperimentScale(num_queries=80, epochs=30)
FINE_TUNE_RECORDS = 150


def main() -> None:
    print("training RAAL on IMDB ...")
    imdb = ExperimentPipeline(dataset="imdb", scale=SCALE)
    trained = imdb.train_variant("RAAL")
    print(f"IMDB test metrics: {trained.metrics}")

    print("\nbuilding TPC-H pipeline ...")
    tpch = ExperimentPipeline(dataset="tpch", scale=SCALE)
    # Encode TPC-H plans with the *IMDB-fitted* encoder: table and column
    # tokens are out-of-vocabulary, but operators, literals buckets, and
    # structure transfer.
    test_records = tpch.split.test
    encoder = trained.encoder
    test_samples = DataCollector.to_samples(test_records, encoder)
    actual = np.array([r.cost_seconds for r in test_records])

    zero_shot = trained.trainer.predict_seconds([s.encoded for s in test_samples])
    zs_metrics = compute_metrics(actual, zero_shot)

    print(f"\nfine-tuning on {FINE_TUNE_RECORDS} TPC-H records ...")
    tune_records = tpch.split.train[:FINE_TUNE_RECORDS]
    tune_samples = DataCollector.to_samples(tune_records, encoder)
    tuner = Trainer(trained.trainer.model,
                    TrainerConfig(epochs=15, learning_rate=5e-4))
    tuner.fit(tune_samples)
    fine_tuned = tuner.predict_seconds([s.encoded for s in test_samples])
    ft_metrics = compute_metrics(actual, fine_tuned)

    print("\nretraining from scratch on the full TPC-H workload (reference) ...")
    scratch = tpch.train_variant("RAAL")

    rows = [
        ["IMDB-trained, zero-shot on TPC-H",
         zs_metrics.re, zs_metrics.mse, zs_metrics.cor, zs_metrics.r2],
        [f"+ fine-tuned on {FINE_TUNE_RECORDS} records",
         ft_metrics.re, ft_metrics.mse, ft_metrics.cor, ft_metrics.r2],
        ["trained on TPC-H from scratch",
         scratch.metrics.re, scratch.metrics.mse,
         scratch.metrics.cor, scratch.metrics.r2],
    ]
    print()
    print(render_table("Cold-start transfer: IMDB -> TPC-H",
                       ["setting", "RE", "MSE", "COR", "R2"], rows))
    print("\nShape: zero-shot transfer degrades sharply (the cold-start "
          "problem the paper names); a small fine-tuning set recovers most "
          "of the from-scratch quality.")


if __name__ == "__main__":
    main()
