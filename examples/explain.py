"""EXPLAIN-style inspection of plans, stages, and simulated timing.

Shows the optimizer's intermediate artifacts for one query: the logical
plan before/after rule optimization, the candidate physical plans with
cardinality annotations, the Spark-style stage decomposition, and the
simulator's per-stage timing breakdown under two resource allocations.

Run with:  python examples/explain.py
"""

from repro.cluster import PAPER_CLUSTER, SimulatorParams, SparkSimulator, split_stages
from repro.data import build_imdb_catalog
from repro.engine import execute_plan
from repro.plan import analyze, build_logical_plan, enumerate_plans, optimize
from repro.sql import parse

SQL = """
SELECT COUNT(*) FROM title t, movie_companies mc, movie_keyword mk
WHERE t.id = mc.movie_id AND t.id = mk.movie_id
AND mc.company_id < 120 AND mk.keyword_id < 80
"""


def main() -> None:
    catalog = build_imdb_catalog(scale=0.15, seed=7)
    query = analyze(parse(SQL), catalog)

    print("=== logical plan (unoptimized) ===")
    logical = build_logical_plan(query)
    print(logical.describe())

    print("\n=== logical plan (after rule optimization) ===")
    print(optimize(logical).describe())

    plans = enumerate_plans(query, catalog)[:2]
    for plan in plans:
        execute_plan(plan, catalog)

    print("\n=== candidate physical plans (with observed cardinalities) ===")
    for plan in plans:
        print()
        print(plan.describe())

    print("\n=== stage decomposition of the default plan ===")
    for stage in split_stages(plans[0]):
        kind = "result" if stage.is_result_stage else stage.boundary.op_name
        ops = " -> ".join(n.op_name for n in stage.nodes)
        print(f"  Stage#{stage.stage_id} [{kind}] reads {stage.input_rows():.0f} rows: {ops}")

    simulator = SparkSimulator(params=SimulatorParams(noise_sigma=0.0))
    print("\n=== simulated timing breakdown ===")
    for memory in (1.0, 6.0):
        resources = PAPER_CLUSTER.with_memory(memory)
        result = simulator.execute(plans[0], resources)
        print(f"\n@ {memory:g} GB executors -> total {result.runtime_seconds:.2f}s "
              f"(spilled {result.total_spilled_bytes / 1e6:.0f} MB, "
              f"broadcast fallback: {result.any_broadcast_fallback})")
        for st in result.stage_times:
            print(f"  Stage#{st.stage_id}: {st.total_seconds:6.2f}s "
                  f"(cpu {st.cpu_seconds:.2f}, disk {st.disk_seconds:.2f}, "
                  f"net {st.network_seconds:.2f}; {st.tasks} tasks / {st.waves} waves)")


if __name__ == "__main__":
    main()
