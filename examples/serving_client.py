"""Minimal client for a running ``repro serve`` instance.

Scores a query's candidate plans under two resource profiles, picks
the cheapest plan, and reports the observed runtime back through the
feedback endpoint — the whole request/response loop documented in
``docs/API.md``, using nothing but the standard library.

Start a server first (see docs/OPERATIONS.md), e.g.::

    python -m repro train --out /tmp/model --queries 40 --epochs 10
    python -m repro serve --model /tmp/model --port 8000

Run with:  python examples/serving_client.py [--server http://127.0.0.1:8000]
"""

import argparse
import json
import urllib.error
import urllib.request

SQL = ("SELECT COUNT(*) FROM title t, movie_keyword mk "
       "WHERE t.id = mk.movie_id AND mk.keyword_id < 40")


def call(server: str, path: str, body: dict | None = None) -> dict:
    """One JSON round-trip; raises with the server's error message."""
    data = None if body is None else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        server + path, data=data,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=30.0) as response:
            return json.loads(response.read())
    except urllib.error.HTTPError as exc:
        detail = json.loads(exc.read())
        raise SystemExit(f"{path} failed ({exc.code} {detail.get('type')}): "
                         f"{detail.get('error')}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--server", default="http://127.0.0.1:8000",
                        help="base URL of the running repro serve")
    args = parser.parse_args()
    server = args.server.rstrip("/")

    # 1. Score the query's candidate plans under one resource profile.
    #    A deadline keeps tail latency bounded: past it the server
    #    degrades to its analytic estimate instead of blocking.
    result = call(server, "/v1/predict", {
        "sql": SQL,
        "resources": {"executors": 2, "executor_cores": 2, "memory_gb": 4},
        "deadline_ms": 250,
    })
    print(f"model {result['model_version']} scored "
          f"{len(result['plans'])} plans via '{result['source']}':")
    for plan in result["plans"]:
        marker = "  <-- chosen" if plan["plan"] == result["chosen"] else ""
        print(f"  {plan['plan']:40s} {plan['seconds']:8.3f}s{marker}")

    # 2. The same plans across resource profiles in one fused call —
    #    how cost changes when the cluster grows.
    grid = call(server, "/v1/predict_grid", {
        "sql": SQL,
        "profiles": [{"executors": 2}, {"executors": 4}, {"executors": 8}],
    })
    print("\ncheapest plan per profile:")
    for profile, row in zip((2, 4, 8), grid["costs"]):
        best = min(range(len(row)), key=row.__getitem__)
        print(f"  executors={profile}: {grid['plans'][best]} "
              f"({row[best]:.3f}s)")

    # 3. Close the loop: report the runtime we "observed" for the
    #    chosen plan so the server's quality tracking (q-error, drift,
    #    SLOs) measures this model against reality.
    chosen = next(p for p in result["plans"]
                  if p["plan"] == result["chosen"])
    feedback = call(server, "/v1/feedback", {
        "request_id": result["request_id"],
        "index": chosen["feedback_index"],
        "observed_seconds": chosen["seconds"] * 1.07,
    })
    print(f"\nfeedback recorded: q-error {feedback['q_error']:.3f} "
          f"for request {feedback['request_id']}")

    # 4. Operational state: every model's version, ladder rung, and
    #    micro-batcher accounting.
    health = call(server, "/healthz")
    for name, model in health["models"].items():
        print(f"health: model {name!r} version {model['version']} "
              f"ladder={model['ladder']} "
              f"batched={model['batcher']['coalesced_requests']} requests "
              f"in {model['batcher']['batches']} fused batches")


if __name__ == "__main__":
    main()
