"""Head-to-head comparison: RAAL vs TLSTM vs GPSJ (Tables V & VI).

Trains all three cost models on the same fixed-resource IMDB workload
(the paper's "local Spark" setting) and compares them on the four paper
metrics, then shows what each model predicts for a few test plans.

Run with:  python examples/cost_model_comparison.py
"""

import numpy as np

from repro.baselines import GPSJCostModel
from repro.cluster import PAPER_CLUSTER
from repro.core import variant
from repro.eval import render_table
from repro.eval.experiments import ExperimentPipeline, ExperimentScale

SCALE = ExperimentScale(num_queries=60, resource_states_per_plan=1, epochs=30)


def main() -> None:
    print("building fixed-resource pipeline ...")
    pipeline = ExperimentPipeline(dataset="imdb", scale=SCALE,
                                  fixed_resources=PAPER_CLUSTER)

    print("training RAAL ...")
    raal = pipeline.train_variant("RAAL")
    print("training TLSTM (tree-by-tree, slower) ...")
    tlstm_trainer, tlstm_metrics, _, tlstm_est = pipeline.train_tlstm(epochs=8)
    print("calibrating GPSJ ...")
    gpsj_metrics, _, gpsj_est = pipeline.evaluate_gpsj()

    rows = [
        ["GPSJ", gpsj_metrics.re, gpsj_metrics.mse, gpsj_metrics.cor, gpsj_metrics.r2],
        ["TLSTM", tlstm_metrics.re, tlstm_metrics.mse, tlstm_metrics.cor, tlstm_metrics.r2],
        ["RAAL", raal.metrics.re, raal.metrics.mse, raal.metrics.cor, raal.metrics.r2],
    ]
    print()
    print(render_table("Cost model comparison (IMDB, fixed resources)",
                       ["model", "RE", "MSE", "COR", "R2"], rows))

    # Per-plan view for a handful of test records.
    test = pipeline.split.test[:6]
    encoder = pipeline.encoder_for(variant("RAAL"))
    raal_est = raal.trainer.predict_seconds(
        [encoder.encode(r.plan, r.resources) for r in test])
    tl_est = tlstm_trainer.predict_seconds(test, encoder)
    gpsj_model = GPSJCostModel(pipeline.catalog).calibrate(pipeline.split.train)
    g_est = [gpsj_model.estimate(r.plan, r.resources) for r in test]

    detail = []
    for i, record in enumerate(test):
        detail.append([
            record.plan.label, f"{record.cost_seconds:.2f}",
            f"{raal_est[i]:.2f}", f"{tl_est[i]:.2f}", f"{g_est[i]:.2f}"])
    print()
    print(render_table("Per-plan estimates on unseen test plans (seconds)",
                       ["plan", "actual", "RAAL", "TLSTM", "GPSJ"], detail))


if __name__ == "__main__":
    main()
