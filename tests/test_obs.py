"""Unit tests for the observability layer (repro.obs)."""

import json
import logging
import math
import threading

import pytest

from repro import obs
from repro.errors import TelemetryError
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    EventLog,
    Gauge,
    Histogram,
    MetricsRegistry,
    Telemetry,
    TelemetryReport,
    Tracer,
    load_report,
    prometheus_from_snapshot,
)


class FakeClock:
    """Deterministic monotonic clock for span/epoch timing tests."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("requests_total")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increment(self):
        with pytest.raises(TelemetryError):
            Counter("x").inc(-1)

    def test_rejects_bad_names(self):
        for bad in ("", "1abc", "has space", "dash-ed"):
            with pytest.raises(TelemetryError):
                Counter(bad)

    def test_thread_safety(self):
        c = Counter("concurrent")

        def spin():
            for _ in range(10_000):
                c.inc()

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 40_000


class TestGauge:
    def test_set_and_adjust(self):
        g = Gauge("cache.size")
        g.set(7)
        g.inc(-2)
        assert g.value == 5.0


class TestHistogram:
    def test_bucket_boundaries_inclusive_upper(self):
        h = Histogram("lat", buckets=(0.001, 0.01, 0.1))
        h.observe(0.001)   # == bound -> first bucket (le semantics)
        h.observe(0.0011)  # just above -> second bucket
        h.observe(0.5)     # above all bounds -> +Inf bucket
        snap = h.snapshot()
        assert snap["counts"] == [1, 1, 0, 1]
        assert snap["count"] == 3
        assert snap["min"] == 0.001
        assert snap["max"] == 0.5
        assert snap["sum"] == pytest.approx(0.5021)

    def test_default_buckets_are_log_scale_ascending(self):
        bounds = DEFAULT_LATENCY_BUCKETS
        assert list(bounds) == sorted(bounds)
        ratios = [bounds[i + 1] / bounds[i] for i in range(len(bounds) - 1)]
        for ratio in ratios:
            assert ratio == pytest.approx(math.sqrt(10.0), rel=1e-6)
        assert bounds[0] == pytest.approx(1e-5)

    def test_rejects_nan_and_bad_buckets(self):
        with pytest.raises(TelemetryError):
            Histogram("h").observe(float("nan"))
        with pytest.raises(TelemetryError):
            Histogram("h", buckets=(0.1, 0.1))
        with pytest.raises(TelemetryError):
            Histogram("h", buckets=(0.2, 0.1))
        with pytest.raises(TelemetryError):
            Histogram("h", buckets=())
        with pytest.raises(TelemetryError):
            Histogram("h", buckets=(1.0, float("inf")))

    def test_mean(self):
        h = Histogram("m", buckets=(10.0,))
        assert h.mean == 0.0
        h.observe(2.0)
        h.observe(4.0)
        assert h.mean == 3.0

    def test_quantile_interpolates_within_bucket(self):
        h = Histogram("q", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.6, 1.7, 3.0):
            h.observe(v)
        # p50: rank 2.5 of 5 -> second sample inside (1, 2]; linear
        # interpolation inside that bucket.
        assert 1.0 <= h.quantile(0.5) <= 2.0
        # p0 / p100 clamp to the observed extremes, not bucket edges.
        assert h.quantile(0.0) == 0.5
        assert h.quantile(1.0) == 3.0

    def test_quantile_overflow_bucket_uses_observed_max(self):
        h = Histogram("q", buckets=(1.0,))
        h.observe(0.5)
        h.observe(50.0)   # +Inf bucket
        # The overflow bucket has no finite upper bound; the estimate
        # degrades to the observed max instead of fabricating a value.
        assert h.quantile(0.99) == 50.0

    def test_quantile_clamped_to_observed_range(self):
        h = Histogram("q", buckets=(10.0,))
        h.observe(2.0)
        h.observe(3.0)
        # Both samples share the coarse (0, 10] bucket; interpolation
        # alone would report up to 10, clamping bounds it by the data.
        for q in (0.1, 0.5, 0.9):
            assert 2.0 <= h.quantile(q) <= 3.0

    def test_quantile_errors(self):
        h = Histogram("q", buckets=(1.0,))
        # Empty histogram: a well-defined NaN, not an exception — the
        # caller shouldn't have to pre-check count() to render a report.
        assert math.isnan(h.quantile(0.5))
        h.observe(0.5)
        for bad_q in (-0.1, 1.5, math.inf):
            with pytest.raises(ValueError):
                h.quantile(bad_q)

    def test_quantile_from_snapshot_matches_live(self):
        from repro.obs import quantile_from_snapshot

        h = Histogram("q", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.02, 0.05, 0.5, 0.7):
            h.observe(v)
        snap = h.snapshot()
        for q in (0.0, 0.5, 0.95, 1.0):
            assert quantile_from_snapshot(snap, q) == h.quantile(q)
        assert math.isnan(
            quantile_from_snapshot(Histogram("e", buckets=(1.0,)).snapshot(),
                                   0.5))
        with pytest.raises(ValueError):
            quantile_from_snapshot(snap, 2.0)

    def test_quantile_matches_exact_on_fine_buckets(self):
        import numpy as np

        rng = np.random.default_rng(7)
        samples = rng.uniform(0.0, 1.0, size=2000)
        h = Histogram("q", buckets=tuple(np.linspace(0.01, 1.0, 100)))
        for v in samples:
            h.observe(v)
        for q in (0.5, 0.95, 0.99):
            exact = float(np.quantile(samples, q))
            assert h.quantile(q) == pytest.approx(exact, abs=0.02)


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert len(reg) == 1

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TelemetryError):
            reg.gauge("x")
        with pytest.raises(TelemetryError):
            reg.histogram("x")

    def test_snapshot_and_names_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b.two").inc(2)
        reg.gauge("a.one").set(1)
        assert reg.names() == ["a.one", "b.two"]
        snap = reg.snapshot()
        assert list(snap) == ["a.one", "b.two"]
        assert snap["b.two"]["value"] == 2

    def test_json_export_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("hits", help="cache hits").inc(3)
        reg.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
        doc = json.loads(reg.to_json())
        assert doc["metrics"]["hits"] == {
            "kind": "counter", "value": 3.0, "help": "cache hits"}
        assert doc["metrics"]["lat"]["counts"] == [1, 0, 0]

    def test_prometheus_golden_output(self):
        reg = MetricsRegistry()
        reg.counter("guard.degraded_total", help="Fallback answers").inc(2)
        reg.gauge("train.best_epoch").set(4)
        reg.histogram("predict.latency_seconds",
                      buckets=(0.001, 0.1)).observe(0.05)
        expected = (
            '# HELP guard_degraded_total Fallback answers\n'
            '# TYPE guard_degraded_total counter\n'
            'guard_degraded_total 2\n'
            '# TYPE predict_latency_seconds histogram\n'
            'predict_latency_seconds_bucket{le="0.001"} 0\n'
            'predict_latency_seconds_bucket{le="0.1"} 1\n'
            'predict_latency_seconds_bucket{le="+Inf"} 1\n'
            'predict_latency_seconds_sum 0.05\n'
            'predict_latency_seconds_count 1\n'
            '# TYPE train_best_epoch gauge\n'
            'train_best_epoch 4\n'
        )
        assert reg.to_prometheus() == expected

    def test_prometheus_counter_total_suffix(self):
        # Counters are rendered under the conventional _total suffix;
        # names that already carry it are not doubled.
        reg = MetricsRegistry()
        reg.counter("encoder.cache.hits").inc(7)
        reg.counter("guard.requests_total").inc(2)
        text = reg.to_prometheus()
        assert "encoder_cache_hits_total 7" in text
        assert "# TYPE encoder_cache_hits_total counter" in text
        assert "guard_requests_total 2" in text
        assert "guard_requests_total_total" not in text

    def test_prometheus_help_escaping(self):
        reg = MetricsRegistry()
        reg.counter("weird_total",
                    help="line one\nline two with back\\slash").inc()
        text = reg.to_prometheus()
        assert ("# HELP weird_total line one\\nline two with back\\\\slash"
                in text)
        # Still one line per HELP entry — the raw newline never leaks.
        assert all(line.startswith(("#", "weird_total"))
                   for line in text.strip().splitlines())

    def test_prometheus_from_persisted_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(5)
        snap = json.loads(reg.to_json())["metrics"]
        assert prometheus_from_snapshot(snap) == reg.to_prometheus()


class TestSpans:
    def test_nesting_and_fake_clock_timing(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("predict") as root:
            clock.advance(0.5)
            with tracer.span("encode") as enc:
                clock.advance(0.25)
            with tracer.span("forward"):
                clock.advance(1.0)
                with tracer.span("forward_inference"):
                    clock.advance(0.125)
        assert root.duration == pytest.approx(1.875)
        assert [c.name for c in root.children] == ["encode", "forward"]
        assert enc.duration == pytest.approx(0.25)
        fwd = root.find("forward")
        assert fwd.duration == pytest.approx(1.125)
        assert root.find("forward_inference").duration == pytest.approx(0.125)
        assert tracer.last_root() is root
        assert tracer.roots() == [root]

    def test_separate_roots_and_ring_bound(self):
        tracer = Tracer(clock=FakeClock(), max_roots=2)
        for name in ("a", "b", "c"):
            with tracer.span(name):
                pass
        assert [s.name for s in tracer.roots()] == ["b", "c"]
        assert tracer.finished_count == 3
        tracer.clear()
        assert tracer.roots() == []
        assert tracer.finished_count == 3

    def test_exception_is_annotated_and_reraised(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        root = tracer.last_root()
        assert root.end is not None
        assert "ValueError" in root.annotations["error"]

    def test_annotations_and_dict_form(self):
        clock = FakeClock(10.0)
        tracer = Tracer(clock=clock)
        with tracer.span("encode", pairs=3) as sp:
            sp.annotate(cache_hits=2)
            clock.advance(0.1)
        d = tracer.last_root().to_dict()
        assert d["name"] == "encode"
        assert d["duration"] == pytest.approx(0.1)
        assert d["annotations"] == {"pairs": 3, "cache_hits": 2}
        assert d["children"] == []

    def test_render_tree(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer"):
            with tracer.span("inner"):
                clock.advance(0.5)
        text = tracer.last_root().render()
        assert text.splitlines()[0].startswith("outer:")
        assert text.splitlines()[1].startswith("  inner: 0.5")


class TestEventLog:
    def test_emit_and_filter(self):
        log = EventLog(clock=FakeClock(100.0))
        log.emit("trainer", "epoch", epoch=0, train_loss=1.5)
        log.emit("guard", "fallback", source="gpsj")
        assert log.emitted == 2
        assert [e["event"] for e in log.events(component="guard")] == ["fallback"]
        epoch = log.events(component="trainer", event="epoch")[0]
        assert epoch["ts"] == 100.0
        assert epoch["train_loss"] == 1.5
        assert log.counts() == {"trainer.epoch": 1, "guard.fallback": 1}

    def test_reserved_field_collision_raises(self):
        with pytest.raises(TelemetryError):
            EventLog().emit("x", "y", ts=1.0)

    def test_jsonl_file_sink(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path=str(path), clock=FakeClock(1.0))
        log.emit("encoder", "cache_evict", size=3)
        log.emit("trainer", "recovery", reason="spike")
        log.close()
        lines = path.read_text().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["event"] for r in records] == ["cache_evict", "recovery"]
        assert records[0]["component"] == "encoder"

    def test_ring_eviction_keeps_tallies(self):
        log = EventLog(capacity=2)
        for i in range(5):
            log.emit("c", "e", i=i)
        assert len(log.events()) == 2
        assert log.counts() == {"c.e": 5}

    def test_logging_bridge(self):
        log = EventLog()
        logger = log.logger("persistence")
        assert logger is log.logger("persistence")  # idempotent bridge
        assert sum(isinstance(h, obs.EventLogHandler)
                   for h in logger.handlers) == 1
        logger.warning("checkpoint %s is torn", "model.npz")
        (event,) = log.events(component="persistence")
        assert event["event"] == "log"
        assert event["level"] == "warning"
        assert event["message"] == "checkpoint model.npz is torn"
        assert isinstance(logger, logging.Logger)


class TestRuntime:
    def test_helpers_are_noops_when_detached(self):
        previous = obs.detach()
        try:
            assert not obs.enabled()
            sp = obs.span("predict", pairs=1)
            with sp as inner:
                inner.annotate(anything=1)
            assert sp is obs.NULL_SPAN
            obs.inc("nope")
            obs.observe("nope", 1.0)
            obs.set_gauge("nope", 1.0)
            obs.emit_event("nope", "nope")
        finally:
            if previous is not None:
                obs.attach(previous)

    def test_attached_restores_previous(self):
        outer = Telemetry.create()
        inner = Telemetry.create()
        with obs.attached(outer):
            assert obs.active() is outer
            with obs.attached(inner):
                assert obs.active() is inner
                obs.inc("only.inner")
            assert obs.active() is outer
        assert "only.inner" in inner.registry
        assert "only.inner" not in outer.registry

    def test_attached_restores_on_exception(self):
        tel = Telemetry.create()
        with pytest.raises(RuntimeError):
            with obs.attached(tel):
                raise RuntimeError
        assert obs.active() is not tel

    def test_install_from_env(self, tmp_path):
        previous = obs.detach()
        try:
            assert obs.install_from_env({}) is None
            path = str(tmp_path / "t.jsonl")
            tel = obs.install_from_env({obs.TELEMETRY_ENV_VAR: path})
            assert tel is not None and obs.active() is tel
            tel.events.emit("x", "y")
            tel.close()
            assert json.loads((tmp_path / "t.jsonl").read_text())["event"] == "y"
        finally:
            obs.detach()
            if previous is not None:
                obs.attach(previous)


class TestReport:
    def _populated(self):
        clock = FakeClock()
        tel = Telemetry(tracer=Tracer(clock=clock))
        tel.registry.counter("guard.degraded_total").inc(1)
        tel.registry.histogram("predict.latency_seconds").observe(0.02)
        with tel.tracer.span("predict"):
            clock.advance(0.02)
        tel.events.emit("guard", "fallback", source="gpsj")
        return tel

    def test_from_telemetry_and_render(self):
        report = TelemetryReport.from_telemetry(self._populated())
        assert report.metrics["guard.degraded_total"]["value"] == 1
        assert report.spans[0]["name"] == "predict"
        assert report.event_counts == {"guard.fallback": 1}
        text = report.render()
        assert "guard.degraded_total" in text
        assert "guard.fallback" in text
        assert "+Inf" not in text  # tables stay human-scale

    def test_write_and_load_json_report(self, tmp_path):
        report = TelemetryReport.from_telemetry(self._populated())
        path = tmp_path / "report.json"
        report.write(path)
        loaded = load_report(path)
        assert loaded.metrics == report.metrics
        assert loaded.event_counts == report.event_counts
        assert loaded.to_prometheus() == report.to_prometheus()

    def test_load_from_jsonl_stream_takes_last_report(self, tmp_path):
        tel = self._populated()
        path = tmp_path / "run.jsonl"
        with open(path, "w") as fh:
            fh.write(json.dumps({"ts": 1, "component": "obs",
                                 "event": "telemetry_report",
                                 "report": {"metrics": {
                                     "stale": {"kind": "counter", "value": 1,
                                               "help": ""}}}}) + "\n")
            fh.write(json.dumps({"ts": 2, "component": "trainer",
                                 "event": "epoch", "epoch": 0}) + "\n")
            fh.write(json.dumps({
                "ts": 3, "component": "obs", "event": "telemetry_report",
                "report": TelemetryReport.from_telemetry(tel).to_dict(),
            }) + "\n")
        loaded = load_report(path)
        assert "stale" not in loaded.metrics
        assert "guard.degraded_total" in loaded.metrics

    def test_load_rejects_missing_empty_and_malformed(self, tmp_path):
        with pytest.raises(TelemetryError):
            load_report(tmp_path / "ghost.json")
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(TelemetryError):
            load_report(empty)
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(TelemetryError):
            load_report(bad)
        no_report = tmp_path / "no_report.jsonl"
        no_report.write_text('{"ts": 1, "component": "a", "event": "b"}\n')
        with pytest.raises(TelemetryError):
            load_report(no_report)
